"""Hot-path micro-benchmarks (``repro bench``).

:mod:`repro.bench.legacy` preserves the pre-overhaul implementations of
the three hot phases (profile, synthesize, simulate) so speedups are
measured against real executable code rather than a remembered number;
:mod:`repro.bench.hotpath` runs before/after timings of each phase and
writes the ``BENCH_hotpath.json`` payload that CI tracks for
regressions.
"""

from repro.bench.hotpath import (
    BENCH_SCHEMA,
    TRAJECTORY_SCHEMA,
    append_trajectory,
    check_regression,
    git_sha,
    run_hotpath_bench,
    validate_payload,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "append_trajectory",
    "check_regression",
    "git_sha",
    "run_hotpath_bench",
    "validate_payload",
    "write_bench",
]
