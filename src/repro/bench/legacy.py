"""Frozen pre-overhaul implementations of the three hot phases.

These are the profiler and synthesis generator exactly as they were
before the hot-path performance overhaul (per-draw ``bisect_right``
over freshly built cumulative lists, per-restart cumulative rebuilds,
dict-backed distance histograms), kept runnable so ``repro bench`` can
measure the "before" side of every speedup in-process, on the same
machine and Python, against the same inputs.  The frozen pipeline loop
lives in :mod:`repro.cpu.reference` (it doubles as the equivalence
oracle) and is re-exported here for symmetry.

Do not optimize this module; its value is that it stays slow and
faithful to the original code.  Behaviour contracts (draw order, trace
layout) are pinned by ``tests/test_determinism_golden.py`` comparing
the optimized modules against goldens generated with this code.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.errors import SynthesisError
from repro.frontend.trace import Trace
from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.branch.unit import BranchOutcome
from repro.cache.hierarchy import CacheHierarchy
from repro.core.profiler import (
    BRANCH_MODES,
    StatisticalProfile,
    _branch_records,
)
from repro.core.reduction import ReducedFlowGraph, reduce_flow_graph
from repro.core.sfg import (
    MAX_DEPENDENCY_DISTANCE,
    START_BLOCK,
    Context,
    ContextStats,
    StatisticalFlowGraph,
)
from repro.core.synthesis import MAX_DEPENDENCY_RETRIES
from repro.core.synthetic import SyntheticInstruction, SyntheticTrace
from repro.cpu.reference import ReferencePipeline, simulate_reference
from repro.errors import ProfileError

__all__ = [
    "ReferencePipeline",
    "legacy_generate_synthetic_trace",
    "legacy_profile_trace",
    "simulate_reference",
]


class _OperandSampler:
    """Cumulative-distribution sampler for one operand's distances."""

    __slots__ = ("p_dep", "distances", "cumulative", "total")

    def __init__(self, histogram: Dict[int, int], occurrences: int) -> None:
        self.distances = sorted(histogram)
        weights = [histogram[d] for d in self.distances]
        self.cumulative = list(accumulate(weights))
        self.total = self.cumulative[-1] if self.cumulative else 0
        self.p_dep = self.total / occurrences if occurrences else 0.0

    def sample(self, rng: random.Random) -> int:
        index = bisect_right(self.cumulative, rng.random() * self.total)
        return self.distances[min(index, len(self.distances) - 1)]


class _SlotRecipe:
    """Pre-computed sampling recipe for one instruction slot."""

    __slots__ = ("iclass", "is_load", "is_branch", "operands",
                 "anti_samplers",
                 "p_il1", "p_l2i_given_il1", "p_itlb",
                 "p_dl1", "p_l2d_given_dl1", "p_dtlb",
                 "p_taken", "outcome_cumulative", "outcome_total")

    def __init__(self, stats: ContextStats, slot: int,
                 include_anti_dependencies: bool = False) -> None:
        occurrences = stats.occurrences
        self.iclass = stats.iclasses[slot]
        self.is_load = self.iclass is IClass.LOAD
        self.is_branch = self.iclass in BRANCH_CLASSES
        self.operands = [
            _OperandSampler(stats.dep_hists[slot][op], occurrences)
            for op in range(stats.n_src[slot])
        ]
        self.anti_samplers = []
        if include_anti_dependencies:
            self.anti_samplers = [
                _OperandSampler(hist, occurrences)
                for hist in (stats.waw_hists[slot], stats.war_hists[slot])
                if hist
            ]
        self.p_il1 = stats.il1[slot] / occurrences
        self.p_l2i_given_il1 = (stats.l2i[slot] / stats.il1[slot]
                                if stats.il1[slot] else 0.0)
        self.p_itlb = stats.itlb[slot] / occurrences
        self.p_dl1 = stats.dl1[slot] / occurrences
        self.p_l2d_given_dl1 = (stats.l2d[slot] / stats.dl1[slot]
                                if stats.dl1[slot] else 0.0)
        self.p_dtlb = stats.dtlb[slot] / occurrences
        self.p_taken = stats.taken / occurrences
        self.outcome_cumulative = list(accumulate(stats.outcome_counts))
        self.outcome_total = self.outcome_cumulative[-1]


def _emit_block(recipes: List[_SlotRecipe],
                out: List[SyntheticInstruction],
                rng: random.Random) -> None:
    """Steps 3-8: emit one basic block's synthetic instructions."""
    for recipe in recipes:
        position = len(out)
        distances: List[int] = []
        for operand in recipe.operands:
            if operand.total == 0 or rng.random() >= operand.p_dep:
                continue
            for _ in range(MAX_DEPENDENCY_RETRIES):
                distance = operand.sample(rng)
                target = position - distance
                if target >= 0 and not out[target].produces_register:
                    continue  # producer would be a branch or a store
                distances.append(distance)
                break
        for sampler in recipe.anti_samplers:
            if sampler.total and rng.random() < sampler.p_dep:
                distances.append(sampler.sample(rng))
        il1 = rng.random() < recipe.p_il1
        l2i = il1 and rng.random() < recipe.p_l2i_given_il1
        itlb = rng.random() < recipe.p_itlb
        dl1 = l2d = dtlb = False
        if recipe.is_load:
            dl1 = rng.random() < recipe.p_dl1
            l2d = dl1 and rng.random() < recipe.p_l2d_given_dl1
            dtlb = rng.random() < recipe.p_dtlb
        taken = False
        outcome: Optional[BranchOutcome] = None
        if recipe.is_branch:
            taken = rng.random() < recipe.p_taken
            if recipe.outcome_total:
                draw = rng.random() * recipe.outcome_total
                outcome = BranchOutcome(
                    bisect_right(recipe.outcome_cumulative[:-1], draw))
            else:
                outcome = BranchOutcome.CORRECT
        out.append(SyntheticInstruction(
            iclass=recipe.iclass,
            dep_distances=tuple(distances),
            il1_miss=il1, l2i_miss=l2i, itlb_miss=itlb,
            dl1_miss=dl1, l2d_miss=l2d, dtlb_miss=dtlb,
            taken=taken, outcome=outcome,
        ))


def _sample_start(remaining: Dict[Context, int],
                  rng: random.Random) -> Context:
    """Step 1 as originally written: rebuild the cumulative occurrence
    distribution from scratch on every restart."""
    contexts = []
    weights = []
    for context, budget in remaining.items():
        if budget > 0:
            contexts.append(context)
            weights.append(budget)
    cumulative = list(accumulate(weights))
    draw = rng.random() * cumulative[-1]
    return contexts[bisect_right(cumulative, draw)]


def legacy_generate_synthetic_trace(
    profile: StatisticalProfile,
    reduction_factor: float,
    seed: int = 0,
    reduced: Optional[ReducedFlowGraph] = None,
    max_instructions: Optional[int] = None,
    include_anti_dependencies: bool = False,
) -> SyntheticTrace:
    """The pre-overhaul ``generate_synthetic_trace`` (bisect samplers,
    per-call recipe construction, per-restart cumulative rebuilds)."""
    sfg = profile.sfg
    if not sfg.contexts:
        raise SynthesisError(
            f"profile {profile.name!r} holds no contexts; nothing to "
            f"synthesize (was the trace shorter than one basic block?)")
    if reduced is None:
        reduced = reduce_flow_graph(sfg, reduction_factor)
    elif reduced.sfg is not sfg:
        raise SynthesisError(
            "reduced graph does not belong to this profile")

    rng = random.Random(seed)
    remaining = dict(reduced.occurrences)
    total_remaining = sum(remaining.values())
    order = profile.order
    transitions = sfg.transitions
    out: List[SyntheticInstruction] = []
    recipes: Dict[Context, List[_SlotRecipe]] = {}

    def recipes_for(context: Context) -> List[_SlotRecipe]:
        cached = recipes.get(context)
        if cached is None:
            stats = sfg.contexts[context]
            cached = [_SlotRecipe(stats, slot, include_anti_dependencies)
                      for slot in range(stats.block_size)]
            recipes[context] = cached
        return cached

    while total_remaining > 0:
        context = _sample_start(remaining, rng)  # step 1
        while True:
            remaining[context] -= 1  # step 2
            total_remaining -= 1
            _emit_block(recipes_for(context), out, rng)  # steps 3-8
            if max_instructions is not None and len(out) >= max_instructions:
                total_remaining = 0
                break
            if order == 0:
                break  # k = 0: no edges; restart from step 1
            # Step 9: draw an outgoing edge among targets with budget.
            history = context[1:]
            counts = transitions.get(history)
            if not counts:
                break
            blocks: List[int] = []
            weights: List[int] = []
            for block, weight in counts.items():
                if remaining.get(history + (block,), 0) > 0:
                    blocks.append(block)
                    weights.append(weight)
            if not blocks:
                break
            cumulative = list(accumulate(weights))
            draw = rng.random() * cumulative[-1]
            context = history + (blocks[bisect_right(cumulative, draw)],)

    return SyntheticTrace(
        name=f"{profile.name}/synthetic",
        instructions=out,
        order=order,
        reduction_factor=reduction_factor,
        seed=seed,
    )


def legacy_profile_trace(trace: Trace, config: MachineConfig,
                         order: int = 1,
                         branch_mode: str = "delayed",
                         perfect_caches: bool = False,
                         warmup_trace: Optional[Trace] = None
                         ) -> StatisticalProfile:
    """The pre-overhaul ``profile_trace`` (per-block context lookups,
    dict-backed distance histograms, dense per-slot event buffers)."""
    from repro.frontend.warming import warm_locality_structures

    if order < 0:
        raise ProfileError("order must be >= 0")
    if branch_mode not in BRANCH_MODES:
        raise ProfileError(
            f"branch_mode must be one of {BRANCH_MODES}, got {branch_mode!r}"
        )

    sfg = StatisticalFlowGraph(order)
    warm_hierarchy, warm_unit = warm_locality_structures(warmup_trace,
                                                         config)
    branch_records = _branch_records(trace, config, branch_mode,
                                     unit=warm_unit)
    hierarchy: Optional[CacheHierarchy] = (
        None if perfect_caches else warm_hierarchy
    )

    history: List[int] = [START_BLOCK] * order
    last_writer: Dict[int, int] = {}
    last_reader: Dict[int, int] = {}

    block_insts: list = []
    block_events: list = []  # per slot: (il1, l2i, itlb, dl1, l2d, dtlb)

    for inst in trace.instructions:
        il1 = l2i = itlb = dl1 = dl2 = dtlb = False
        if hierarchy is not None:
            iresult = hierarchy.access_instruction(inst.pc)
            il1, l2i, itlb = (iresult.il1_miss, iresult.l2_miss,
                              iresult.itlb_miss)
            if inst.mem_addr is not None:
                dresult = hierarchy.access_data(inst.mem_addr,
                                                is_store=inst.is_store)
                if inst.is_load:
                    dl1, dl2, dtlb = (dresult.dl1_miss, dresult.l2_miss,
                                      dresult.dtlb_miss)
        block_insts.append(inst)
        block_events.append((il1, l2i, itlb, dl1, dl2, dtlb))

        if not inst.is_branch:
            continue

        block = inst.bb_id
        stats = sfg.context_for(
            history, block,
            iclasses=[i.iclass for i in block_insts],
            n_src=[len(i.src_regs) for i in block_insts],
        )
        stats.occurrences += 1
        sfg.total_block_executions += 1
        sfg.record_transition(history, block)

        for slot, (binst, events) in enumerate(zip(block_insts,
                                                   block_events)):
            e_il1, e_l2i, e_itlb, e_dl1, e_l2d, e_dtlb = events
            stats.il1[slot] += e_il1
            stats.l2i[slot] += e_l2i
            stats.itlb[slot] += e_itlb
            stats.dl1[slot] += e_dl1
            stats.l2d[slot] += e_l2d
            stats.dtlb[slot] += e_dtlb
            for operand, reg in enumerate(binst.src_regs):
                writer = last_writer.get(reg)
                if writer is not None:
                    distance = binst.seq - writer
                    if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                        stats.record_dependency(slot, operand, distance)
                last_reader[reg] = binst.seq
            if binst.dst_reg is not None:
                previous_writer = last_writer.get(binst.dst_reg)
                if previous_writer is not None:
                    distance = binst.seq - previous_writer
                    if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                        stats.record_anti_dependency(slot, "waw", distance)
                previous_reader = last_reader.get(binst.dst_reg)
                if previous_reader is not None:
                    distance = binst.seq - previous_reader
                    if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                        stats.record_anti_dependency(slot, "war", distance)
                last_writer[binst.dst_reg] = binst.seq

        record = branch_records.get(inst.seq)
        if record is not None:
            stats.taken += record.taken
            stats.outcome_counts[record.outcome] += 1

        if order > 0:
            history.append(block)
            del history[0]
        block_insts = []
        block_events = []

    # A trailing partial block (trace ended mid-block) is discarded.
    return StatisticalProfile(
        name=trace.name,
        order=order,
        sfg=sfg,
        trace_instructions=len(trace),
        branch_mode=branch_mode,
        perfect_caches=perfect_caches,
        config=config,
    )
