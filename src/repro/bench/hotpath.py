"""Hot-path micro-benchmark (``BENCH_hotpath.json``).

Times the three phases the statistical-simulation pipeline spends its
life in — statistical profiling, synthetic trace generation, and
superscalar simulation — each as an in-process before/after pair:

* **before**: the frozen pre-overhaul code (:mod:`repro.bench.legacy`
  and :mod:`repro.cpu.reference`);
* **after**: the shipped hot paths (:mod:`repro.core.profiler`,
  :mod:`repro.core.synthesis`, :mod:`repro.cpu.pipeline`).

Both sides run on the same machine, Python and inputs, so the reported
speedups measure the code, not the environment.  Synthesis is timed at
the paper's Figure 6 reduction factor R=1000 (many short traces — the
regime where per-call table reuse matters) and at a low R (one long
trace — the regime where per-draw cost matters).  The payload also
carries a draw-stability cross-check: the optimized generator must
produce byte-identical traces to the legacy one, seed for seed.

Schema 2 adds the **vector** phase: end-to-end synthesize+simulate
through the columnar batch kernels (:mod:`repro.core.columnar` and the
pipeline's :class:`~repro.cpu.source.ColumnarSource` fast path) against
the scalar object path, plus a synthesis-only columnar measurement.
The columnar generator draws from a different — statistically
equivalent — RNG stream, so instead of byte-stability the phase records
both paths' IPC and their relative error (see docs/performance.md).

``check_regression`` compares a payload against a committed baseline
(``benchmarks/perf/BASELINE_hotpath.json``) and reports phases whose
speedup fell more than the tolerance below the pinned value; the CI
perf-smoke job fails on any such report.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.config import baseline_config
from repro.obs.metrics import get_registry
from repro.obs.tracing import phase_breakdown
from repro.core.profiler import profile_trace
from repro.core.reduction import reduce_flow_graph
from repro.core.synthesis import generate_synthetic_trace, prepare_recipes
from repro.cpu.pipeline import SuperscalarPipeline
from repro.cpu.source import PreannotatedSource
from repro.bench.legacy import (
    ReferencePipeline,
    legacy_generate_synthetic_trace,
    legacy_profile_trace,
)
from repro.experiments.common import ExperimentScale, prepare_benchmark

BENCH_SCHEMA = 2

#: The acceptance workload: the benchmark the determinism goldens pin.
DEFAULT_BENCHMARK = "gzip"

#: Per-phase keys every payload must carry (CI schema validation).
PHASE_KEYS = ("before_seconds", "after_seconds", "speedup",
              "ns_per_unit_before", "ns_per_unit_after", "units",
              "unit", "repeats")

REQUIRED_KEYS = ("schema", "benchmark", "scale", "quick", "platform",
                 "draw_stable", "phases", "speedups",
                 "phase_breakdown")


def _time(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-N wall-clock of *fn* (minimum damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def _phase_payload(unit: str, units: int, repeats: int,
                   before_s: float, after_s: float) -> Dict[str, Any]:
    return {
        "unit": unit,
        "units": units,
        "repeats": repeats,
        "before_seconds": before_s,
        "after_seconds": after_s,
        "ns_per_unit_before": before_s / units * 1e9 if units else 0.0,
        "ns_per_unit_after": after_s / units * 1e9 if units else 0.0,
        "before_per_second": units / before_s if before_s else 0.0,
        "after_per_second": units / after_s if after_s else 0.0,
        "speedup": before_s / after_s if after_s else float("inf"),
    }


def _trace_key(trace) -> list:
    return [(inst.iclass, inst.dep_distances, inst.il1_miss,
             inst.l2i_miss, inst.itlb_miss, inst.dl1_miss,
             inst.l2d_miss, inst.dtlb_miss, inst.taken, inst.outcome)
            for inst in trace.instructions]


def run_hotpath_bench(
    benchmark: str = DEFAULT_BENCHMARK,
    scale: Optional[ExperimentScale] = None,
    quick: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the before/after hot-path benchmark; returns the payload.

    *quick* sizes the repeat counts for CI (a couple of seconds); the
    full mode repeats enough for stable single-percent numbers.
    """
    from repro.experiments.common import bench_scale

    log = log or (lambda message: None)
    scale = scale or bench_scale()
    config = baseline_config()
    phases_before = phase_breakdown()

    synth_seeds = 200 if quick else 600
    low_r_seeds = 10 if quick else 40
    synth_reps = 3
    profile_reps = 2 if quick else 4
    pipeline_reps = 3 if quick else 10

    log(f"preparing {benchmark} (warmup={scale.warmup} "
        f"reference={scale.reference})")
    warmup, reference = prepare_benchmark(benchmark, scale)

    # ---- phase 1: statistical profiling -------------------------------
    log(f"profiling: {len(reference)} instructions x{profile_reps} "
        f"(before/after)")
    after_profile = profile_trace(reference, config, order=1,
                                  branch_mode="delayed",
                                  warmup_trace=warmup)
    profile_after_s = _time(
        lambda: profile_trace(reference, config, order=1,
                              branch_mode="delayed",
                              warmup_trace=warmup),
        profile_reps)
    profile_before_s = _time(
        lambda: legacy_profile_trace(reference, config, order=1,
                                     branch_mode="delayed",
                                     warmup_trace=warmup),
        profile_reps)
    profile_phase = _phase_payload("instruction", len(reference),
                                   profile_reps,
                                   profile_before_s, profile_after_s)

    # ---- phase 2: synthesis -------------------------------------------
    profile = after_profile
    prepare_recipes(profile)
    low_r = scale.reduction_factor

    def synth_case(r: float, seeds: int,
                   label: str) -> Dict[str, Any]:
        reduced = reduce_flow_graph(profile.sfg, r)
        new0 = generate_synthetic_trace(profile, r, seed=0,
                                        reduced=reduced)
        old0 = legacy_generate_synthetic_trace(profile, r, seed=0,
                                               reduced=reduced)
        stable = _trace_key(new0) == _trace_key(old0)
        units = len(new0.instructions) * seeds
        log(f"synthesis R={r}: {len(new0.instructions)} instructions "
            f"x{seeds} seeds ({label})")

        def run_new() -> None:
            for seed in range(seeds):
                generate_synthetic_trace(profile, r, seed=seed,
                                         reduced=reduced)

        def run_old() -> None:
            for seed in range(seeds):
                legacy_generate_synthetic_trace(profile, r, seed=seed,
                                                reduced=reduced)

        # Best-of-N: a GC pause landing inside a single timed sweep can
        # swing an 18-instruction x 600-seed loop by tens of percent.
        payload = _phase_payload("instruction", units, synth_reps,
                                 _time(run_old, synth_reps),
                                 _time(run_new, synth_reps))
        payload["reduction_factor"] = r
        payload["seeds"] = seeds
        payload["draw_stable"] = stable
        return payload

    synthesis_phase = synth_case(1000.0, synth_seeds, "figure 6 regime")
    synthesis_low_r = synth_case(low_r, low_r_seeds, "long-trace regime")

    # ---- phase 3: superscalar simulation ------------------------------
    synthetic = generate_synthetic_trace(profile, low_r, seed=0)
    slots = list(synthetic.to_fetch_slots(config))
    new_result = SuperscalarPipeline(
        config, PreannotatedSource(list(slots))).run()
    old_result = ReferencePipeline(
        config, PreannotatedSource(list(slots))).run()
    cycles_identical = (new_result.cycles == old_result.cycles
                        and new_result.activity == old_result.activity)
    log(f"pipeline: {len(slots)} slots / {new_result.cycles} cycles "
        f"x{pipeline_reps} (before/after)")
    # Construct each source once and rewind it per repeat: the timed
    # region measures the pipeline, not a fresh list(slots) copy plus
    # source construction on every iteration.
    new_source = PreannotatedSource(list(slots))
    old_source = PreannotatedSource(list(slots))

    def run_new_pipeline() -> None:
        new_source._pos = 0
        SuperscalarPipeline(config, new_source).run()

    def run_old_pipeline() -> None:
        old_source._pos = 0
        ReferencePipeline(config, old_source).run()

    pipeline_after_s = _time(run_new_pipeline, pipeline_reps)
    pipeline_before_s = _time(run_old_pipeline, pipeline_reps)
    pipeline_phase = _phase_payload("cycle", new_result.cycles,
                                    pipeline_reps,
                                    pipeline_before_s, pipeline_after_s)
    pipeline_phase["slots"] = len(slots)
    pipeline_phase["results_identical"] = cycles_identical

    # ---- phase 4: columnar batch execution (schema 2) -----------------
    # End-to-end synthesize+simulate, scalar objects vs columnar batch
    # kernels.  Not a before/after of the same draws — the columnar
    # generator uses a different (statistically equivalent) RNG stream —
    # so the phase also records both paths' IPC for an agreement check.
    from repro.core.columnar import generate_columnar_trace
    from repro.core.framework import (simulate_columnar_trace,
                                      simulate_synthetic_trace)

    vector_r = low_r
    reduced = reduce_flow_graph(profile.sfg, vector_r)
    scalar_trace = generate_synthetic_trace(profile, vector_r, seed=0,
                                            reduced=reduced)
    columnar_trace = generate_columnar_trace(profile, vector_r, seed=0,
                                             reduced=reduced)
    scalar_result, _ = simulate_synthetic_trace(scalar_trace, config)
    vector_result, _ = simulate_columnar_trace(columnar_trace, config)
    log(f"vector: {len(columnar_trace.iclass)} instructions "
        f"x{pipeline_reps} (scalar/columnar end-to-end)")

    def run_scalar_e2e() -> None:
        trace = generate_synthetic_trace(profile, vector_r, seed=0,
                                         reduced=reduced)
        simulate_synthetic_trace(trace, config)

    def run_vector_e2e() -> None:
        trace = generate_columnar_trace(profile, vector_r, seed=0,
                                        reduced=reduced)
        simulate_columnar_trace(trace, config)

    vector_phase = _phase_payload("instruction",
                                  len(columnar_trace.iclass),
                                  pipeline_reps,
                                  _time(run_scalar_e2e, pipeline_reps),
                                  _time(run_vector_e2e, pipeline_reps))
    vector_phase["reduction_factor"] = vector_r
    vector_phase["ipc_scalar"] = scalar_result.ipc
    vector_phase["ipc_vector"] = vector_result.ipc
    vector_phase["ipc_relative_error"] = (
        abs(vector_result.ipc - scalar_result.ipc) / scalar_result.ipc
        if scalar_result.ipc else 0.0)

    # Synthesis-only columnar speedup in the long-trace regime — the
    # pipeline loop dominates end-to-end, so this isolates the batch
    # kernel's win.  (At R=1000's tens-of-instruction traces the
    # per-call numpy overhead eats the batch win; that regime stays on
    # the scalar generator.)
    def run_scalar_synth() -> None:
        for seed in range(low_r_seeds):
            generate_synthetic_trace(profile, vector_r, seed=seed,
                                     reduced=reduced)

    def run_vector_synth() -> None:
        for seed in range(low_r_seeds):
            generate_columnar_trace(profile, vector_r, seed=seed,
                                    reduced=reduced)

    vector_synth_phase = _phase_payload(
        "instruction", len(columnar_trace.iclass) * low_r_seeds,
        synth_reps,
        _time(run_scalar_synth, synth_reps),
        _time(run_vector_synth, synth_reps))
    vector_synth_phase["reduction_factor"] = vector_r
    vector_synth_phase["seeds"] = low_r_seeds

    draw_stable = (synthesis_phase["draw_stable"]
                   and synthesis_low_r["draw_stable"])
    speedups = {
        "profile": profile_phase["speedup"],
        "synthesis": synthesis_phase["speedup"],
        "synthesis_low_r": synthesis_low_r["speedup"],
        "pipeline": pipeline_phase["speedup"],
        "vector": vector_phase["speedup"],
        "vector_synthesis": vector_synth_phase["speedup"],
    }
    registry = get_registry()
    for name, value in speedups.items():
        registry.gauge(f"bench.speedup.{name}").set(value)
    registry.counter("bench.hotpath_runs").inc()

    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "scale": {"warmup": scale.warmup,
                  "reference": scale.reference,
                  "reduction_factor": scale.reduction_factor},
        "quick": quick,
        "host_cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "draw_stable": draw_stable,
        "phases": {
            "profile": profile_phase,
            "synthesis": synthesis_phase,
            "synthesis_low_r": synthesis_low_r,
            "pipeline": pipeline_phase,
            "vector": vector_phase,
            "vector_synthesis": vector_synth_phase,
        },
        "speedups": speedups,
        # Where this process spent its wall-clock during the bench
        # (profile/reduce/synthesize ... spans), for the perf record.
        "phase_breakdown": _phase_delta(phases_before,
                                        phase_breakdown()),
    }


def _phase_delta(before: Dict[str, Dict],
                 after: Dict[str, Dict]) -> Dict[str, Dict]:
    """Per-phase wall-clock between two ``phase_breakdown`` snapshots
    (the bench's own share of the process-wide registry)."""
    delta: Dict[str, Dict] = {}
    for phase, stats in after.items():
        count = stats["count"] - before.get(phase, {}).get("count", 0)
        total = stats["total"] - before.get(phase, {}).get("total", 0.0)
        if count <= 0:
            continue
        delta[phase] = {"count": count, "total": total,
                        "mean": total / count}
    return delta


def validate_payload(payload: Dict[str, Any]) -> List[str]:
    """Schema check for a ``BENCH_hotpath.json`` payload; returns the
    list of problems (empty when valid)."""
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema {payload.get('schema')!r} != {BENCH_SCHEMA}")
    for name, phase in payload.get("phases", {}).items():
        for key in PHASE_KEYS:
            if key not in phase:
                problems.append(f"phase {name!r} missing {key!r}")
    # Schema 2: the columnar phase carries the scalar/vector IPC
    # agreement alongside its timing.
    vector = payload.get("phases", {}).get("vector")
    if vector is None:
        problems.append("missing phase 'vector'")
    else:
        for key in ("ipc_scalar", "ipc_vector", "ipc_relative_error"):
            if key not in vector:
                problems.append(f"phase 'vector' missing {key!r}")
    if not payload.get("draw_stable", False):
        problems.append("draw_stable is false: the optimized generator "
                        "diverged from the legacy draw sequence")
    return problems


def check_regression(payload: Dict[str, Any],
                     baseline: Dict[str, Any],
                     tolerance: float = 0.15) -> List[str]:
    """Compare *payload* speedups against a pinned *baseline*.

    A phase regresses when its measured speedup falls more than
    *tolerance* (fractional) below the baseline's pinned speedup.
    Returns human-readable failure strings (empty when clean).
    """
    failures: List[str] = []
    for name, pinned in baseline.get("speedups", {}).items():
        measured = payload.get("speedups", {}).get(name)
        if measured is None:
            failures.append(f"phase {name!r} missing from payload")
            continue
        floor = pinned * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{name}: speedup {measured:.2f}x fell below "
                f"{floor:.2f}x (baseline {pinned:.2f}x - {tolerance:.0%})")
    return failures


def write_bench(payload: Dict[str, Any],
                path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")


#: Bump when TRAJECTORY.jsonl entries change incompatibly.
TRAJECTORY_SCHEMA = 1

#: Where ``repro bench`` appends its per-run history by default.
DEFAULT_TRAJECTORY = Path("benchmarks/perf/TRAJECTORY.jsonl")


def git_sha() -> Optional[str]:
    """The working tree's short commit sha, or None outside git."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def append_trajectory(payload: Dict[str, Any],
                      path: Union[str, Path] = DEFAULT_TRAJECTORY
                      ) -> Path:
    """Append one bench run to the perf trajectory (JSONL).

    ``BENCH_hotpath.json`` is last-run-wins; the trajectory keeps every
    run — sha, timestamp, speedups — so the CI perf gate can report a
    trend instead of only last-vs-baseline.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "ts": time.time(),
        "git_sha": git_sha(),
        "benchmark": payload.get("benchmark"),
        "quick": payload.get("quick"),
        "draw_stable": payload.get("draw_stable"),
        "results_identical": payload.get("phases", {})
        .get("pipeline", {}).get("results_identical"),
        "speedups": payload.get("speedups", {}),
    }
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path
