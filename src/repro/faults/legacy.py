"""Legacy per-variable fault injection (``REPRO_FAULT_*``).

A :class:`FaultPlan` describes which units should fail (or stall) and
how often.  The runner consults the plan before executing each attempt,
so injected failures exercise exactly the containment / retry / resume
machinery that real failures would.  Plans come from code (tests) or
from the environment (CLI smoke runs).

This is the original, serial-RNG injector kept for backward
compatibility; new code should prefer the unified, order-independent
:class:`~repro.faults.chaos.ChaosPlan` driven by one ``REPRO_CHAOS``
spec string.  :func:`repro.faults.plan_from_env` arbitrates between
the two (``REPRO_CHAOS`` wins).

Environment variables:

``REPRO_FAULT_BENCHMARKS``
    Comma-separated benchmark names whose units always fail.
``REPRO_FAULT_RATE``
    Probability in [0, 1] that any attempt fails.
``REPRO_FAULT_ATTEMPTS``
    Fail only the first N attempts of a matching unit (transient
    faults); unset or 0 means every attempt fails (permanent fault).
``REPRO_FAULT_DELAY``
    Seconds of injected sleep per attempt (for timeout testing).
``REPRO_FAULT_CACHE_RATE``
    Probability in [0, 1] that a freshly written design-space cache
    entry (:mod:`repro.dse.cache`) is corrupted on disk, exercising the
    checksum-verify-and-discard path.
``REPRO_FAULT_SEED``
    Seed for the probabilistic injector (default 0).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import InjectedFaultError


@dataclass
class FaultPlan:
    """Configuration for the fault-injection hook.

    ``fail_benchmarks`` match units by their ``benchmark`` attribute;
    ``fail_rate`` injects probabilistically into every unit.
    ``fail_attempts`` limits deterministic injection to the first N
    attempts of each matching unit, modelling transient faults that a
    retry survives; 0 means the fault is permanent.
    """

    fail_benchmarks: Tuple[str, ...] = ()
    fail_rate: float = 0.0
    fail_attempts: int = 0
    delay_seconds: float = 0.0
    cache_corrupt_rate: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_rate <= 1.0:
            raise ValueError("fail_rate must be within [0, 1]")
        if not 0.0 <= self.cache_corrupt_rate <= 1.0:
            raise ValueError("cache_corrupt_rate must be within [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        self._rng = random.Random(self.seed)

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["FaultPlan"]:
        """Build a plan from ``REPRO_FAULT_*`` variables, or None when
        none are set (the common case: injection disabled)."""
        benchmarks = tuple(
            name.strip()
            for name in environ.get("REPRO_FAULT_BENCHMARKS", "").split(",")
            if name.strip()
        )
        rate = float(environ.get("REPRO_FAULT_RATE", "0") or 0)
        attempts = int(environ.get("REPRO_FAULT_ATTEMPTS", "0") or 0)
        delay = float(environ.get("REPRO_FAULT_DELAY", "0") or 0)
        cache_rate = float(
            environ.get("REPRO_FAULT_CACHE_RATE", "0") or 0)
        seed = int(environ.get("REPRO_FAULT_SEED", "0") or 0)
        if not benchmarks and rate == 0.0 and delay == 0.0 \
                and cache_rate == 0.0:
            return None
        return cls(fail_benchmarks=benchmarks, fail_rate=rate,
                   fail_attempts=attempts, delay_seconds=delay,
                   cache_corrupt_rate=cache_rate, seed=seed)

    def inject(self, unit_id: str, benchmark: Optional[str],
               attempt: int) -> None:
        """Called by the runner before each attempt; sleeps and/or
        raises :class:`InjectedFaultError` according to the plan."""
        if self.delay_seconds > 0:
            time.sleep(self.delay_seconds)
        targeted = benchmark is not None and \
            benchmark in self.fail_benchmarks
        if targeted and (self.fail_attempts == 0
                         or attempt <= self.fail_attempts):
            raise InjectedFaultError(
                f"injected fault in {unit_id} (attempt {attempt})")
        if self.fail_rate > 0 and self._rng.random() < self.fail_rate:
            raise InjectedFaultError(
                f"injected random fault in {unit_id} "
                f"(attempt {attempt}, rate {self.fail_rate:g})")

    def maybe_corrupt_artifact(self, path) -> bool:
        """Garble the file at *path* with probability
        ``cache_corrupt_rate``; returns whether it did.

        Called by the design-space result cache right after a
        successful write, so injected corruption exercises exactly the
        checksum-verification path that real bit rot or truncation
        would.
        """
        if self.cache_corrupt_rate <= 0:
            return False
        if self._rng.random() >= self.cache_corrupt_rate:
            return False
        from pathlib import Path

        target = Path(path)
        data = target.read_bytes()
        # Truncate to half and flip a byte: defeats both JSON parsing
        # and, for short payloads, the embedded checksum.
        cut = data[:max(1, len(data) // 2)]
        garbled = bytes([cut[0] ^ 0xFF]) + cut[1:]
        target.write_bytes(garbled)
        return True
