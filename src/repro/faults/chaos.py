"""Unified deterministic chaos injection (``REPRO_CHAOS``).

One spec string enables seeded fault injection at every breakable
layer of the stack, so the supervision/retry/quarantine machinery can
be exercised systematically instead of through scattered one-off
hooks.  The injection *sites*:

``worker-kill``
    ``os._exit`` a design-space pool worker right before it runs a
    task (models segfaults and OOM kills; drives the
    :class:`~repro.dse.supervisor.PoolSupervisor` recovery path).
    Only ever fired inside pool worker processes — a serial sweep has
    no worker to kill, which is exactly what makes the supervisor's
    serial fallback able to finish a sweep the pool cannot.
``task-fail``
    Raise a retryable :class:`~repro.errors.InjectedFaultError` inside
    a task attempt (the unified replacement for
    ``REPRO_FAULT_BENCHMARKS``/``RATE``).
``io-error``
    Raise :class:`~repro.errors.InjectedIOError` (an ``OSError``) at a
    filesystem boundary: profile save/load, result-cache read/write.
``artifact-corrupt``
    Garble a freshly written cache entry on disk (the unified
    replacement for ``REPRO_FAULT_CACHE_RATE``), exercising the
    checksum-verify-and-discard path.
``slow-call``
    Sleep ``delay`` seconds before a task attempt (timeout testing).
``journal-corrupt``
    Garble the tail of the service job journal right after an append
    (:mod:`repro.service.journal`), exercising the skip-bad-lines
    recovery path — a crashed daemon must requeue every journaled job
    even when its last write was torn.
``submit-drop``
    Drop a job-submission response on the daemon side after the job
    was enqueued (:mod:`repro.service.daemon`): the client sees a dead
    connection and retries, and idempotent submission keying is what
    keeps the retry from double-enqueueing.
``heartbeat-loss``
    Skip a running job's lease-heartbeat write
    (:mod:`repro.service.jobs`), so the lease goes stale and a
    restarted daemon requeues the job exactly like a crashed one.
``worker-hang``
    Spin a pool worker forever right before it runs a task — alive,
    consuming a slot, making no progress and writing no heartbeats.
    The canary for the :class:`~repro.dse.supervisor.PoolSupervisor`
    hang watchdog (:mod:`repro.health`): the stale lease beat gets the
    worker killed, attributed and the point eventually quarantined
    exactly like a crash.  Only ever fired inside pool worker
    processes — hanging a serial sweep would hang the user.
``mem-balloon``
    Allocate ``mb`` megabytes of resident memory (touched pages, held
    for the worker's lifetime) before running a task — the canary for
    the RSS guardrail: the soft ceiling trips the memory rung of the
    degradation ladder, the hard ceiling fails the point cleanly with
    a flight-recorder dump.
``pipeline-skew``
    Perturb the optimized pipeline's result inside the differential
    fuzzing oracle (:mod:`repro.fuzz.oracle`): the reference and the
    optimized run disagree by one cycle, as a real event-driven
    fast-forward bug would look.  This is the fuzz harness testing
    itself — the oracle must catch the skew, and the minimizer must
    shrink the case to a small reproducer.

Spec grammar (segments split on ``;``, site options on ``,``)::

    REPRO_CHAOS = "seed=5;worker-kill:rate=0.3;io-error:rate=0.1,match=cache"

    spec    := segment (";" segment)*
    segment := "seed=" INT | site
    site    := NAME [":" kv ("," kv)*]
    kv      := "rate=" FLOAT      # fire probability, default 1.0
             | "attempts=" INT    # fire only the first N attempts
                                  # (dispatches); 0 = every attempt
             | "match=" TEXT      # only tokens containing TEXT
                                  # (no "," ";" or ":" — grammar chars)
             | "delay=" FLOAT     # slow-call sleep seconds
             | "mb=" FLOAT        # mem-balloon megabytes

Every decision is a pure function of ``(seed, site, token, attempt)``
— a SHA-256 hash, no shared RNG stream — so injection is
**order-independent**: a serial sweep, a ``--jobs 8`` sweep and a
resumed sweep inject faults into exactly the same tasks.  That is what
lets the acceptance test demand byte-identical metrics between a
chaos run and a fault-free run for every non-poisoned point.

Fired injections are counted (``chaos.injected``,
``chaos.injected.<site>``) and narrated as ``chaos.inject`` debug
events through :mod:`repro.obs`; note that injections fired inside
pool worker processes land in the worker's (unconfigured) registry
and are therefore not visible in the parent's ``metrics.json``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.errors import ChaosSpecError, InjectedFaultError, InjectedIOError

#: Every site name the spec grammar accepts.
SITES = ("worker-kill", "worker-hang", "mem-balloon", "task-fail",
         "io-error", "artifact-corrupt", "slow-call", "journal-corrupt",
         "submit-drop", "heartbeat-loss", "pipeline-skew")

#: Exit status used by the worker-kill site; distinctive on purpose so
#: supervisor logs and tests can tell an injected kill from a real one.
WORKER_KILL_EXIT_CODE = 87

_SITE_KEYS = ("rate", "attempts", "match", "delay", "mb")

#: mem-balloon ballast: module-level so the allocation outlives the
#: injection call and keeps the worker's RSS elevated.
_BALLAST: list = []


@dataclass(frozen=True)
class ChaosSite:
    """One enabled injection site with its firing conditions."""

    name: str
    rate: float = 1.0
    attempts: int = 0
    match: str = ""
    delay: float = 0.25
    mb: float = 64.0

    def __post_init__(self) -> None:
        if self.name not in SITES:
            raise ChaosSpecError(
                f"unknown chaos site {self.name!r}; "
                f"expected one of {', '.join(SITES)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ChaosSpecError(
                f"{self.name}: rate must be within [0, 1], "
                f"got {self.rate!r}")
        if self.attempts < 0:
            raise ChaosSpecError(
                f"{self.name}: attempts must be >= 0, "
                f"got {self.attempts!r}")
        if self.delay < 0:
            raise ChaosSpecError(
                f"{self.name}: delay must be >= 0, got {self.delay!r}")
        if self.mb <= 0:
            raise ChaosSpecError(
                f"{self.name}: mb must be positive, got {self.mb!r}")

    def to_segment(self) -> str:
        parts = []
        defaults = ChaosSite(self.name)
        for key in _SITE_KEYS:
            value = getattr(self, key)
            if value != getattr(defaults, key):
                parts.append(f"{key}={value}")
        return self.name + (":" + ",".join(parts) if parts else "")


@dataclass
class ChaosPlan:
    """A parsed ``REPRO_CHAOS`` spec: seed plus enabled sites.

    Duck-type compatible with the legacy
    :class:`~repro.faults.legacy.FaultPlan` where the runner and the
    result cache consume it (``inject`` / ``maybe_corrupt_artifact``),
    and extends it with the worker-kill and io-error sites.
    """

    seed: int = 0
    sites: Dict[str, ChaosSite] = field(default_factory=dict)

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse one spec string; raises :class:`ChaosSpecError` with a
        message naming exactly what is wrong."""
        seed = 0
        sites: Dict[str, ChaosSite] = {}
        for raw in spec.split(";"):
            segment = raw.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                try:
                    seed = int(segment[len("seed="):])
                except ValueError:
                    raise ChaosSpecError(
                        f"seed must be an integer, got {segment!r}")
                continue
            name, _, options = segment.partition(":")
            name = name.strip()
            kwargs: Dict[str, object] = {}
            if options:
                for pair in options.split(","):
                    key, eq, value = pair.partition("=")
                    key = key.strip()
                    if not eq:
                        raise ChaosSpecError(
                            f"{name}: expected key=value, got {pair!r}")
                    if key not in _SITE_KEYS:
                        raise ChaosSpecError(
                            f"{name}: unknown option {key!r}; expected "
                            f"one of {', '.join(_SITE_KEYS)}")
                    try:
                        if key in ("rate", "delay", "mb"):
                            kwargs[key] = float(value)
                        elif key == "attempts":
                            kwargs[key] = int(value)
                        else:
                            kwargs[key] = value
                    except ValueError:
                        raise ChaosSpecError(
                            f"{name}: {key} must be numeric, "
                            f"got {value!r}")
            if name in sites:
                raise ChaosSpecError(f"site {name!r} given twice")
            sites[name] = ChaosSite(name=name, **kwargs)
        if not sites:
            raise ChaosSpecError(
                f"chaos spec {spec!r} enables no site; expected e.g. "
                f"'worker-kill:rate=0.3'")
        return cls(seed=seed, sites=sites)

    def to_spec(self) -> str:
        """The spec string this plan round-trips through — how an
        explicit plan is shipped to pool workers."""
        segments = [f"seed={self.seed}"] if self.seed else []
        segments.extend(site.to_segment()
                        for site in self.sites.values())
        return ";".join(segments)

    # -- the decision function ------------------------------------------

    def fires(self, site_name: str, token: str, attempt: int = 1) -> bool:
        """Whether the *site* injects for (*token*, *attempt*).

        Deterministic and order-independent: the decision hashes
        ``(seed, site, token, attempt)`` and compares against the
        site's rate, so it does not depend on how many other decisions
        were made before this one or in which process.
        """
        site = self.sites.get(site_name)
        if site is None:
            return False
        if site.match and site.match not in token:
            return False
        if site.attempts and attempt > site.attempts:
            return False
        if site.rate < 1.0:
            digest = hashlib.sha256(
                f"{self.seed}|{site_name}|{token}|{attempt}"
                .encode("utf-8")).digest()
            draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            if draw >= site.rate:
                return False
        self._record(site_name, token, attempt)
        return True

    def _record(self, site_name: str, token: str, attempt: int) -> None:
        from repro.obs import events as obs_events
        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.counter("chaos.injected").inc()
        registry.counter(f"chaos.injected.{site_name}").inc()
        obs_events.emit("chaos.inject", level="debug", site=site_name,
                        token=token, attempt=attempt)

    # -- injection sites -------------------------------------------------

    def inject(self, unit_id: str, benchmark: Optional[str],
               attempt: int) -> None:
        """Task-attempt hook (same signature the runner uses for the
        legacy plan): slow-call sleeps, task-fail raises.

        The decision token carries both the unit id and the benchmark
        so ``match=`` can target either, like the legacy plan's
        benchmark list."""
        token = f"{unit_id}|{benchmark or ''}"
        slow = self.sites.get("slow-call")
        if slow is not None and self.fires("slow-call", token, attempt):
            time.sleep(slow.delay)
        if self.fires("task-fail", token, attempt):
            raise InjectedFaultError(
                f"injected task failure in {unit_id} "
                f"(attempt {attempt})")

    def maybe_kill_worker(self, token: str, dispatch: int = 1) -> None:
        """Worker-kill site: hard-exit the current process.

        ``os._exit`` skips ``finally`` blocks and atexit handlers —
        exactly like a segfault or the OOM killer — so the task's
        lease file survives for the supervisor to attribute the crash.
        Call this only from inside a pool worker process.
        """
        if self.fires("worker-kill", token, dispatch):
            try:
                # Last words: os._exit skips every normal teardown, so
                # the flight recorder (when installed) dumps its ring
                # buffer here — the quarantine manifest links to it.
                from repro.obs import flightrec
                flightrec.dump("chaos-worker-kill", token=token,
                               dispatch=dispatch)
            except Exception:
                pass
            os._exit(WORKER_KILL_EXIT_CODE)

    def maybe_hang_worker(self, token: str, dispatch: int = 1) -> None:
        """worker-hang site: spin forever without progress.

        The sleep loop never reaches a health checkpoint, so the lease
        beat written at task start goes stale — which is the point:
        only the supervisor's hang watchdog (SIGKILL on a stale beat)
        can end this process.  Call this only from inside a pool
        worker process; a serial sweep must never enter it.
        """
        if self.fires("worker-hang", token, dispatch):
            while True:  # pragma: no cover - exits only via SIGKILL
                time.sleep(0.05)

    def maybe_balloon_memory(self, token: str, dispatch: int = 1) -> None:
        """mem-balloon site: grow this process's RSS by the site's
        ``mb`` megabytes of touched pages, held for the process
        lifetime so the health RSS watchdog sees a sustained breach
        rather than a transient spike."""
        site = self.sites.get("mem-balloon")
        if site is not None and self.fires("mem-balloon", token,
                                           dispatch):
            _BALLAST.append(b"\x01" * int(site.mb * 1024 * 1024))

    def maybe_io_error(self, op: str, token: str = "") -> None:
        """io-error site: raise :class:`InjectedIOError` for the
        filesystem operation *op* on *token* (a path or cache key)."""
        if self.fires("io-error", f"{op}:{token}"):
            raise InjectedIOError(
                f"injected IO error in {op} ({token})")

    def maybe_corrupt_artifact(self, path, token: Optional[str] = None
                               ) -> bool:
        """artifact-corrupt site: garble the freshly written file at
        *path*; returns whether it did.

        The decision token defaults to the file's name (content-hash
        cache entries have stable names), keeping corruption
        deterministic across runs and processes.
        """
        target = Path(path)
        if not self.fires("artifact-corrupt", token or target.name):
            return False
        data = target.read_bytes()
        # Same garbling as the legacy plan: truncate to half and flip
        # the first byte, defeating both JSON parsing and, for short
        # payloads, the embedded checksum.
        cut = data[:max(1, len(data) // 2)]
        target.write_bytes(bytes([cut[0] ^ 0xFF]) + cut[1:])
        return True

    def maybe_corrupt_journal(self, path, token: str) -> bool:
        """journal-corrupt site: tear the tail of the append-only job
        journal at *path* — truncate mid-record and flip the last
        surviving byte, the on-disk shape of a power cut during an
        append.  Returns whether it fired.

        The decision token is the appended record's sequence number,
        so which append gets torn is stable across runs.
        """
        if not self.fires("journal-corrupt", token):
            return False
        target = Path(path)
        data = target.read_bytes()
        if not data:
            return True
        keep = max(1, len(data) - max(2, len(data) // 8))
        cut = bytearray(data[:keep])
        cut[-1] ^= 0xFF
        target.write_bytes(bytes(cut))
        return True

    def drops_submit(self, token: str) -> bool:
        """submit-drop site: whether the daemon should drop this
        submission's response after enqueueing (the client must retry
        into the idempotent-submission path)."""
        return self.fires("submit-drop", token)

    def loses_heartbeat(self, token: str, attempt: int = 1) -> bool:
        """heartbeat-loss site: whether this lease-heartbeat write
        should be skipped, letting the lease go stale."""
        return self.fires("heartbeat-loss", token, attempt)

    def skews_pipeline(self, token: str) -> bool:
        """pipeline-skew site: whether the differential oracle should
        perturb the optimized pipeline's result for this fuzz case.

        The decision token is the case id, so a skewed case stays
        skewed through every minimization trial — exactly what the
        shrinker needs to reduce it to a minimal reproducer."""
        return self.fires("pipeline-skew", token)


def active_sites(plan) -> Tuple[str, ...]:
    """The chaos sites *plan* can fire, () for legacy/absent plans."""
    if isinstance(plan, ChaosPlan):
        return tuple(sorted(plan.sites))
    return ()
