"""Unified fault-injection subsystem.

Two injectors live here:

* :class:`~repro.faults.chaos.ChaosPlan` — the unified, deterministic
  chaos harness driven by one ``REPRO_CHAOS`` spec string (seeded
  injection sites for worker-kill, IO errors, artifact corruption and
  slow calls); see :mod:`repro.faults.chaos` for the grammar.
* :class:`~repro.faults.legacy.FaultPlan` — the original per-variable
  ``REPRO_FAULT_*`` injector, kept for backward compatibility.

:func:`plan_from_env` arbitrates: ``REPRO_CHAOS`` wins when set,
``REPRO_FAULT_*`` otherwise, None when neither is present.  Both plans
expose the same ``inject(unit_id, benchmark, attempt)`` /
``maybe_corrupt_artifact(path)`` surface the runner and the result
cache consume, so every consumer takes either interchangeably.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.chaos import (
    SITES,
    WORKER_KILL_EXIT_CODE,
    ChaosPlan,
    ChaosSite,
    active_sites,
)
from repro.faults.legacy import FaultPlan


def plan_from_env(environ=os.environ):
    """The fault plan the environment asks for, or None.

    ``REPRO_CHAOS`` (the unified spec) takes precedence over the
    legacy ``REPRO_FAULT_*`` variables; a malformed spec raises
    :class:`~repro.errors.ChaosSpecError` so a typo fails loudly at
    startup instead of silently disabling injection.
    """
    spec = environ.get("REPRO_CHAOS", "").strip()
    if spec:
        return ChaosPlan.parse(spec)
    return FaultPlan.from_env(environ)


# Cache the parsed environment plan for the hot module-level hook
# below: (spec string, parsed plan).
_env_cache: tuple = ("", None)


def maybe_io_error(op: str, token: str = "") -> None:
    """Module-level io-error hook for call sites without a plan.

    Serialization (:func:`repro.core.serialization.save_profile` /
    ``load_profile``) has no fault-plan parameter to thread through;
    this consults ``REPRO_CHAOS`` directly (parsed once per spec) and
    is a no-op when unset — the common, production case costs one dict
    lookup.
    """
    global _env_cache
    spec = os.environ.get("REPRO_CHAOS", "").strip()
    if not spec:
        return
    if _env_cache[0] != spec:
        _env_cache = (spec, ChaosPlan.parse(spec))
    plan = _env_cache[1]
    if plan is not None:
        plan.maybe_io_error(op, token)


__all__ = [
    "SITES", "WORKER_KILL_EXIT_CODE", "ChaosPlan", "ChaosSite",
    "FaultPlan", "active_sites", "maybe_io_error", "plan_from_env",
]
