"""Crash flight recorder: the last N events, dumped on the way down.

Every installed process keeps a bounded ring buffer of the most recent
event payloads (an :mod:`repro.obs.events` sink, so it sees debug-level
events regardless of console verbosity).  When the process dies —
unhandled exception, SIGTERM, or a chaos-injected worker kill — the
buffer is written to ``flightrec-<pid>.jsonl`` so the supervisor's
crash attribution and quarantine manifests can say what the worker was
doing in its final moments, not just that it vanished.

The dump path is deliberately boring: open, write lines, close.  No
registry lookups, no new events mid-dump (the ``flightrec.dump`` event
and counter fire *after* the file is safely on disk).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.obs import events
from repro.obs.metrics import get_registry

#: Bump when flightrec-<pid>.jsonl records change incompatibly.
FLIGHT_SCHEMA = 1

#: Ring-buffer capacity unless overridden.
DEFAULT_CAPACITY = 256


def dump_filename(pid: Optional[int] = None) -> str:
    return f"flightrec-{pid if pid is not None else os.getpid()}.jsonl"


class FlightRecorder:
    """Bounded ring buffer of event payloads + the dump machinery."""

    def __init__(self, directory: Union[str, Path],
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.directory = Path(directory)
        self.capacity = int(capacity)
        self._buffer: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._dumped = False

    # The events sink — must never raise.
    def record(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._buffer.append(payload)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def dump_path(self) -> Path:
        return self.directory / dump_filename()

    def dump(self, reason: str, **extra: Any) -> Optional[Path]:
        """Write the buffer to flightrec-<pid>.jsonl; returns the path.

        Repeated dumps overwrite (the last dump before death wins).
        Returns None when writing is impossible — a dying process must
        not die harder because its black box had no disk.
        """
        with self._lock:
            buffered: List[Dict[str, Any]] = list(self._buffer)
        header = {
            "schema": FLIGHT_SCHEMA,
            "kind": "flightrec",
            "reason": reason,
            "pid": os.getpid(),
            "events": len(buffered),
            "capacity": self.capacity,
        }
        header.update(extra)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.dump_path()
            with path.open("w", encoding="utf-8") as handle:
                handle.write(json.dumps(header, sort_keys=True,
                                        default=repr) + "\n")
                for payload in buffered:
                    handle.write(json.dumps(payload, sort_keys=True,
                                            default=repr) + "\n")
        except OSError:
            return None
        self._dumped = True
        try:
            get_registry().counter("flightrec.dumps").inc()
            events.emit("flightrec.dump", level="debug", reason=reason,
                        path=str(path), events=len(buffered))
        except Exception:
            pass
        return path


_INSTALLED: Optional[FlightRecorder] = None
_PREVIOUS_EXCEPTHOOK = None
_PREVIOUS_SIGTERM = None


def installed() -> Optional[FlightRecorder]:
    """The process's active recorder, if any."""
    return _INSTALLED


def install(directory: Union[str, Path],
            capacity: int = DEFAULT_CAPACITY,
            signals: bool = True) -> FlightRecorder:
    """Install (or reinstall) the process flight recorder.

    Registers the ring-buffer sink, chains ``sys.excepthook`` so an
    unhandled exception dumps before the traceback prints, and — with
    *signals* (main thread only) — hooks SIGTERM to dump, restore the
    default handler and re-deliver, so the exit status still says
    "killed by SIGTERM" and pool crash attribution keeps treating
    executor teardown as innocent.

    Idempotent: a second install replaces the first (no sink or hook
    accumulation across repeated CLI ``main()`` calls in one process).
    """
    global _INSTALLED, _PREVIOUS_EXCEPTHOOK, _PREVIOUS_SIGTERM
    uninstall()
    recorder = FlightRecorder(directory, capacity=capacity)
    events.add_sink(recorder.record)
    _PREVIOUS_EXCEPTHOOK = sys.excepthook

    def _excepthook(exc_type, exc, tb):
        try:
            recorder.dump("unhandled-exception",
                          error=f"{exc_type.__name__}: {exc}")
        except Exception:
            pass
        (_PREVIOUS_EXCEPTHOOK or sys.__excepthook__)(exc_type, exc, tb)

    sys.excepthook = _excepthook

    if signals and threading.current_thread() is threading.main_thread():
        def _on_sigterm(signum, frame):
            try:
                recorder.dump("sigterm")
            except Exception:
                pass
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)

        try:
            _PREVIOUS_SIGTERM = signal.signal(signal.SIGTERM, _on_sigterm)
        except (ValueError, OSError):
            _PREVIOUS_SIGTERM = None

    _INSTALLED = recorder
    return recorder


def uninstall() -> None:
    """Remove the recorder, its sink and its hooks (tests)."""
    global _INSTALLED, _PREVIOUS_EXCEPTHOOK, _PREVIOUS_SIGTERM
    if _INSTALLED is None:
        return
    events.remove_sink(_INSTALLED.record)
    if _PREVIOUS_EXCEPTHOOK is not None:
        sys.excepthook = _PREVIOUS_EXCEPTHOOK
        _PREVIOUS_EXCEPTHOOK = None
    if _PREVIOUS_SIGTERM is not None and \
            threading.current_thread() is threading.main_thread():
        try:
            signal.signal(signal.SIGTERM, _PREVIOUS_SIGTERM)
        except (ValueError, OSError):
            pass
    _PREVIOUS_SIGTERM = None
    _INSTALLED = None


def dump(reason: str, **extra: Any) -> Optional[Path]:
    """Dump the installed recorder, if any (chaos worker-kill site)."""
    if _INSTALLED is None:
        return None
    return _INSTALLED.dump(reason, **extra)
