"""Structured event log: JSON-lines records over stdlib ``logging``.

Every pipeline phase, runner unit and design-space evaluation reports
what it did as an *event* — a flat record carrying the run id, a
wall-clock timestamp, a monotonic offset since the run started, the
emitting phase (from the active :func:`~repro.obs.tracing.trace_span`)
and free-form fields (benchmark, seed, attempt, ...).  Events flow
through one ``logging.Logger`` with two renderings:

* a **human console handler** on stderr (``--quiet``/``--verbose``
  select the level) for interactive progress, and
* a **JSON-lines file sink** (``--log-json PATH``) that records every
  event at DEBUG level for machine analysis.

The schema is stable (see ``docs/observability.md``): each line is one
JSON object whose required fields are :data:`REQUIRED_FIELDS`; extra
per-event fields ride alongside.  Unconfigured library use stays
silent below WARNING (logging's last-resort handler surfaces genuine
failures), so importing :mod:`repro` never spams scripts or tests.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

#: Bump when the JSON-lines record layout changes incompatibly.
SCHEMA = 1

#: Fields present on every emitted JSON line (the stable contract that
#: the obs-smoke CI job and the schema tests validate).
REQUIRED_FIELDS = ("schema", "run", "seq", "ts", "t", "level", "event")

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_LOGGER = logging.getLogger("repro.obs")
_LOGGER.setLevel(logging.DEBUG)
_LOGGER.propagate = False

#: Callables returning ambient fields (the tracing module registers one
#: that contributes the active span's phase/benchmark/seed); kept as an
#: injection point so events.py never imports tracing.py.
_CONTEXT_PROVIDERS: List[Callable[[], Dict[str, Any]]] = []

#: In-process subscribers receiving every emitted payload dict (the
#: service daemon registers one to stream job lifecycle events to
#: ``repro tail`` clients).  Sinks see events regardless of handler
#: levels — a tailing client wants debug-level job progress even when
#: the daemon's console does not.
_SINKS: List[Callable[[Dict[str, Any]], None]] = []


class _State:
    """Mutable per-process observability state."""

    def __init__(self) -> None:
        self.run_id: Optional[str] = None
        self.t0 = time.monotonic()
        self.seq = 0
        self.lock = threading.Lock()
        self.configured = False
        self.log_json_path: Optional[Path] = None
        self.profile_mode: Optional[str] = None
        self.profile_dir: Optional[Path] = None


_STATE = _State()


def register_context_provider(
        provider: Callable[[], Dict[str, Any]]) -> None:
    """Register a callable whose returned fields are merged (lowest
    precedence) into every emitted event."""
    if provider not in _CONTEXT_PROVIDERS:
        _CONTEXT_PROVIDERS.append(provider)


def add_sink(sink: Callable[[Dict[str, Any]], None]) -> None:
    """Subscribe *sink* to every emitted event payload.

    Sinks run synchronously on the emitting thread and must never
    raise (failures are swallowed — observability cannot take down the
    observed).  They bypass handler level gates, so register sinks
    sparingly: every emit pays for them.
    """
    if sink not in _SINKS:
        _SINKS.append(sink)


def remove_sink(sink: Callable[[Dict[str, Any]], None]) -> None:
    """Unsubscribe a sink registered with :func:`add_sink`."""
    if sink in _SINKS:
        _SINKS.remove(sink)


def new_run_id() -> str:
    """A fresh, short, filesystem-safe run identifier."""
    return uuid.uuid4().hex[:12]


def run_id() -> Optional[str]:
    """The configured run id, or None before :func:`configure`."""
    return _STATE.run_id


def log_json_path() -> Optional[Path]:
    """Where the JSON-lines sink writes, or None when disabled."""
    return _STATE.log_json_path


def profile_mode() -> Optional[str]:
    return _STATE.profile_mode


def profile_dir() -> Optional[Path]:
    return _STATE.profile_dir


class _JsonLinesFormatter(logging.Formatter):
    """One JSON object per record, from the attached event payload."""

    def format(self, record: logging.LogRecord) -> str:
        payload = getattr(record, "repro_event", None)
        if payload is None:  # foreign record routed at this logger
            payload = _event_payload("log", record.getMessage(),
                                     record.levelname.lower(), {})
        return json.dumps(payload, sort_keys=True, default=str)


class _ConsoleFormatter(logging.Formatter):
    """Human rendering: message if given, else ``event key=value ...``;
    errors keep the CLI's traditional ``error:`` prefix."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = getattr(record, "repro_event", {})
        message = record.getMessage()
        if message == payload.get("event"):
            fields = " ".join(
                f"{key}={value}" for key, value in sorted(payload.items())
                if key not in REQUIRED_FIELDS + ("msg",))
            message = payload.get("event", message)
            if fields:
                message = f"{message} {fields}"
        if record.levelno >= logging.ERROR:
            return f"error: {message}"
        if record.levelno >= logging.WARNING \
                and not message.lower().startswith(("warning", "note")):
            return f"warning: {message}"
        return message


def _event_payload(event: str, msg: Optional[str], level: str,
                   fields: Dict[str, Any]) -> Dict[str, Any]:
    with _STATE.lock:
        _STATE.seq += 1
        seq = _STATE.seq
    payload: Dict[str, Any] = {}
    for provider in _CONTEXT_PROVIDERS:
        try:
            payload.update(provider())
        except Exception:  # noqa: BLE001 — context must never break emit
            pass
    payload.update(fields)
    payload.update({
        "schema": SCHEMA,
        "run": _STATE.run_id or "unconfigured",
        "seq": seq,
        "ts": time.time(),
        "t": round(time.monotonic() - _STATE.t0, 6),
        "level": level,
        "event": event,
    })
    if msg is not None:
        payload["msg"] = msg
    return payload


def emit(event: str, msg: Optional[str] = None, level: str = "info",
         **fields: Any) -> None:
    """Emit one structured event.

    *event* is a stable machine-readable name (``unit_retry``,
    ``span_end``, ...); *msg* an optional human sentence for the
    console; *fields* ride along on the JSON line.  Cheap when nothing
    listens at *level*: the logger's own level is pinned to DEBUG, so
    the gate is the attached handlers' thresholds — with no handlers
    (unconfigured library use) only WARNING and above proceed, for
    logging's last-resort handler.  Hot phases emit a span event per
    call, so the drop path must not build the payload or LogRecord.
    """
    levelno = _LEVELS[level]
    handlers = _LOGGER.handlers
    if handlers:
        handled = levelno >= min(h.level for h in handlers)
    else:
        handled = levelno >= logging.WARNING
    if not handled and not _SINKS:
        return
    payload = _event_payload(event, msg, level, fields)
    for sink in list(_SINKS):
        try:
            sink(payload)
        except Exception:  # noqa: BLE001 — sinks must never break emit
            pass
    if handled:
        _LOGGER.log(levelno, msg if msg is not None else event,
                    extra={"repro_event": payload})


def error(msg: str, event: str = "error", **fields: Any) -> None:
    """Shorthand for an ERROR-level event (CLI failure paths)."""
    emit(event, msg=msg, level="error", **fields)


def warn(msg: str, event: str = "warning", **fields: Any) -> None:
    emit(event, msg=msg, level="warning", **fields)


def info(msg: str, event: str = "status", **fields: Any) -> None:
    """A human progress line (also recorded on the JSON sink)."""
    emit(event, msg=msg, level="info", **fields)


def debug(msg: str, event: str = "debug", **fields: Any) -> None:
    emit(event, msg=msg, level="debug", **fields)


def _close_handlers() -> None:
    for handler in list(_LOGGER.handlers):
        _LOGGER.removeHandler(handler)
        try:
            handler.close()
        except Exception:  # noqa: BLE001 — best-effort teardown
            pass


def configure(
    run_id: Optional[str] = None,
    console: bool = True,
    console_level: str = "info",
    log_json: Optional[Union[str, Path]] = None,
    profile: Optional[str] = None,
    profile_dir: Optional[Union[str, Path]] = None,
    stream=None,
) -> str:
    """Install the run's handlers; returns the run id.

    Reconfiguring replaces previous handlers (file sinks are closed),
    so repeated CLI invocations in one process — the test suite — do
    not accumulate handlers or hold stale streams.
    """
    if profile not in (None, "cprofile"):
        raise ValueError(f"unknown profile mode {profile!r}; "
                         f"supported: cprofile")
    if console_level not in _LEVELS:
        raise ValueError(f"unknown console level {console_level!r}")
    _close_handlers()
    _STATE.run_id = run_id or new_run_id()
    _STATE.t0 = time.monotonic()
    _STATE.seq = 0
    _STATE.configured = True
    _STATE.profile_mode = profile
    _STATE.profile_dir = Path(profile_dir) if profile_dir else None
    _STATE.log_json_path = None
    if console:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setLevel(_LEVELS[console_level])
        handler.setFormatter(_ConsoleFormatter())
        _LOGGER.addHandler(handler)
    if log_json:
        path = Path(log_json)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        file_handler = logging.FileHandler(path, encoding="utf-8")
        file_handler.setLevel(logging.DEBUG)
        file_handler.setFormatter(_JsonLinesFormatter())
        _LOGGER.addHandler(file_handler)
        _STATE.log_json_path = path
    return _STATE.run_id


def reset() -> None:
    """Tear down handlers, sinks and state (tests; end of a CLI
    run)."""
    _close_handlers()
    _SINKS.clear()
    _STATE.run_id = None
    _STATE.t0 = time.monotonic()
    _STATE.seq = 0
    _STATE.configured = False
    _STATE.profile_mode = None
    _STATE.profile_dir = None
    _STATE.log_json_path = None


def is_configured() -> bool:
    return _STATE.configured
