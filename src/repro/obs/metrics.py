"""Metrics registry: counters, gauges and timing histograms.

Pipeline, profiler, branch units, caches, the fault-tolerant runner and
the design-space engine all register into one process-wide
:class:`MetricsRegistry`; a run snapshots it into ``metrics.json``
alongside checkpoints and BENCH files, so "where did the time go / how
many retries / what was the RUU occupancy" is answerable after the fact
without re-running anything.

The snapshot round-trips: :meth:`MetricsRegistry.from_payload` restores
a registry whose :meth:`~MetricsRegistry.snapshot` equals the original
(the property the regression tests pin down).
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import events

#: Bump when the metrics.json layout changes incompatibly.
SNAPSHOT_SCHEMA = 1

#: Histogram names with this prefix are per-phase wall-clock spans
#: (written by :func:`repro.obs.tracing.trace_span`).
PHASE_PREFIX = "phase."


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


#: Bucket index assigned to observations <= 0 (below every power of
#: two representable as a float; 2**-1075 rounds to the smallest
#: subnormal, so no real observation sorts under it).
_ZERO_BUCKET = -1075

#: Largest exponent we exponentiate when turning a bucket index back
#: into an upper bound (2.0**1024 overflows).
_MAX_EXPONENT = 1023


class TimingHistogram:
    """Streaming summary of observed durations (or any float).

    Besides count/total/min/max, observations land in log2-spaced
    buckets (index ``ceil(log2(value))``, i.e. the bucket upper bound
    is the next power of two), which is enough resolution to report
    p50/p95/p99 tail latency without storing samples and makes
    histograms mergeable across processes.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self, count: int = 0, total: float = 0.0,
                 minimum: Optional[float] = None,
                 maximum: Optional[float] = None,
                 buckets: Optional[Dict[int, int]] = None) -> None:
        self.count = count
        self.total = total
        self.min = minimum
        self.max = maximum
        self.buckets: Dict[int, int] = dict(buckets or {})

    @staticmethod
    def _bucket_index(value: float) -> int:
        if value <= 0.0:
            return _ZERO_BUCKET
        return max(_ZERO_BUCKET, math.ceil(math.log2(value)))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = self._bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> Optional[float]:
        """Upper bound of the bucket holding the q-th observation.

        ``None`` when no bucketed observations exist (empty histogram,
        or one restored from a pre-bucket payload).  The bound is
        clamped to the exact [min, max] envelope so degenerate
        distributions report exact values.
        """
        if not self.buckets:
            return None
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        bucketed = sum(self.buckets.values())
        rank = max(1, math.ceil(quantile * bucketed))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                if index == _ZERO_BUCKET:
                    bound = 0.0
                else:
                    bound = 2.0 ** min(index, _MAX_EXPONENT)
                if self.min is not None:
                    bound = max(bound, self.min)
                if self.max is not None:
                    bound = min(bound, self.max)
                return bound
        return self.max  # pragma: no cover - rank <= bucketed

    def merge(self, other: "TimingHistogram") -> "TimingHistogram":
        """Fold *other*'s observations into this histogram (in place)."""
        self.count += other.count
        self.total += other.total
        for bound, current in (("min", min), ("max", max)):
            theirs = getattr(other, bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(self, bound,
                        theirs if ours is None else current(ours, theirs))
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        return self

    def to_payload(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": {str(index): n
                        for index, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TimingHistogram":
        return cls(count=int(payload.get("count", 0)),
                   total=float(payload.get("total", 0.0)),
                   minimum=payload.get("min"),
                   maximum=payload.get("max"),
                   buckets={int(index): int(n)
                            for index, n
                            in payload.get("buckets", {}).items()})


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lock.

    Names are dot-separated (``runner.retries``,
    ``pipeline.ruu_occupancy``, ``phase.simulate``); the catalog lives
    in ``docs/observability.md``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, TimingHistogram] = {}

    # -- accessors (get-or-create) -------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> TimingHistogram:
        with self._lock:
            return self._histograms.setdefault(name, TimingHistogram())

    # -- snapshot / restore --------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The full state as a JSON-serializable document.

        ``phases`` is a derived convenience view of the ``phase.*``
        histograms keyed by bare phase name — the per-run wall-clock
        breakdown the BENCH files embed.
        """
        with self._lock:
            counters = {name: c.value
                        for name, c in sorted(self._counters.items())}
            gauges = {name: g.value
                      for name, g in sorted(self._gauges.items())}
            histograms = {name: h.to_payload()
                          for name, h in sorted(self._histograms.items())}
        phases = {name[len(PHASE_PREFIX):]: payload
                  for name, payload in histograms.items()
                  if name.startswith(PHASE_PREFIX)}
        return {
            "schema": SNAPSHOT_SCHEMA,
            "run": events.run_id(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "phases": phases,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` document."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry._counters[name] = Counter(int(value))
        for name, value in payload.get("gauges", {}).items():
            registry._gauges[name] = Gauge(float(value))
        for name, hist in payload.get("histograms", {}).items():
            registry._histograms[name] = \
                TimingHistogram.from_payload(hist)
        return registry

    def write(self, path: Union[str, Path]) -> Path:
        """Write the snapshot to *path* (atomically: tmp + replace)."""
        import os

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.snapshot(), indent=2,
                                  sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "MetricsRegistry":
        return cls.from_payload(json.loads(Path(path).read_text()))


_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous, _REGISTRY = _REGISTRY, registry
    return previous


def reset_registry() -> MetricsRegistry:
    """Install a fresh default registry (tests; start of a CLI run)."""
    return set_registry(MetricsRegistry())


def record_simulation(result: Any,
                      registry: Optional[MetricsRegistry] = None) -> None:
    """Publish one pipeline run's occupancies and activity.

    Duck-typed over :class:`repro.cpu.results.SimulationResult` so the
    obs layer never imports the cpu layer.  Gauges hold the most recent
    run's occupancies; counters accumulate cycles, instructions and
    per-unit activity across runs.
    """
    registry = registry or get_registry()
    registry.counter("pipeline.runs").inc()
    registry.counter("pipeline.cycles").inc(int(result.cycles))
    registry.counter("pipeline.instructions").inc(
        int(result.instructions))
    registry.counter("pipeline.squashed_instructions").inc(
        int(getattr(result, "squashed_instructions", 0)))
    registry.counter("pipeline.branch_mispredictions").inc(
        int(getattr(result, "branch_mispredictions", 0)))
    registry.gauge("pipeline.ipc").set(result.ipc)
    registry.gauge("pipeline.ruu_occupancy").set(
        result.avg_ruu_occupancy)
    registry.gauge("pipeline.lsq_occupancy").set(
        result.avg_lsq_occupancy)
    registry.gauge("pipeline.ifq_occupancy").set(
        result.avg_ifq_occupancy)
    for unit, count in getattr(result, "activity", {}).items():
        registry.counter(f"pipeline.activity.{unit}").inc(int(count))
