"""Fleet telemetry: one trace identity across every repro process.

A sweep is a fleet — CLI, daemon, supervisor, N pool workers — and
each process has its own event log and metrics registry.  This module
gives them a shared identity:

* A :class:`TraceContext` (``trace_id`` + the parent span to hang
  child spans off) is minted once at the CLI/daemon entry point and
  shipped to workers through pool-init args and to the daemon through
  the socket protocol (:func:`propagation_payload` / :func:`adopt`).
* While a context is active, every span finished by
  :func:`repro.obs.tracing.trace_span` is appended to a per-process
  ``trace-<pid>.jsonl`` file in the trace directory; ``repro trace
  <run-dir>`` stitches those files into one tree
  (:mod:`repro.obs.traceview`).
* The process's :class:`~repro.obs.metrics.MetricsRegistry` is
  periodically snapshotted to ``metrics-<pid>.json`` in the same
  directory, so cross-process aggregation
  (:func:`repro.obs.exposition.aggregate_run_dir`) and ``repro top``
  can see worker-side counters without any IPC.

Everything degrades to a no-op when no context is active: processes
that never call :func:`start` or :func:`adopt` emit exactly the same
events and metrics as before this module existed.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import events
from repro.obs.metrics import get_registry

#: Bump when trace-<pid>.jsonl records change incompatibly.
TRACE_SCHEMA = 1

#: Seconds between opportunistic metrics-<pid>.json flushes.
METRICS_FLUSH_INTERVAL = 1.0


def new_trace_id() -> str:
    """A fresh 128-bit hex trace id."""
    return uuid.uuid4().hex


class TraceContext:
    """The propagated identity: which trace, and which span to parent to."""

    __slots__ = ("trace_id", "parent_span_id")

    def __init__(self, trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.parent_span_id = parent_span_id

    def child(self, parent_span_id: Optional[str]) -> "TraceContext":
        return TraceContext(self.trace_id, parent_span_id)

    def to_wire(self) -> Dict[str, Any]:
        """Compact dict shipped through initargs / the socket protocol."""
        return {"trace": self.trace_id, "parent": self.parent_span_id}

    @classmethod
    def from_wire(cls, payload: Optional[Dict[str, Any]]
                  ) -> Optional["TraceContext"]:
        if not isinstance(payload, dict) or not payload.get("trace"):
            return None
        return cls(str(payload["trace"]),
                   payload.get("parent") and str(payload["parent"]))


class _State:
    __slots__ = ("context", "trace_dir", "handle", "lock",
                 "last_metrics_flush", "atexit_registered")

    def __init__(self) -> None:
        self.context: Optional[TraceContext] = None
        self.trace_dir: Optional[Path] = None
        self.handle = None
        self.lock = threading.Lock()
        self.last_metrics_flush = 0.0
        self.atexit_registered = False


_STATE = _State()
_LOCAL = threading.local()


def start(trace_dir: Optional[Union[str, Path]] = None,
          context: Optional[TraceContext] = None) -> TraceContext:
    """Activate telemetry for this process.

    Mints a fresh :class:`TraceContext` unless one is passed (a worker
    adopting its parent's).  With a *trace_dir*, finished spans append
    to ``trace-<pid>.jsonl`` and metrics flush to ``metrics-<pid>.json``
    there.
    """
    with _STATE.lock:
        _close_handle_locked()
        _STATE.context = context or TraceContext()
        _STATE.trace_dir = Path(trace_dir) if trace_dir else None
        if _STATE.trace_dir is not None:
            _STATE.trace_dir.mkdir(parents=True, exist_ok=True)
        if not _STATE.atexit_registered:
            atexit.register(_atexit_flush)
            _STATE.atexit_registered = True
        return _STATE.context


def reset() -> None:
    """Deactivate telemetry (tests; start of a CLI run)."""
    with _STATE.lock:
        _close_handle_locked()
        _STATE.context = None
        _STATE.trace_dir = None
        _STATE.last_metrics_flush = 0.0
    _LOCAL.context = None


def current_context() -> Optional[TraceContext]:
    """The active context: a thread override if set, else the process's."""
    local = getattr(_LOCAL, "context", None)
    if local is not None:
        return local
    return _STATE.context


def trace_directory() -> Optional[Path]:
    """Where this process is writing trace/metrics files, if anywhere."""
    return _STATE.trace_dir


def activate(context: Optional[TraceContext]):
    """Thread-scoped context override (daemon job threads).

    Returns a context manager; inside it, spans started on this thread
    parent to *context* instead of the process context.
    """
    from contextlib import contextmanager

    @contextmanager
    def _activation():
        previous = getattr(_LOCAL, "context", None)
        _LOCAL.context = context
        try:
            yield context
        finally:
            _LOCAL.context = previous

    return _activation()


def propagation_payload() -> Optional[Dict[str, Any]]:
    """The wire form handed to child processes (pool initargs, socket).

    The parent span is the caller's innermost active span when there is
    one — so worker spans hang off the ``sweep``/``job`` span that
    spawned them, not off the root.
    """
    context = current_context()
    if context is None:
        return None
    from repro.obs import tracing  # lazy: tracing imports telemetry

    parent = tracing.current_span_id() or context.parent_span_id
    payload = context.child(parent).to_wire()
    if _STATE.trace_dir is not None:
        payload["trace_dir"] = str(_STATE.trace_dir)
    return payload


def adopt(payload: Optional[Dict[str, Any]]) -> Optional[TraceContext]:
    """Child-process side of :func:`propagation_payload`."""
    context = TraceContext.from_wire(payload)
    if context is None:
        return None
    return start(trace_dir=(payload or {}).get("trace_dir"),
                 context=context)


# -- span + metrics recording ------------------------------------------


def _json_safe(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def record_span(span: Any) -> None:
    """Append one finished span to trace-<pid>.jsonl (no-op without a
    trace dir)."""
    with _STATE.lock:
        if _STATE.trace_dir is None or span.trace_id is None:
            return
        handle = _STATE.handle
        if handle is None:
            path = _STATE.trace_dir / f"trace-{os.getpid()}.jsonl"
            handle = _STATE.handle = path.open("a", encoding="utf-8")
        record = {
            "schema": TRACE_SCHEMA,
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "phase": span.phase,
            "ts": round(span.wall_started, 6),
            "elapsed": round(span.elapsed or 0.0, 6),
            "depth": span.depth,
            "fields": {key: _json_safe(value)
                       for key, value in span.fields.items()},
        }
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
    flush_metrics()


def flush_metrics(force: bool = False) -> Optional[Path]:
    """Snapshot this process's registry to metrics-<pid>.json.

    Rate-limited to :data:`METRICS_FLUSH_INTERVAL` unless *force*, so
    span-heavy workers don't spend their time serializing snapshots.
    """
    with _STATE.lock:
        if _STATE.trace_dir is None:
            return None
        now = time.monotonic()
        if not force and \
                now - _STATE.last_metrics_flush < METRICS_FLUSH_INTERVAL:
            return None
        _STATE.last_metrics_flush = now
        target = _STATE.trace_dir / f"metrics-{os.getpid()}.json"
    return get_registry().write(target)


def _close_handle_locked() -> None:
    if _STATE.handle is not None:
        try:
            _STATE.handle.close()
        except OSError:
            pass
        _STATE.handle = None


def _atexit_flush() -> None:
    try:
        flush_metrics(force=True)
    except Exception:
        pass
    with _STATE.lock:
        _close_handle_locked()


# -- ambient event fields ----------------------------------------------


def _telemetry_context() -> Dict[str, Any]:
    """Every event in a telemetry-active process carries trace + pid.

    Registered before the tracing provider, so an active span's more
    specific trace/span fields win.
    """
    context = current_context()
    if context is None:
        return {}
    return {"trace": context.trace_id, "pid": os.getpid()}


events.register_context_provider(_telemetry_context)
