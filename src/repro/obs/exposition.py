"""OpenMetrics text exposition + cross-process snapshot aggregation.

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` document
in the OpenMetrics text format (the strict dialect of the Prometheus
exposition format: ``# TYPE`` before samples, counters suffixed
``_total``, summaries with ``quantile`` labels, a single terminating
``# EOF``), merges snapshots from many fleet processes into one, and
aggregates a run directory's ``metrics-<pid>.json`` files
(:mod:`repro.obs.telemetry`) so the daemon's ``metrics`` verb and
``repro top`` see the whole fleet, not just one process.

:func:`validate_openmetrics` is the line-grammar check CI runs against
everything we expose — a renderer bug fails the build, not a scrape.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.metrics import TimingHistogram

#: Prefix on every exposed metric name (namespacing per OpenMetrics
#: conventions).
NAME_PREFIX = "repro_"

#: Summary quantiles exposed for each timing histogram:
#: (quantile label, snapshot payload key).
QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SAMPLE_LINE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>[0-9.eE+-]+))?\Z")
_LABEL = re.compile(
    r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"\Z')
_TYPE_LINE = re.compile(
    r"# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|summary|histogram|info|unknown)\Z")


def sanitize_name(name: str) -> str:
    """``dse.cache_hits`` -> ``repro_dse_cache_hits``."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return NAME_PREFIX + cleaned


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(snapshot: Dict[str, Any]) -> str:
    """A registry snapshot as OpenMetrics text (ends with ``# EOF``)."""
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        metric = sanitize_name(name)
        lines.append(f"# TYPE {metric} summary")
        for label, key in QUANTILES:
            quantile = payload.get(key)
            if quantile is not None:
                lines.append(f'{metric}{{quantile="{label}"}} '
                             f"{_format_value(quantile)}")
        lines.append(f"{metric}_count "
                     f"{_format_value(payload.get('count', 0))}")
        lines.append(f"{metric}_sum "
                     f"{_format_value(payload.get('total', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics(text: str) -> List[str]:
    """Strict line-grammar check; returns problems (empty == valid)."""
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    else:
        problems.append("exposition must end with a newline")
    if not lines or lines[-1] != "# EOF":
        problems.append("missing terminating # EOF line")
    typed: Dict[str, str] = {}
    seen_samples: List[Tuple[str, str]] = []
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: # EOF before end of text")
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_LINE.match(line)
            if not match:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name = match.group("name")
            if name in typed:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {name}")
            typed[name] = match.group("type")
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ")
                    or line.startswith("# UNIT ")):
                problems.append(f"line {lineno}: unknown comment form")
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels")
        if labels:
            for label in labels.split(","):
                if not _LABEL.match(label):
                    problems.append(
                        f"line {lineno}: malformed label {label!r}")
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric value "
                f"{match.group('value')!r}")
        family = _family_name(name, typed)
        if family is None:
            problems.append(
                f"line {lineno}: sample {name} precedes its TYPE")
        elif typed[family] == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {lineno}: counter sample {name} "
                f"must end with _total")
        seen_samples.append((name, labels or ""))
    duplicates = {sample for sample in seen_samples
                  if seen_samples.count(sample) > 1}
    for name, labels in sorted(duplicates):
        problems.append(f"duplicate sample {name}{{{labels}}}")
    return problems


def _family_name(sample: str, typed: Dict[str, str]) -> Optional[str]:
    if sample in typed:
        return sample
    for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
        if sample.endswith(suffix) and sample[: -len(suffix)] in typed:
            return sample[: -len(suffix)]
    return None


# -- cross-process aggregation -----------------------------------------


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]
                    ) -> Dict[str, Any]:
    """Fold many per-process snapshots into one fleet-wide document.

    Counters and histogram observations sum; gauges are last-write-wins
    in iteration order (pass snapshots oldest-first).  The derived
    ``phases`` view is rebuilt from the merged ``phase.*`` histograms.
    """
    from repro.obs.metrics import PHASE_PREFIX, SNAPSHOT_SCHEMA

    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, TimingHistogram] = {}
    run = None
    processes = 0
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        processes += 1
        run = run or snapshot.get("run")
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = float(value)
        for name, payload in snapshot.get("histograms", {}).items():
            merged = histograms.setdefault(name, TimingHistogram())
            merged.merge(TimingHistogram.from_payload(payload))
    rendered = {name: hist.to_payload()
                for name, hist in sorted(histograms.items())}
    return {
        "schema": SNAPSHOT_SCHEMA,
        "run": run or "aggregate",
        "processes": processes,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": rendered,
        "phases": {name[len(PHASE_PREFIX):]: payload
                   for name, payload in rendered.items()
                   if name.startswith(PHASE_PREFIX)},
    }


def aggregate_run_dir(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Merge every ``metrics-*.json`` under *run_dir* (plus a bare
    ``metrics.json`` if present), oldest snapshot first."""
    import json

    run_dir = Path(run_dir)
    paths = sorted(run_dir.rglob("metrics-*.json"))
    top = run_dir / "metrics.json"
    if top.exists():
        paths.append(top)
    snapshots = []
    for path in sorted(paths, key=_mtime):
        try:
            snapshots.append(json.loads(path.read_text()))
        except (OSError, ValueError):
            continue
    return merge_snapshots(snapshots)


def _mtime(path: Path) -> float:
    try:
        return path.stat().st_mtime
    except OSError:
        return 0.0
