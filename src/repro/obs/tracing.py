"""Phase tracing: nested wall-clock spans over the pipeline's phases.

``with trace_span("profile", bench="gzip"):`` wraps one phase of the
Figure 1 pipeline (profile → reduce → synthesize → simulate); on exit
the span's elapsed time lands in the metrics registry as the
``phase.<name>`` timing histogram and a ``span_end`` event goes to the
structured log.  Spans nest (a ``reduce`` span inside ``synthesize``);
the innermost active span contributes its phase/bench/seed fields to
every event emitted inside it, so a ``unit_retry`` event knows which
phase it interrupted without every call site threading context.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import events
from repro.obs.metrics import (
    PHASE_PREFIX,
    MetricsRegistry,
    get_registry,
)

_LOCAL = threading.local()


class Span:
    """One active (or finished) phase span."""

    __slots__ = ("phase", "fields", "started", "elapsed", "depth")

    def __init__(self, phase: str, fields: Dict[str, Any],
                 depth: int) -> None:
        self.phase = phase
        self.fields = fields
        self.depth = depth
        self.started = time.monotonic()
        self.elapsed: Optional[float] = None


def _stack() -> List[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_span() -> Optional[Span]:
    """The innermost active span of this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


def _span_context() -> Dict[str, Any]:
    """Ambient event fields from the active span (registered with the
    event log at import time)."""
    span = current_span()
    if span is None:
        return {}
    context: Dict[str, Any] = {"phase": span.phase}
    for key in ("bench", "seed"):
        if key in span.fields:
            context[key] = span.fields[key]
    return context


events.register_context_provider(_span_context)


@contextmanager
def trace_span(phase: str,
               registry: Optional[MetricsRegistry] = None,
               **fields: Any) -> Iterator[Span]:
    """Time one pipeline phase; record it as histogram + events.

    Timing uses the monotonic clock, so spans are immune to wall-clock
    adjustments; a child span's elapsed time can never exceed its
    parent's.
    """
    span = Span(phase, fields, depth=len(_stack()))
    _stack().append(span)
    events.emit("span_start", level="debug", depth=span.depth, **fields)
    try:
        yield span
    finally:
        span.elapsed = time.monotonic() - span.started
        try:
            # Emitted while the span is still on the stack, so the
            # event self-identifies: its ``phase`` field is this span's.
            events.emit("span_end", level="debug", depth=span.depth,
                        elapsed=round(span.elapsed, 6), **fields)
        finally:
            stack = _stack()
            if stack and stack[-1] is span:
                stack.pop()
            (registry or get_registry()).histogram(
                PHASE_PREFIX + phase).observe(span.elapsed)


def phase_breakdown(registry: Optional[MetricsRegistry] = None
                    ) -> Dict[str, Dict[str, Any]]:
    """Per-phase wall-clock summary: ``{phase: {count, total, ...}}``."""
    return (registry or get_registry()).snapshot()["phases"]
