"""Phase tracing: nested wall-clock spans over the pipeline's phases.

``with trace_span("profile", bench="gzip"):`` wraps one phase of the
Figure 1 pipeline (profile → reduce → synthesize → simulate); on exit
the span's elapsed time lands in the metrics registry as the
``phase.<name>`` timing histogram and a ``span_end`` event goes to the
structured log.  Spans nest (a ``reduce`` span inside ``synthesize``);
the innermost active span contributes its phase/bench/seed fields to
every event emitted inside it, so a ``unit_retry`` event knows which
phase it interrupted without every call site threading context.

Every span carries a 64-bit hex ``span_id``, and — when fleet
telemetry is active (:mod:`repro.obs.telemetry`) — a ``trace_id``
shared across processes plus a ``parent_id`` linking it into the
cross-process tree.  The parent is the innermost active span of this
thread if any, else the process's adopted
:class:`~repro.obs.telemetry.TraceContext` parent, so a worker span's
chain resolves back through the pool-init handoff to the CLI or
daemon span that caused it.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import events, telemetry
from repro.obs.metrics import (
    PHASE_PREFIX,
    MetricsRegistry,
    get_registry,
)

_LOCAL = threading.local()


def new_span_id() -> str:
    """A fresh 64-bit hex span id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One active (or finished) phase span."""

    __slots__ = ("phase", "fields", "started", "elapsed", "depth",
                 "span_id", "trace_id", "parent_id", "wall_started")

    def __init__(self, phase: str, fields: Dict[str, Any],
                 depth: int, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None) -> None:
        self.phase = phase
        self.fields = fields
        self.depth = depth
        self.span_id = new_span_id()
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.started = time.monotonic()
        self.wall_started = time.time()
        self.elapsed: Optional[float] = None


def _stack() -> List[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_span() -> Optional[Span]:
    """The innermost active span of this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


def current_span_id() -> Optional[str]:
    """The innermost active span's id (for context propagation)."""
    span = current_span()
    return span.span_id if span else None


def _span_context() -> Dict[str, Any]:
    """Ambient event fields from the active span (registered with the
    event log at import time)."""
    span = current_span()
    if span is None:
        return {}
    context: Dict[str, Any] = {"phase": span.phase}
    if span.trace_id is not None:
        context["trace"] = span.trace_id
        context["span"] = span.span_id
    for key in ("bench", "seed"):
        if key in span.fields:
            context[key] = span.fields[key]
    return context


events.register_context_provider(_span_context)


@contextmanager
def trace_span(phase: str,
               registry: Optional[MetricsRegistry] = None,
               **fields: Any) -> Iterator[Span]:
    """Time one pipeline phase; record it as histogram + events.

    Timing uses the monotonic clock, so spans are immune to wall-clock
    adjustments; a child span's elapsed time can never exceed its
    parent's.
    """
    parent = current_span()
    if parent is not None:
        trace_id = parent.trace_id
        parent_id = parent.span_id
    else:
        context = telemetry.current_context()
        trace_id = context.trace_id if context else None
        parent_id = context.parent_span_id if context else None
    span = Span(phase, fields, depth=len(_stack()),
                trace_id=trace_id, parent_id=parent_id)
    _stack().append(span)
    events.emit("span_start", level="debug", depth=span.depth, **fields)
    try:
        yield span
    finally:
        span.elapsed = time.monotonic() - span.started
        try:
            # Emitted while the span is still on the stack, so the
            # event self-identifies: its ``phase`` field is this span's.
            events.emit("span_end", level="debug", depth=span.depth,
                        elapsed=round(span.elapsed, 6), **fields)
        finally:
            stack = _stack()
            if stack and stack[-1] is span:
                stack.pop()
            (registry or get_registry()).histogram(
                PHASE_PREFIX + phase).observe(span.elapsed)
            if span.trace_id is not None:
                try:
                    telemetry.record_span(span)
                except Exception:  # never let telemetry sink a phase
                    pass


def phase_breakdown(registry: Optional[MetricsRegistry] = None
                    ) -> Dict[str, Dict[str, Any]]:
    """Per-phase wall-clock summary: ``{phase: {count, total, ...}}``."""
    return (registry or get_registry()).snapshot()["phases"]
