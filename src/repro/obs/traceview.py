"""Stitch per-process trace files into one tree; render + export it.

``repro trace <run-dir>`` loads every ``trace-<pid>.jsonl`` a fleet
left behind (:mod:`repro.obs.telemetry`), links spans through their
``parent`` ids across process boundaries, and renders the result as an
indented tree with the critical path — the chain of slowest children
from the root — highlighted.  :func:`to_chrome_trace` exports the same
spans as Chrome/Perfetto trace-event JSON (``chrome://tracing`` or
https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union


def load_spans(run_dir: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every span record under *run_dir* (``trace-*.jsonl``, recursive).

    Torn trailing lines (a worker killed mid-write) are skipped, not
    fatal — a crashed fleet is exactly when you want the trace.
    """
    spans: List[Dict[str, Any]] = []
    for path in sorted(Path(run_dir).rglob("trace-*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("span"):
                spans.append(record)
    return spans


class TraceTree:
    """One trace's spans linked into a forest (ideally a single tree)."""

    def __init__(self, trace_id: str,
                 spans: List[Dict[str, Any]]) -> None:
        self.trace_id = trace_id
        self.spans = spans
        self.by_id: Dict[str, Dict[str, Any]] = {
            span["span"]: span for span in spans}
        self.children: Dict[Optional[str], List[str]] = {}
        self.roots: List[str] = []
        self.problems: List[str] = []
        self._link()

    def _link(self) -> None:
        for span_id, span in self.by_id.items():
            parent = span.get("parent")
            if parent is None or parent not in self.by_id:
                if parent is not None:
                    self.problems.append(
                        f"span {span_id} has unknown parent {parent}")
                self.roots.append(span_id)
            else:
                self.children.setdefault(parent, []).append(span_id)
        # Deterministic order: by start timestamp, then id.
        key = lambda sid: (self.by_id[sid].get("ts", 0.0), sid)
        self.roots.sort(key=key)
        for kids in self.children.values():
            kids.sort(key=key)
        self._check_cycles()

    def _check_cycles(self) -> None:
        reachable = set()
        stack = list(self.roots)
        while stack:
            span_id = stack.pop()
            if span_id in reachable:
                continue
            reachable.add(span_id)
            stack.extend(self.children.get(span_id, ()))
        orphaned = set(self.by_id) - reachable
        if orphaned:
            # Spans unreachable from any root can only sit on a
            # parent-link cycle.
            self.problems.append(
                "cycle among spans: " + ", ".join(sorted(orphaned)))
            self.roots.extend(sorted(orphaned))

    # -- structural predicates (CI asserts these) ----------------------

    def single_rooted(self) -> bool:
        return len(self.roots) == 1

    def acyclic(self) -> bool:
        return not any("cycle" in p for p in self.problems)

    def pids(self) -> List[int]:
        return sorted({int(span.get("pid", 0)) for span in self.spans})

    # -- critical path -------------------------------------------------

    def critical_path(self) -> List[Dict[str, Any]]:
        """Root-to-leaf chain descending into the slowest child."""
        if not self.roots:
            return []
        current = max(self.roots,
                      key=lambda sid: self.by_id[sid].get("elapsed", 0.0))
        path = [self.by_id[current]]
        seen = {current}
        while True:
            kids = [sid for sid in self.children.get(current, ())
                    if sid not in seen]
            if not kids:
                return path
            current = max(
                kids, key=lambda sid: self.by_id[sid].get("elapsed", 0.0))
            seen.add(current)
            path.append(self.by_id[current])

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        critical = {span["span"] for span in self.critical_path()}
        lines = [f"trace {self.trace_id}: {len(self.spans)} spans, "
                 f"{len(self.pids())} processes"]
        for problem in self.problems:
            lines.append(f"  !! {problem}")

        def _walk(span_id: str, depth: int) -> None:
            span = self.by_id[span_id]
            mark = "*" if span_id in critical else " "
            label = span.get("phase", "?")
            fields = span.get("fields") or {}
            detail = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
            lines.append(
                f"{mark} {'  ' * depth}{label:<12} "
                f"{span.get('elapsed', 0.0):>9.3f}s  "
                f"pid={span.get('pid', '?')}"
                + (f"  {detail}" if detail else ""))
            for child in self.children.get(span_id, ()):
                _walk(child, depth + 1)

        for root in self.roots:
            _walk(root, 0)
        chain = self.critical_path()
        if chain:
            lines.append("critical path: " + " -> ".join(
                f"{span.get('phase', '?')}"
                f"[{span.get('elapsed', 0.0):.3f}s]" for span in chain))
        return "\n".join(lines)


def split_traces(spans: Iterable[Dict[str, Any]]
                 ) -> Dict[str, List[Dict[str, Any]]]:
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        grouped.setdefault(str(span.get("trace")), []).append(span)
    return grouped


def build_tree(spans: Iterable[Dict[str, Any]],
               trace_id: Optional[str] = None) -> TraceTree:
    """Link spans of one trace; default trace = the one with most spans."""
    grouped = split_traces(spans)
    if not grouped:
        return TraceTree(trace_id or "empty", [])
    if trace_id is None:
        counts = Counter({tid: len(group)
                          for tid, group in grouped.items()})
        trace_id = counts.most_common(1)[0][0]
    return TraceTree(trace_id, grouped.get(trace_id, []))


def to_chrome_trace(tree: TraceTree) -> Dict[str, Any]:
    """Chrome/Perfetto trace-event JSON (complete events, µs units)."""
    trace_events = []
    for span in tree.spans:
        trace_events.append({
            "name": span.get("phase", "?"),
            "cat": "repro",
            "ph": "X",
            "ts": round(float(span.get("ts", 0.0)) * 1e6, 3),
            "dur": round(float(span.get("elapsed", 0.0)) * 1e6, 3),
            "pid": int(span.get("pid", 0)),
            "tid": int(span.get("tid", 0)),
            "args": dict(span.get("fields") or {},
                         span_id=span.get("span"),
                         parent_id=span.get("parent")),
        })
    trace_events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": tree.trace_id,
                      "processes": len(tree.pids())},
    }
