"""Optional hot-path profiling: cProfile dumps per work unit.

``repro ... --profile cprofile`` arms this hook; the fault-tolerant
runner then wraps each work unit's callable so a ``pstats`` dump lands
in the profile directory per unit (``<dir>/<unit_id>.pstats``), ready
for ``python -m pstats`` or snakeviz-style viewers.  Profiling follows
the unit into the timeout worker thread (cProfile is per-thread), and
nested units — a design-space sweep inside an experiment unit — are
guarded: only the outermost unit of a thread is profiled, because two
active profilers in one thread corrupt each other's accounting.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Any, Callable

from repro.obs import events

# Same character policy as repro.runner.checkpoint.sanitize_unit_id,
# duplicated here because obs must stay importable below the runner.
_UNSAFE = re.compile(r"[^A-Za-z0-9._=-]")

_LOCAL = threading.local()


def profiling_enabled() -> bool:
    """Whether ``configure(profile="cprofile")`` armed the hook."""
    return events.profile_mode() == "cprofile"


def profile_output_dir() -> Path:
    return events.profile_dir() or Path("profiles")


def maybe_profiled(fn: Callable[[], Any], label: str) -> Callable[[], Any]:
    """*fn* wrapped with a per-call cProfile dump, when armed.

    Returns *fn* unchanged when profiling is off, so the hot path pays
    nothing.  The wrapper is safe to call in any thread; re-entrant
    calls in one thread (nested work units) run unprofiled.
    """
    if not profiling_enabled():
        return fn

    def wrapper() -> Any:
        if getattr(_LOCAL, "active", False):
            return fn()
        import cProfile

        profiler = cProfile.Profile()
        _LOCAL.active = True
        profiler.enable()
        try:
            return fn()
        finally:
            profiler.disable()
            _LOCAL.active = False
            directory = profile_output_dir()
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / (_UNSAFE.sub("_", label) + ".pstats")
            profiler.dump_stats(path)
            events.emit("profile_dump", level="debug", label=label,
                        path=str(path))

    return wrapper
