"""Unified observability: structured events, metrics, phase tracing.

One instrumentation surface for the whole Figure 1 pipeline
(profile → reduce → synthesize → simulate) and the subsystems that
drive it (fault-tolerant runner, design-space engine, CLI):

* :mod:`repro.obs.events` — JSON-lines structured event log through a
  stdlib-``logging`` adapter (human console + ``--log-json`` file sink);
* :mod:`repro.obs.metrics` — process-wide registry of counters, gauges
  and timing histograms, snapshotted into per-run ``metrics.json``;
* :mod:`repro.obs.tracing` — nested ``trace_span`` phase timing feeding
  both the registry and the event log;
* :mod:`repro.obs.profiling` — optional cProfile dumps per work unit;
* :mod:`repro.obs.telemetry` — cross-process trace-context propagation
  plus per-process ``trace-<pid>.jsonl`` / ``metrics-<pid>.json``;
* :mod:`repro.obs.traceview` — trace stitching, critical-path tree,
  Chrome/Perfetto export (``repro trace <run-dir>``);
* :mod:`repro.obs.exposition` — OpenMetrics rendering, strict
  validation and fleet-wide snapshot aggregation;
* :mod:`repro.obs.flightrec` — bounded event ring buffer dumped to
  ``flightrec-<pid>.jsonl`` on crash/SIGTERM/chaos kill.

See ``docs/observability.md`` for the event schema and metric catalog.
"""

from repro.obs.events import (
    REQUIRED_FIELDS,
    SCHEMA,
    add_sink,
    configure,
    debug,
    emit,
    error,
    info,
    is_configured,
    log_json_path,
    new_run_id,
    remove_sink,
    reset,
    run_id,
    warn,
)
from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    MetricsRegistry,
    TimingHistogram,
    get_registry,
    record_simulation,
    reset_registry,
    set_registry,
)
from repro.obs.exposition import (
    aggregate_run_dir,
    merge_snapshots,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.flightrec import (
    FlightRecorder,
)
from repro.obs.profiling import (
    maybe_profiled,
    profile_output_dir,
    profiling_enabled,
)
from repro.obs.telemetry import (
    TraceContext,
)
from repro.obs.traceview import (
    TraceTree,
    build_tree,
    load_spans,
    to_chrome_trace,
)
from repro.obs.tracing import (
    Span,
    current_span,
    phase_breakdown,
    trace_span,
)

__all__ = [
    "REQUIRED_FIELDS", "SCHEMA", "add_sink", "configure", "debug",
    "emit", "error", "info", "is_configured", "log_json_path",
    "new_run_id", "remove_sink", "reset", "run_id", "warn",
    "SNAPSHOT_SCHEMA", "Counter", "Gauge", "MetricsRegistry",
    "TimingHistogram", "get_registry", "record_simulation",
    "reset_registry", "set_registry",
    "aggregate_run_dir", "merge_snapshots", "render_openmetrics",
    "validate_openmetrics", "FlightRecorder", "TraceContext",
    "TraceTree", "build_tree", "load_spans", "to_chrome_trace",
    "maybe_profiled", "profile_output_dir", "profiling_enabled",
    "Span", "current_span", "phase_breakdown", "trace_span",
]
