"""Structured error hierarchy for the statistical simulation stack.

Every layer boundary raises a :class:`ReproError` subclass so callers —
most importantly the fault-tolerant task runner
(:mod:`repro.runner`) — can tell retryable conditions (timeouts,
injected transients) from fatal ones (corrupt artifacts, invalid
inputs) without string-matching messages.

The subclasses also inherit the closest builtin exception
(:class:`ValueError`, :class:`TimeoutError`, ...) so code written
against the pre-hierarchy API keeps working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured error raised by this package.

    ``retryable`` marks conditions a supervisor may reasonably retry
    (transient faults, timeouts); everything else is deterministic and
    retrying would only repeat the failure.
    """

    retryable: bool = False


class ProfileError(ReproError, ValueError):
    """Invalid input to statistical profiling (bad order, branch mode,
    or malformed trace)."""


class SynthesisError(ReproError, ValueError):
    """Synthetic trace generation failed (bad reduction factor, empty
    or foreign flow graph)."""


class SimulationError(ReproError, ValueError):
    """The pipeline simulator was given an unusable configuration or
    instruction source."""


class ArtifactCorruptError(ReproError, ValueError):
    """A persisted artifact (profile, checkpoint, cached result) is
    truncated, fails its checksum, or is missing required fields."""


class ProfileValidationError(ArtifactCorruptError):
    """A loaded profile is structurally sound JSON but violates a
    statistical invariant (negative histogram mass, inconsistent
    occurrence counts, transition probabilities that cannot sum to 1).
    Subclasses :class:`ArtifactCorruptError` so existing artifact
    handling (discard-and-rerun) applies unchanged."""


class SweepSpecError(ReproError, ValueError):
    """A design-space sweep specification (:mod:`repro.dse.space`) is
    malformed: unknown mode, unsweepable field, or empty expansion."""


class WorkloadSpecError(ReproError, ValueError):
    """A workload specification (:class:`~repro.workloads.generator.
    WorkloadConfig`) describes an impossible program: no instruction
    classes with positive mass, memory instructions without memory
    streams, branch fractions that cannot form a distribution.
    Subclasses :class:`ValueError` so pre-hierarchy callers keep
    working."""


class FuzzDiscrepancyError(ReproError):
    """The differential fuzzing oracle (:mod:`repro.fuzz`) found the
    optimized pipeline and the frozen reference disagreeing on a
    generated program, or a synthetic stream's statistics falling
    outside the acceptance tolerances.  Not retryable: the discrepancy
    is deterministic given the case seed."""


class ChaosSpecError(ReproError, ValueError):
    """A ``REPRO_CHAOS`` chaos-injection spec string
    (:mod:`repro.faults`) is malformed: unknown site, unknown key, or
    an out-of-range value."""


class HealthSpecError(ReproError, ValueError):
    """A ``REPRO_HEALTH`` health-policy spec string
    (:mod:`repro.health`) is malformed: unknown key, non-numeric or
    out-of-range value, or a hard RSS ceiling below the soft one."""


class DeadlineExceededError(ReproError, TimeoutError):
    """The end-to-end health deadline (:mod:`repro.health`) expired
    while this point was still simulating.  Raised from a cooperative
    cancel checkpoint *inside* the pipeline or synthesis loop, so the
    point stops within milliseconds instead of at the next pool
    barrier.  Not retryable: the budget is gone for every attempt."""


class MemoryBudgetError(ReproError, MemoryError):
    """A worker's RSS crossed the hard ceiling of its health policy
    (:mod:`repro.health`).  The point fails cleanly — flight-recorder
    dump, structured error — instead of gambling on the OOM killer.
    Not retryable: re-running the same point would balloon again."""


class CanaryDriftError(ReproError):
    """The sampled statistical canary on the vector path found the
    columnar draws drifting outside the acceptance tolerances
    (:mod:`repro.fuzz.acceptance`).  Retryable by design: the canary
    trips the vector circuit breaker first, so the retry lands on the
    scalar rung of the degradation ladder."""

    retryable = True


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-sweep.  Subclasses ``KeyboardInterrupt`` (so
    any generic interrupt handling still applies) and carries the
    outcomes the supervisor had already collected, letting the engine
    report the partial sweep instead of discarding finished work."""

    def __init__(self, outcomes=None) -> None:
        super().__init__("sweep interrupted")
        self.outcomes = list(outcomes or [])


class ServiceError(ReproError):
    """The simulation service (:mod:`repro.service`) failed at the
    protocol or daemon level: unreachable socket, malformed request,
    or a daemon that went away mid-conversation."""

    retryable = True


class JobRejectedError(ServiceError):
    """The daemon refused a submission under admission control (queue
    full, per-client cap, draining).  Retryable by contract: the
    ``retry_after`` attribute carries the daemon's suggested delay and
    the client honors it with jittered exponential backoff."""

    def __init__(self, message: str, reason: str = "rejected",
                 retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class WorkerCrashError(ReproError):
    """A pool worker process died (segfault, OOM kill, injected
    worker-kill) while executing a task.  Retryable: the supervisor
    requeues the task onto a rebuilt pool until the per-point crash
    budget is exhausted, at which point the task is quarantined."""

    retryable = True


class TaskTimeoutError(ReproError, TimeoutError):
    """A work unit exceeded its wall-clock budget."""

    retryable = True


class InjectedFaultError(ReproError):
    """A transient failure injected by the fault-injection hook
    (:mod:`repro.faults`); used to test the runner against itself."""

    retryable = True


class InjectedIOError(InjectedFaultError, OSError):
    """An injected filesystem failure (the ``io-error`` chaos site).
    Subclasses :class:`OSError` so it flows through exactly the code
    paths a real disk error would."""


def is_retryable(error: BaseException) -> bool:
    """Whether a supervisor should consider retrying after *error*."""
    return bool(getattr(error, "retryable", False))
