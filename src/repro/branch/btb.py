"""Branch target buffer: set-associative, LRU-replaced target cache."""

from __future__ import annotations

from typing import List, Optional, Tuple


class BranchTargetBuffer:
    """A set-associative BTB (paper Table 2: 512-entry, 4-way).

    A lookup that misses — or hits with a stale target — causes a fetch
    redirection for correctly-predicted taken conditional branches, and a
    full misprediction for indirect branches (paper section 2.1.2).
    """

    __slots__ = ("entries", "associativity", "num_sets", "_sets")

    def __init__(self, entries: int, associativity: int) -> None:
        if entries < 1 or associativity < 1:
            raise ValueError("entries and associativity must be >= 1")
        if entries % associativity:
            raise ValueError("entries must be a multiple of associativity")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        # Each set: list of (pc, target), most recently used last.
        self._sets: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.num_sets)
        ]

    def _set_for(self, pc: int) -> List[Tuple[int, int]]:
        return self._sets[(pc >> 3) % self.num_sets]

    def lookup(self, pc: int) -> Optional[int]:
        """Return the predicted target for *pc*, or None on a BTB miss.
        A hit refreshes the entry's LRU position."""
        ways = self._set_for(pc)
        for i, (tag, target) in enumerate(ways):
            if tag == pc:
                if i != len(ways) - 1:
                    ways.append(ways.pop(i))
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for *pc* (done for taken
        branches when they resolve)."""
        ways = self._set_for(pc)
        for i, (tag, _) in enumerate(ways):
            if tag == pc:
                ways.pop(i)
                break
        if len(ways) >= self.associativity:
            ways.pop(0)
        ways.append((pc, target))

    def occupancy(self) -> int:
        """Number of valid entries (testing/inspection aid)."""
        return sum(len(ways) for ways in self._sets)
