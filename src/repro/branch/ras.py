"""Return address stack.

The Table 2 machine has a 64-entry RAS.  Our synthetic ISA models
call/return pairs only implicitly (as indirect branches), so the RAS is
not wired into the default pipeline; it is provided — and tested — as
part of the predictor substrate for workloads that do distinguish
returns.
"""

from __future__ import annotations

from typing import Optional


class ReturnAddressStack:
    """A circular return-address stack that overwrites on overflow,
    as hardware RASes do."""

    __slots__ = ("entries", "_stack", "_top", "_count")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self._stack = [0] * entries
        self._top = 0
        self._count = 0

    def push(self, return_address: int) -> None:
        self._stack[self._top] = return_address
        self._top = (self._top + 1) % self.entries
        if self._count < self.entries:
            self._count += 1

    def pop(self) -> Optional[int]:
        if self._count == 0:
            return None
        self._top = (self._top - 1) % self.entries
        self._count -= 1
        return self._stack[self._top]

    def __len__(self) -> int:
        return self._count
