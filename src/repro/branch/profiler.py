"""Branch profiling with immediate and delayed update (paper §2.1.3).

Profiling tools naturally process a trace one instruction at a time,
training the predictor right after each lookup (*immediate update*).
Real pipelines look up at fetch and update at dispatch/commit, so several
lookups happen against stale state (*delayed update*).  The paper's
contribution is a profiling algorithm that reproduces delayed update with
a FIFO buffer:

    "A branch predictor lookup occurs when a branch instruction enters
    the FIFO; an update occurs when a branch instruction leaves the FIFO.
    If a branch is mispredicted — this is detected upon removal — the
    instructions residing in the FIFO are squashed and new instructions
    are inserted until the FIFO is completely filled."

With speculative update at dispatch time, the natural FIFO size is the
instruction fetch queue size (32 in Table 2).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List

from repro.isa.instruction import DynamicInstruction
from repro.frontend.trace import Trace
from repro.branch.unit import BranchOutcome, BranchPredictorUnit, BranchRecord


def profile_branches_immediate(
    trace: Trace, unit: BranchPredictorUnit
) -> List[BranchRecord]:
    """Profile every branch with lookup immediately followed by update.

    This is the naive (pre-paper) profiling mode: the predictor always
    sees fully up-to-date state, which *underestimates* the misprediction
    rate a pipelined machine experiences (paper Figure 3).
    """
    records: List[BranchRecord] = []
    for inst in trace:
        if inst.is_branch:
            records.append(unit.record(inst))
            unit.train(inst)
    return records


def profile_branches_delayed(
    trace: Trace, unit: BranchPredictorUnit, fifo_size: int
) -> List[BranchRecord]:
    """Profile branches through the paper's delayed-update FIFO.

    Lookups happen when an instruction enters the FIFO (fetch) and
    updates when it leaves (dispatch-time speculative update); a
    misprediction detected at removal squashes the FIFO contents, whose
    stale lookups are discarded and redone against the updated state.

    Returns one record per dynamic branch, in trace order.
    """
    if fifo_size < 1:
        raise ValueError("fifo_size must be >= 1")
    instructions = trace.instructions
    n = len(instructions)
    # Classification for the lookup currently associated with each
    # in-FIFO branch; final (surviving) classifications per trace seq.
    final: Dict[int, BranchRecord] = {}
    fifo: deque = deque()  # elements: (index, BranchRecord | None)
    i = 0
    while i < n or fifo:
        # Fill the FIFO from the trace.
        while i < n and len(fifo) < fifo_size:
            inst = instructions[i]
            record = unit.record(inst) if inst.is_branch else None
            fifo.append((i, record))
            i += 1
        # Remove one instruction from the tail.
        index, record = fifo.popleft()
        if record is not None:
            final[index] = record
            unit.train(instructions[index])
            if record.outcome is BranchOutcome.MISPREDICTION and fifo:
                # Squash: the in-flight lookups were made on the wrong
                # path; refetch those instructions with updated state.
                fifo.clear()
                i = index + 1
    return [final[seq] for seq in sorted(final)]


def mispredictions_per_kilo_instruction(
    records: Iterable[BranchRecord], n_instructions: int
) -> float:
    """Branch mispredictions per 1,000 instructions (Figure 3 metric)."""
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    mispredicts = sum(1 for r in records
                      if r.outcome is BranchOutcome.MISPREDICTION)
    return 1000.0 * mispredicts / n_instructions


def outcome_counts(records: Iterable[BranchRecord]) -> Dict[BranchOutcome, int]:
    """Histogram of branch outcomes (testing/reporting aid)."""
    counts = {outcome: 0 for outcome in BranchOutcome}
    for record in records:
        counts[record.outcome] += 1
    return counts
