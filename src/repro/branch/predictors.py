"""Direction predictors: bimodal, two-level local, and their hybrid.

These mirror SimpleScalar's ``bpred`` components used in the paper's
Table 2 configuration.  All predictors are deterministic finite-state
machines; state advances only through :meth:`update`, which is what makes
the immediate- versus delayed-update distinction of section 2.1.3
meaningful.
"""

from __future__ import annotations

from typing import Protocol

from repro.config import BranchPredictorConfig

#: 2-bit saturating counter bounds; >= _TAKEN_THRESHOLD predicts taken.
_COUNTER_MAX = 3
_TAKEN_THRESHOLD = 2


def _pc_index(pc: int, entries: int) -> int:
    """Index a direct-mapped table by instruction address (instructions
    are 8-byte aligned, so drop the low 3 bits)."""
    return (pc >> 3) % entries


class DirectionPredictor(Protocol):
    """A taken/not-taken predictor for conditional branches."""

    def lookup(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc* (no state change)."""
        ...

    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved direction."""
        ...


class BimodalPredictor:
    """A table of 2-bit saturating counters indexed by PC."""

    __slots__ = ("entries", "_table")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self._table = [_TAKEN_THRESHOLD] * entries  # weakly taken

    def lookup(self, pc: int) -> bool:
        return self._table[_pc_index(pc, self.entries)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        index = _pc_index(pc, self.entries)
        counter = self._table[index]
        if taken:
            if counter < _COUNTER_MAX:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1


class TwoLevelLocalPredictor:
    """A two-level predictor with per-branch local histories.

    The pattern history table is indexed by the local history XOR-ed with
    the branch PC, as specified in the paper's Table 2.  Periodic branch
    patterns whose period fits the history register are captured exactly
    once trained.
    """

    __slots__ = ("history_entries", "pht_entries", "history_bits",
                 "_histories", "_pht", "_history_mask")

    def __init__(self, history_entries: int, pht_entries: int,
                 history_bits: int) -> None:
        if min(history_entries, pht_entries, history_bits) < 1:
            raise ValueError("all table parameters must be >= 1")
        self.history_entries = history_entries
        self.pht_entries = pht_entries
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._histories = [0] * history_entries
        self._pht = [_TAKEN_THRESHOLD] * pht_entries

    def _pht_index(self, pc: int) -> int:
        history = self._histories[_pc_index(pc, self.history_entries)]
        return (history ^ (pc >> 3)) % self.pht_entries

    def lookup(self, pc: int) -> bool:
        return self._pht[self._pht_index(pc)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        pht_index = self._pht_index(pc)
        counter = self._pht[pht_index]
        if taken:
            if counter < _COUNTER_MAX:
                self._pht[pht_index] = counter + 1
        elif counter > 0:
            self._pht[pht_index] = counter - 1
        history_index = _pc_index(pc, self.history_entries)
        self._histories[history_index] = (
            ((self._histories[history_index] << 1) | int(taken))
            & self._history_mask
        )


class HybridPredictor:
    """A meta-predictor choosing between two component predictors.

    The meta table of 2-bit counters is trained toward whichever
    component was correct when they disagree (SimpleScalar's ``comb``
    predictor).  Component predictions are re-derived at update time from
    the components' current state; both components always train.
    """

    __slots__ = ("meta_entries", "component_a", "component_b", "_meta")

    def __init__(self, meta_entries: int, component_a: DirectionPredictor,
                 component_b: DirectionPredictor) -> None:
        if meta_entries < 1:
            raise ValueError("meta_entries must be >= 1")
        self.meta_entries = meta_entries
        self.component_a = component_a
        self.component_b = component_b
        # >= threshold selects component B (the two-level predictor in
        # the Table 2 arrangement); init weakly toward A (bimodal).
        self._meta = [1] * meta_entries

    def lookup(self, pc: int) -> bool:
        use_b = self._meta[_pc_index(pc, self.meta_entries)] >= _TAKEN_THRESHOLD
        if use_b:
            return self.component_b.lookup(pc)
        return self.component_a.lookup(pc)

    def update(self, pc: int, taken: bool) -> None:
        pred_a = self.component_a.lookup(pc)
        pred_b = self.component_b.lookup(pc)
        if pred_a != pred_b:
            index = _pc_index(pc, self.meta_entries)
            counter = self._meta[index]
            if pred_b == taken:
                if counter < _COUNTER_MAX:
                    self._meta[index] = counter + 1
            elif counter > 0:
                self._meta[index] = counter - 1
        self.component_a.update(pc, taken)
        self.component_b.update(pc, taken)


def build_direction_predictor(config: BranchPredictorConfig) -> HybridPredictor:
    """Build the paper's Table 2 hybrid direction predictor."""
    bimodal = BimodalPredictor(config.bimodal_entries)
    local = TwoLevelLocalPredictor(
        history_entries=config.local_history_entries,
        pht_entries=config.local_pht_entries,
        history_bits=config.local_history_bits,
    )
    return HybridPredictor(config.meta_entries, bimodal, local)
