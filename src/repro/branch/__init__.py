"""Branch prediction substrate.

Implements the paper's Table 2 predictor (8K-entry hybrid of a bimodal
table and a two-level local predictor with history XOR PC indexing, a
512-entry 4-way BTB and a 64-entry RAS) plus the branch *profiling*
machinery of section 2.1.3: classification of every dynamic branch into
correct / fetch-redirection / misprediction, under either immediate
update or the paper's delayed-update FIFO.
"""

from repro.branch.predictors import (
    BimodalPredictor,
    HybridPredictor,
    TwoLevelLocalPredictor,
    build_direction_predictor,
)
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import BranchOutcome, BranchPredictorUnit, BranchRecord
from repro.branch.profiler import (
    profile_branches_delayed,
    profile_branches_immediate,
    mispredictions_per_kilo_instruction,
)

__all__ = [
    "BimodalPredictor",
    "TwoLevelLocalPredictor",
    "HybridPredictor",
    "build_direction_predictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchOutcome",
    "BranchRecord",
    "BranchPredictorUnit",
    "profile_branches_immediate",
    "profile_branches_delayed",
    "mispredictions_per_kilo_instruction",
]
