"""The combined branch prediction unit and branch outcome taxonomy.

The paper's three branch characteristics (section 2.1.2) are exactly the
three non-correct lookup outcomes this unit classifies:

* ``P(taken)`` — whether the branch is taken (limits taken branches
  fetched per cycle);
* ``P(fetch redirection)`` — BTB miss with a correct taken/not-taken
  prediction for a conditional branch;
* ``P(misprediction)`` — a wrong direction for a conditional branch, or
  a BTB miss / stale target for an indirect branch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import BranchPredictorConfig
from repro.isa.iclass import CONDITIONAL_BRANCH_CLASSES, IClass
from repro.isa.instruction import DynamicInstruction
from repro.branch.btb import BranchTargetBuffer
from repro.branch.predictors import build_direction_predictor
from repro.branch.ras import ReturnAddressStack


class BranchOutcome(enum.IntEnum):
    """Classification of one dynamic branch lookup."""

    CORRECT = 0
    FETCH_REDIRECTION = 1
    MISPREDICTION = 2


@dataclass(frozen=True)
class BranchRecord:
    """Outcome of one dynamic branch: its trace position, whether it was
    taken, and how the predictor fared."""

    seq: int
    taken: bool
    outcome: BranchOutcome

    @property
    def mispredicted(self) -> bool:
        return self.outcome is BranchOutcome.MISPREDICTION


class BranchPredictorUnit:
    """Direction predictor + BTB (+ RAS), with lookup/update split.

    ``classify`` performs a *lookup only* — no state changes — returning
    the :class:`BranchOutcome` the fetch engine would see given the
    predictor's current state.  ``train`` applies the resolved outcome.
    Separating the two is what lets callers model immediate update,
    delayed update (section 2.1.3) and dispatch-time speculative update
    in the pipeline.
    """

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self.direction = build_direction_predictor(config)
        self.btb = BranchTargetBuffer(config.btb_entries,
                                      config.btb_associativity)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.lookups = 0
        self.updates = 0

    def classify(self, inst: DynamicInstruction) -> BranchOutcome:
        """Classify the lookup for branch *inst* (no training)."""
        self.lookups += 1
        if inst.iclass in CONDITIONAL_BRANCH_CLASSES:
            predicted_taken = self.direction.lookup(inst.pc)
            if predicted_taken != inst.taken:
                return BranchOutcome.MISPREDICTION
            if not inst.taken:
                return BranchOutcome.CORRECT
            # Correct taken prediction: need the target from the BTB.
            target = self.btb.lookup(inst.pc)
            if target == inst.target:
                return BranchOutcome.CORRECT
            return BranchOutcome.FETCH_REDIRECTION
        if inst.iclass is IClass.INDIRECT_BRANCH:
            target = self.btb.lookup(inst.pc)
            if target == inst.target:
                return BranchOutcome.CORRECT
            return BranchOutcome.MISPREDICTION
        raise ValueError(f"not a branch: {inst!r}")

    def train(self, inst: DynamicInstruction) -> None:
        """Train direction predictor and BTB with the resolved branch."""
        self.updates += 1
        if inst.iclass in CONDITIONAL_BRANCH_CLASSES:
            self.direction.update(inst.pc, inst.taken)
            if inst.taken:
                self.btb.update(inst.pc, inst.target)
        else:
            self.btb.update(inst.pc, inst.target)

    def record(self, inst: DynamicInstruction) -> BranchRecord:
        """Classify *inst* into a :class:`BranchRecord` (lookup only)."""
        return BranchRecord(seq=inst.seq, taken=inst.taken,
                            outcome=self.classify(inst))
