"""Workload models from the paper's related work (section 5).

Between "no structure at all" and the SFG lies a spectrum of
statistical workload models the paper positions itself against:

* :class:`IndependentModel` — "the simplest way to build a statistical
  profile is to assume that all characteristics are independent from
  each other" (Carl & Smith and the early Eeckhout/De Bosschere line,
  refs [5, 8, 9, 10]): instructions are drawn i.i.d. from the global
  mix, with global dependency/branch/cache statistics.
* :class:`SizeCorrelatedModel` — Nussbaum & Smith (PACT 2001)
  "correlate various characteristics ... to the size of the basic
  block", which the paper notes "raises the possibility of basic block
  size aliasing": two very different blocks of equal size share one
  distribution.

Both produce :class:`~repro.core.synthetic.SyntheticTrace` objects and
run on the same synthetic-trace simulator, so the workload-model
ablation (independent -> size-correlated -> SFG) isolates exactly the
control-flow-modeling contribution.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.frontend.trace import Trace
from repro.branch.profiler import profile_branches_delayed
from repro.branch.unit import BranchOutcome, BranchPredictorUnit
from repro.cache.hierarchy import CacheHierarchy
from repro.core.synthetic import SyntheticInstruction, SyntheticTrace
from repro.cpu.results import SimulationResult
from repro.power.wattch import PowerBreakdown


class _Distribution:
    """A sampled discrete distribution with cumulative lookup."""

    __slots__ = ("values", "cumulative", "total")

    def __init__(self, histogram: Dict) -> None:
        self.values = sorted(histogram)
        weights = [histogram[v] for v in self.values]
        self.cumulative = list(accumulate(weights))
        self.total = self.cumulative[-1] if self.cumulative else 0

    def sample(self, rng: random.Random):
        if self.total == 0:
            raise ValueError("empty distribution")
        draw = rng.random() * self.total
        return self.values[bisect_right(self.cumulative, draw)]

    def __bool__(self) -> bool:
        return self.total > 0


@dataclass
class _GlobalStats:
    """Shared whole-program statistics measured by both models."""

    block_sizes: Dict[int, int]
    taken_rate: float
    redirect_rate: float
    misprediction_rate: float
    miss_rates: Dict[str, float]
    trace_instructions: int


def _measure_globals(trace: Trace, config: MachineConfig) -> _GlobalStats:
    hierarchy = CacheHierarchy(config)
    sizes: Dict[int, int] = {}
    count = 0
    for inst in trace.instructions:
        count += 1
        hierarchy.access_instruction(inst.pc)
        if inst.mem_addr is not None:
            hierarchy.access_data(inst.mem_addr, is_store=inst.is_store)
        if inst.is_branch:
            sizes[count] = sizes.get(count, 0) + 1
            count = 0
    records = profile_branches_delayed(
        trace, BranchPredictorUnit(config.predictor),
        fifo_size=config.ifq_size)
    n = max(1, len(records))
    return _GlobalStats(
        block_sizes=sizes,
        taken_rate=sum(r.taken for r in records) / n,
        redirect_rate=sum(r.outcome is BranchOutcome.FETCH_REDIRECTION
                          for r in records) / n,
        misprediction_rate=sum(r.outcome is BranchOutcome.MISPREDICTION
                               for r in records) / n,
        miss_rates=hierarchy.miss_rates(),
        trace_instructions=len(trace),
    )


def _sample_locality(rng: random.Random, iclass: IClass,
                     stats: _GlobalStats):
    """Sample the per-instruction flags shared by both models."""
    rates = stats.miss_rates
    il1 = rng.random() < rates["il1"]
    l2i = il1 and rng.random() < rates["l2_instruction"]
    itlb = rng.random() < rates["itlb"]
    dl1 = l2d = dtlb = False
    taken = False
    outcome: Optional[BranchOutcome] = None
    if iclass is IClass.LOAD:
        dl1 = rng.random() < rates["dl1"]
        l2d = dl1 and rng.random() < rates["l2_data"]
        dtlb = rng.random() < rates["dtlb"]
    if iclass in BRANCH_CLASSES:
        taken = rng.random() < stats.taken_rate
        draw = rng.random()
        if draw < stats.misprediction_rate:
            outcome = BranchOutcome.MISPREDICTION
        elif draw < stats.misprediction_rate + stats.redirect_rate:
            outcome = BranchOutcome.FETCH_REDIRECTION
        else:
            outcome = BranchOutcome.CORRECT
    return il1, l2i, itlb, dl1, l2d, dtlb, taken, outcome


def _sample_dependencies(rng: random.Random, n_src: int, p_dep: float,
                         distribution: _Distribution,
                         out: List[SyntheticInstruction]) -> Tuple[int, ...]:
    distances: List[int] = []
    position = len(out)
    for _ in range(n_src):
        if not distribution or rng.random() >= p_dep:
            continue
        for _ in range(1000):
            distance = distribution.sample(rng)
            target = position - distance
            if target >= 0 and not out[target].produces_register:
                continue
            distances.append(distance)
            break
    return tuple(distances)


class IndependentModel:
    """All characteristics independent (the pre-HLS strawman)."""

    def __init__(self, trace: Trace, config: MachineConfig) -> None:
        self.name = trace.name
        self.globals = _measure_globals(trace, config)
        mix: Dict[IClass, int] = {}
        operand_counts: Dict[int, int] = {}
        distance_hist: Dict[int, int] = {}
        operands = with_dep = 0
        last_writer: Dict[int, int] = {}
        for inst in trace.instructions:
            if inst.iclass not in BRANCH_CLASSES:
                mix[inst.iclass] = mix.get(inst.iclass, 0) + 1
            operand_counts[len(inst.src_regs)] = \
                operand_counts.get(len(inst.src_regs), 0) + 1
            for reg in inst.src_regs:
                operands += 1
                writer = last_writer.get(reg)
                if writer is not None and 0 < inst.seq - writer <= 512:
                    with_dep += 1
                    d = inst.seq - writer
                    distance_hist[d] = distance_hist.get(d, 0) + 1
            if inst.dst_reg is not None:
                last_writer[inst.dst_reg] = inst.seq
        self._mix = _Distribution(mix)
        self._operand_counts = _Distribution(operand_counts)
        self._distances = _Distribution(distance_hist)
        self._p_dep = with_dep / operands if operands else 0.0
        self._sizes = _Distribution(self.globals.block_sizes)

    def generate(self, length: int, seed: int = 0) -> SyntheticTrace:
        """Draw instructions i.i.d.; blocks only delimit branches."""
        rng = random.Random(seed)
        out: List[SyntheticInstruction] = []
        while len(out) < length:
            size = self._sizes.sample(rng)
            for slot in range(size):
                is_branch = slot == size - 1
                iclass = (IClass.INT_COND_BRANCH if is_branch
                          else self._mix.sample(rng))
                distances = _sample_dependencies(
                    rng, self._operand_counts.sample(rng), self._p_dep,
                    self._distances, out)
                (il1, l2i, itlb, dl1, l2d, dtlb, taken,
                 outcome) = _sample_locality(rng, iclass, self.globals)
                out.append(SyntheticInstruction(
                    iclass=iclass, dep_distances=distances,
                    il1_miss=il1, l2i_miss=l2i, itlb_miss=itlb,
                    dl1_miss=dl1, l2d_miss=l2d, dtlb_miss=dtlb,
                    taken=taken, outcome=outcome))
        return SyntheticTrace(name=f"{self.name}/independent",
                              instructions=out[:length], order=-1,
                              reduction_factor=(self.globals
                                                .trace_instructions
                                                / max(1, length)),
                              seed=seed)


class SizeCorrelatedModel:
    """Characteristics correlated to basic block size (Nussbaum &
    Smith)."""

    def __init__(self, trace: Trace, config: MachineConfig) -> None:
        self.name = trace.name
        self.globals = _measure_globals(trace, config)
        # Per block size: per-slot instruction mixes, operand counts and
        # dependency distances; blocks of equal size share everything
        # (the "size aliasing" the paper criticises).
        self._per_size: Dict[int, List[Dict]] = {}
        self._dep_per_size: Dict[int, List] = {}
        last_writer: Dict[int, int] = {}
        block: List = []
        pending: List[Tuple[int, Tuple[int, ...]]] = []
        for inst in trace.instructions:
            block.append(inst)
            if not inst.is_branch:
                continue
            size = len(block)
            slots = self._per_size.setdefault(
                size, [dict(mix={}, operands={}) for _ in range(size)])
            dep = self._dep_per_size.setdefault(size, [dict(), 0, 0])
            for slot, binst in enumerate(block):
                slots[slot]["mix"][binst.iclass] = \
                    slots[slot]["mix"].get(binst.iclass, 0) + 1
                n_src = len(binst.src_regs)
                slots[slot]["operands"][n_src] = \
                    slots[slot]["operands"].get(n_src, 0) + 1
                for reg in binst.src_regs:
                    dep[2] += 1
                    writer = last_writer.get(reg)
                    if writer is not None and \
                            0 < binst.seq - writer <= 512:
                        dep[1] += 1
                        d = binst.seq - writer
                        dep[0][d] = dep[0].get(d, 0) + 1
                if binst.dst_reg is not None:
                    last_writer[binst.dst_reg] = binst.seq
            block = []
        self._sizes = _Distribution(self.globals.block_sizes)
        # Freeze distributions.
        self._frozen: Dict[int, List[Tuple[_Distribution, _Distribution]]] = {}
        self._frozen_dep: Dict[int, Tuple[_Distribution, float]] = {}
        for size, slots in self._per_size.items():
            self._frozen[size] = [
                (_Distribution(slot["mix"]), _Distribution(slot["operands"]))
                for slot in slots
            ]
            hist, with_dep, operands = self._dep_per_size[size]
            self._frozen_dep[size] = (
                _Distribution(hist),
                with_dep / operands if operands else 0.0,
            )

    def generate(self, length: int, seed: int = 0) -> SyntheticTrace:
        rng = random.Random(seed)
        out: List[SyntheticInstruction] = []
        while len(out) < length:
            size = self._sizes.sample(rng)
            slots = self._frozen[size]
            distances_dist, p_dep = self._frozen_dep[size]
            for slot in range(size):
                mix, operand_counts = slots[slot]
                iclass = mix.sample(rng)
                distances = _sample_dependencies(
                    rng, operand_counts.sample(rng), p_dep,
                    distances_dist, out)
                (il1, l2i, itlb, dl1, l2d, dtlb, taken,
                 outcome) = _sample_locality(rng, iclass, self.globals)
                out.append(SyntheticInstruction(
                    iclass=iclass, dep_distances=distances,
                    il1_miss=il1, l2i_miss=l2i, itlb_miss=itlb,
                    dl1_miss=dl1, l2d_miss=l2d, dtlb_miss=dtlb,
                    taken=taken, outcome=outcome))
        return SyntheticTrace(name=f"{self.name}/size-correlated",
                              instructions=out[:length], order=-1,
                              reduction_factor=(self.globals
                                                .trace_instructions
                                                / max(1, length)),
                              seed=seed)


def run_model(model, config: MachineConfig, length: int, seed: int = 0
              ) -> Tuple[SimulationResult, PowerBreakdown]:
    """Generate a trace from *model* and simulate it."""
    from repro.core.framework import simulate_synthetic_trace

    return simulate_synthetic_trace(model.generate(length, seed=seed),
                                    config)
