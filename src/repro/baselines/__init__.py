"""Baselines the paper compares against.

* :mod:`repro.baselines.hls` — the HLS statistical simulation framework
  of Oskin et al. (ISCA 2000), which models the workload with a graph of
  100 normally-sized basic blocks filled from a *global* instruction-mix
  distribution (no per-block structure) — the contrast that motivates
  the SFG (paper section 4.3).
* :mod:`repro.baselines.simpoint` — SimPoint sampling (Sherwood et al.,
  ASPLOS 2002): basic-block-vector clustering picks representative
  intervals that are simulated in detail (paper section 4.4).
"""

from repro.baselines.hls import HLSProfile, hls_profile, run_hls_simulation
from repro.baselines.simpoint import (
    SimPointSelection,
    basic_block_vectors,
    run_simpoint,
    select_simpoints,
)

__all__ = [
    "HLSProfile",
    "hls_profile",
    "run_hls_simulation",
    "SimPointSelection",
    "basic_block_vectors",
    "select_simpoints",
    "run_simpoint",
]

from repro.baselines.related import (  # noqa: E402
    IndependentModel,
    SizeCorrelatedModel,
    run_model,
)

__all__ += ["IndependentModel", "SizeCorrelatedModel", "run_model"]
