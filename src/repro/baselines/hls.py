"""The HLS baseline (Oskin, Chong and Farrens — ISCA 2000).

HLS is statistical simulation *without* control-flow structure, which is
exactly what the paper contrasts the SFG against (section 4.3/5):

    "In HLS, Oskin et al. generate one hundred basic blocks of a size
    determined by a normal distribution over the average size found in
    the original workload.  The basic block branch predictabilities are
    statistically generated from the overall branch predictability
    obtained from the original workload.  Instructions are assigned to
    the basic blocks randomly based on the overall instruction mix
    distribution, in contrast to the basic block modeling granularity of
    the SFG."

This implementation profiles *global* statistics only (instruction mix,
mean/std block size, one dependency-distance distribution, one branch
predictability, six cache miss rates), builds the 100-block graph, walks
it, and simulates the result on the same synthetic-trace pipeline used
by SMART-HLS — so any accuracy difference is attributable to the
workload model, as in the paper.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, List, Tuple

from repro.config import MachineConfig
from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.frontend.trace import Trace
from repro.branch.profiler import profile_branches_delayed
from repro.branch.unit import BranchOutcome, BranchPredictorUnit
from repro.cache.hierarchy import CacheHierarchy
from repro.core.synthetic import SyntheticInstruction, SyntheticTrace
from repro.cpu.results import SimulationResult
from repro.power.wattch import PowerBreakdown

#: HLS models the program as this many synthetic basic blocks.
HLS_NUM_BLOCKS = 100


@dataclass
class HLSProfile:
    """Global (structure-free) program statistics."""

    name: str
    instruction_mix: Dict[IClass, float]
    mean_block_size: float
    std_block_size: float
    operand_counts: Dict[IClass, Tuple[Tuple[int, ...], Tuple[int, ...]]]
    dependency_distances: Tuple[Tuple[int, ...], Tuple[int, ...]]
    dependency_fraction: float
    taken_rate: float
    redirect_rate: float
    misprediction_rate: float
    miss_rates: Dict[str, float]
    trace_instructions: int


def hls_profile(trace: Trace, config: MachineConfig) -> HLSProfile:
    """Measure HLS's global statistical profile from a dynamic trace."""
    hierarchy = CacheHierarchy(config)
    mix: Dict[IClass, int] = {}
    block_sizes: List[int] = []
    size = 0
    operand_counter: Dict[IClass, Dict[int, int]] = {}
    distance_hist: Dict[int, int] = {}
    operands_total = 0
    operands_with_dep = 0
    last_writer: Dict[int, int] = {}
    loads = 0

    for inst in trace.instructions:
        mix[inst.iclass] = mix.get(inst.iclass, 0) + 1
        size += 1
        counts = operand_counter.setdefault(inst.iclass, {})
        n_src = len(inst.src_regs)
        counts[n_src] = counts.get(n_src, 0) + 1
        for reg in inst.src_regs:
            operands_total += 1
            writer = last_writer.get(reg)
            if writer is not None and 0 < inst.seq - writer <= 512:
                operands_with_dep += 1
                distance = inst.seq - writer
                distance_hist[distance] = distance_hist.get(distance, 0) + 1
        if inst.dst_reg is not None:
            last_writer[inst.dst_reg] = inst.seq
        hierarchy.access_instruction(inst.pc)
        if inst.mem_addr is not None:
            hierarchy.access_data(inst.mem_addr, is_store=inst.is_store)
            loads += inst.is_load
        if inst.is_branch:
            block_sizes.append(size)
            size = 0

    records = profile_branches_delayed(
        trace, BranchPredictorUnit(config.predictor),
        fifo_size=config.ifq_size)
    n_branches = max(1, len(records))
    taken = sum(r.taken for r in records)
    redirect = sum(r.outcome is BranchOutcome.FETCH_REDIRECTION
                   for r in records)
    mispredict = sum(r.outcome is BranchOutcome.MISPREDICTION
                     for r in records)

    total = len(trace)
    mean_size = (sum(block_sizes) / len(block_sizes)) if block_sizes else 1.0
    if len(block_sizes) > 1:
        variance = (sum((s - mean_size) ** 2 for s in block_sizes)
                    / (len(block_sizes) - 1))
    else:
        variance = 0.0
    distances = tuple(sorted(distance_hist))
    weights = tuple(distance_hist[d] for d in distances)
    operand_counts = {
        iclass: (tuple(sorted(counts)),
                 tuple(counts[n] for n in sorted(counts)))
        for iclass, counts in operand_counter.items()
    }

    return HLSProfile(
        name=trace.name,
        instruction_mix={ic: c / total for ic, c in mix.items()},
        mean_block_size=mean_size,
        std_block_size=variance ** 0.5,
        operand_counts=operand_counts,
        dependency_distances=(distances, weights),
        dependency_fraction=(operands_with_dep / operands_total
                             if operands_total else 0.0),
        taken_rate=taken / n_branches,
        redirect_rate=redirect / n_branches,
        misprediction_rate=mispredict / n_branches,
        miss_rates=hierarchy.miss_rates(),
        trace_instructions=total,
    )


def _weighted_choice(rng: random.Random, values, cumulative) -> object:
    draw = rng.random() * cumulative[-1]
    return values[bisect_right(cumulative, draw)]


def generate_hls_trace(profile: HLSProfile, length: int,
                       seed: int = 0) -> SyntheticTrace:
    """Generate an HLS synthetic trace of roughly *length* instructions.

    One hundred basic blocks are built with normally distributed sizes
    and globally sampled instruction contents, wired into a random graph
    (two successors per block with a random split); the trace is a random
    walk over that graph with globally sampled locality events.
    """
    rng = random.Random(seed)
    branch_classes = [IClass.INT_COND_BRANCH]
    non_branch_mix = {ic: w for ic, w in profile.instruction_mix.items()
                      if ic not in BRANCH_CLASSES}
    mix_classes = list(non_branch_mix)
    mix_cumulative = list(accumulate(non_branch_mix[ic]
                                     for ic in mix_classes))

    # Build 100 blocks: a list of instruction classes per block.
    blocks: List[List[IClass]] = []
    for _ in range(HLS_NUM_BLOCKS):
        body = max(0, int(round(rng.gauss(profile.mean_block_size - 1,
                                          profile.std_block_size))))
        instructions = [
            _weighted_choice(rng, mix_classes, mix_cumulative)
            for _ in range(body)
        ]
        instructions.append(rng.choice(branch_classes))
        blocks.append(instructions)
    successors = [
        (rng.randrange(HLS_NUM_BLOCKS), rng.randrange(HLS_NUM_BLOCKS),
         rng.random())
        for _ in range(HLS_NUM_BLOCKS)
    ]

    distances, weights = profile.dependency_distances
    distance_cumulative = list(accumulate(weights))
    rates = profile.miss_rates
    p_il1 = rates["il1"]
    p_l2i = rates["l2_instruction"]
    p_dl1 = rates["dl1"]
    p_l2d = rates["l2_data"]
    p_itlb = rates["itlb"]
    p_dtlb = rates["dtlb"]

    out: List[SyntheticInstruction] = []
    current = rng.randrange(HLS_NUM_BLOCKS)
    while len(out) < length:
        for iclass in blocks[current]:
            position = len(out)
            dep_distances: List[int] = []
            counts = profile.operand_counts.get(iclass)
            if counts:
                n_src = _weighted_choice(
                    rng, counts[0], list(accumulate(counts[1])))
            else:
                n_src = 0
            for _ in range(n_src):
                if not distances or rng.random() >= profile.dependency_fraction:
                    continue
                for _ in range(1000):
                    distance = _weighted_choice(rng, distances,
                                                distance_cumulative)
                    target = position - distance
                    if target >= 0 and not out[target].produces_register:
                        continue
                    dep_distances.append(distance)
                    break
            il1 = rng.random() < p_il1
            l2i = il1 and rng.random() < p_l2i
            itlb = rng.random() < p_itlb
            dl1 = l2d = dtlb = False
            taken = False
            outcome = None
            if iclass is IClass.LOAD:
                dl1 = rng.random() < p_dl1
                l2d = dl1 and rng.random() < p_l2d
                dtlb = rng.random() < p_dtlb
            if iclass in BRANCH_CLASSES:
                taken = rng.random() < profile.taken_rate
                draw = rng.random()
                if draw < profile.misprediction_rate:
                    outcome = BranchOutcome.MISPREDICTION
                elif draw < (profile.misprediction_rate
                             + profile.redirect_rate):
                    outcome = BranchOutcome.FETCH_REDIRECTION
                else:
                    outcome = BranchOutcome.CORRECT
            out.append(SyntheticInstruction(
                iclass=iclass, dep_distances=tuple(dep_distances),
                il1_miss=il1, l2i_miss=l2i, itlb_miss=itlb,
                dl1_miss=dl1, l2d_miss=l2d, dtlb_miss=dtlb,
                taken=taken, outcome=outcome,
            ))
        a, b, split = successors[current]
        current = a if rng.random() < split else b

    return SyntheticTrace(
        name=f"{profile.name}/hls",
        instructions=out[:length],
        order=-1,
        reduction_factor=profile.trace_instructions / max(1, length),
        seed=seed,
    )


def run_hls_simulation(trace: Trace, config: MachineConfig,
                       synthetic_length: int = 10_000, seed: int = 0
                       ) -> Tuple[SimulationResult, PowerBreakdown]:
    """Profile *trace* the HLS way, generate an HLS synthetic trace and
    simulate it on the shared synthetic-trace pipeline."""
    from repro.core.framework import simulate_synthetic_trace

    profile = hls_profile(trace, config)
    synthetic = generate_hls_trace(profile, length=synthetic_length,
                                   seed=seed)
    return simulate_synthetic_trace(synthetic, config)
