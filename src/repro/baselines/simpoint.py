"""SimPoint sampling baseline (Sherwood et al., ASPLOS 2002).

The paper compares statistical simulation against SimPoint in section
4.4: SimPoint splits the execution into fixed-size intervals, summarizes
each by its basic block vector (BBV), clusters the (projected) vectors
with k-means, and simulates one representative interval per cluster in
detail, weighting results by cluster size.

This implementation follows that pipeline: BBVs weighted by instruction
counts, random projection to a low-dimensional space, k-means++ seeding,
and BIC-style model selection over k — all deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import MachineConfig
from repro.frontend.trace import Trace, split_intervals

#: SimPoint projects BBVs to this many dimensions before clustering.
PROJECTED_DIMENSIONS = 15


def basic_block_vectors(trace: Trace, interval: int) -> Tuple[np.ndarray,
                                                              List[Trace]]:
    """Split *trace* into intervals and compute normalized BBVs.

    Each vector counts, per basic block, the instructions executed in
    that block during the interval, normalized to sum to one.
    """
    pieces = split_intervals(trace, interval)
    if not pieces:
        raise ValueError("trace shorter than one interval")
    block_ids = sorted({inst.bb_id for inst in trace.instructions})
    index = {bb: i for i, bb in enumerate(block_ids)}
    vectors = np.zeros((len(pieces), len(block_ids)))
    for row, piece in enumerate(pieces):
        for inst in piece.instructions:
            vectors[row, index[inst.bb_id]] += 1
        vectors[row] /= max(1.0, vectors[row].sum())
    return vectors, pieces


def _kmeans(data: np.ndarray, k: int, rng: random.Random,
            iterations: int = 50) -> Tuple[np.ndarray, np.ndarray]:
    """k-means with k-means++ seeding; returns (labels, centroids)."""
    n = data.shape[0]
    centroids = [data[rng.randrange(n)]]
    while len(centroids) < k:
        d2 = np.min(
            [np.sum((data - c) ** 2, axis=1) for c in centroids], axis=0)
        total = float(d2.sum())
        if total <= 0:
            centroids.append(data[rng.randrange(n)])
            continue
        draw = rng.random() * total
        centroids.append(data[int(np.searchsorted(np.cumsum(d2), draw))])
    centers = np.array(centroids)
    labels = np.zeros(n, dtype=int)
    for iteration in range(iterations):
        distances = np.linalg.norm(data[:, None, :] - centers[None, :, :],
                                   axis=2)
        new_labels = distances.argmin(axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for j in range(k):
            members = data[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return labels, centers


def _bic_score(data: np.ndarray, labels: np.ndarray,
               centers: np.ndarray) -> float:
    """A BIC-style score (higher is better) as SimPoint uses for model
    selection over k."""
    n, d = data.shape
    k = centers.shape[0]
    sse = sum(
        float(np.sum((data[labels == j] - centers[j]) ** 2))
        for j in range(k)
    )
    variance = max(sse / max(1, n - k), 1e-12)
    log_likelihood = -0.5 * n * (d * math.log(2 * math.pi * variance) + 1)
    parameters = k * (d + 1)
    return log_likelihood - 0.5 * parameters * math.log(n)


@dataclass
class SimPointSelection:
    """Chosen representative intervals with their weights."""

    interval: int
    representatives: List[int]      # interval indices
    weights: List[float]            # sum to 1
    labels: np.ndarray
    k: int

    @property
    def simulated_instructions(self) -> int:
        return len(self.representatives) * self.interval


def select_simpoints(trace: Trace, interval: int, max_k: int = 6,
                     seed: int = 0) -> SimPointSelection:
    """Pick representative intervals via BBV clustering."""
    vectors, pieces = basic_block_vectors(trace, interval)
    rng = random.Random(seed)
    n, dims = vectors.shape
    if dims > PROJECTED_DIMENSIONS:
        projector = np.array([
            [rng.gauss(0, 1) for _ in range(PROJECTED_DIMENSIONS)]
            for _ in range(dims)
        ])
        data = vectors @ projector
    else:
        data = vectors

    best = None
    for k in range(1, min(max_k, n) + 1):
        labels, centers = _kmeans(data, k, rng)
        score = _bic_score(data, labels, centers)
        if best is None or score > best[0]:
            best = (score, k, labels, centers)
    _, k, labels, centers = best

    representatives: List[int] = []
    weights: List[float] = []
    for j in range(k):
        members = np.nonzero(labels == j)[0]
        if len(members) == 0:
            continue
        cluster = data[members]
        closest = members[int(np.argmin(
            np.linalg.norm(cluster - centers[j], axis=1)))]
        representatives.append(int(closest))
        weights.append(len(members) / n)
    return SimPointSelection(interval=interval,
                             representatives=representatives,
                             weights=weights, labels=labels, k=k)


def _warm_structures(trace: Trace, config: MachineConfig, start: int,
                     warmup_trace: Optional[Trace]):
    """Functionally warm caches and the branch predictor on everything
    preceding interval *start* (SimPoint-style architectural warming:
    the original tooling fast-forwards functionally to each simulation
    point)."""
    from repro.frontend.warming import warm_locality_structures

    prefix = list(warmup_trace.instructions) if warmup_trace else []
    prefix.extend(trace.instructions[:start])
    return warm_locality_structures(
        Trace(name=f"{trace.name}/prefix", instructions=prefix), config)


def run_simpoint(trace: Trace, config: MachineConfig, interval: int,
                 max_k: int = 6, seed: int = 0,
                 warmup_trace: Optional[Trace] = None) -> Dict[str, float]:
    """Full SimPoint estimate: cluster, simulate representatives in
    detail (execution-driven, with full architectural warming on each
    representative's prefix), and weight the results.  *warmup_trace*
    is the execution window preceding *trace*, if any."""
    from repro.cpu.pipeline import simulate
    from repro.cpu.source import ExecutionDrivenSource
    from repro.power.wattch import WattchPowerModel

    selection = select_simpoints(trace, interval, max_k=max_k, seed=seed)
    pieces = split_intervals(trace, interval)
    model = WattchPowerModel(config)
    # SimPoint weights estimate per-instruction quantities, so CPI (not
    # IPC) is averaged; overall IPC is the weighted harmonic mean.  EPC
    # is energy per *cycle*, so it is weighted by estimated cycles.
    weighted_cpi = 0.0
    weighted_energy = 0.0
    for index, weight in zip(selection.representatives, selection.weights):
        hierarchy, predictor = _warm_structures(
            trace, config, start=index * interval,
            warmup_trace=warmup_trace)
        # Dependency distances are differences of sequence numbers, so
        # the interval's original (offset) numbering works unchanged.
        source = ExecutionDrivenSource(pieces[index], config,
                                       hierarchy=hierarchy,
                                       predictor=predictor)
        result = simulate(config, source)
        power = model.energy_per_cycle(result)
        weighted_cpi += weight * result.cpi
        weighted_energy += weight * result.cpi * power.total
    return {
        "ipc": 1.0 / weighted_cpi if weighted_cpi else 0.0,
        "epc": (weighted_energy / weighted_cpi) if weighted_cpi else 0.0,
        "k": selection.k,
        "simulated_instructions": selection.simulated_instructions,
    }
