"""``repro top``: a live plain-text view of the fleet.

Polls the daemon's ``metrics`` verb (protocol 2) and renders queue
depth, in-flight jobs, cache hit rate, evaluation throughput and
per-phase latency percentiles as a refreshing text frame — ``watch``
semantics with no external dependencies, over the same Unix socket
every other client command uses.

Rates (points/sec) are derived client-side from consecutive counter
snapshots, so the daemon stays stateless about its observers.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServiceError


def compute_rates(previous: Optional[Dict[str, Any]],
                  current: Dict[str, Any],
                  elapsed: float) -> Dict[str, float]:
    """Per-second deltas of throughput counters between two snapshots."""
    rates: Dict[str, float] = {}
    if previous is None or elapsed <= 0:
        return rates
    prev_counters = previous.get("counters", {})
    counters = current.get("counters", {})
    for name in ("dse.evaluated", "service.jobs_done",
                 "runner.units_ok"):
        delta = int(counters.get(name, 0)) \
            - int(prev_counters.get(name, 0))
        if delta >= 0:
            rates[name] = delta / elapsed
    return rates


def cache_hit_rate(snapshot: Dict[str, Any]) -> Optional[float]:
    counters = snapshot.get("counters", {})
    hits = int(counters.get("dse.cache_hits", 0))
    misses = int(counters.get("dse.cache_misses", 0))
    total = hits + misses
    return hits / total if total else None


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def format_frame(response: Dict[str, Any],
                 rates: Optional[Dict[str, float]] = None) -> str:
    """One refresh of the top view, as plain text."""
    rates = rates or {}
    snapshot = response.get("metrics", {})
    counts = response.get("counts", {})
    lines: List[str] = []
    state = "draining" if response.get("draining") else "serving"
    lines.append(
        f"repro top — daemon pid {response.get('pid', '?')} "
        f"({state}, {response.get('workers', '?')} worker(s), "
        f"{snapshot.get('processes', 1)} process(es) aggregated)")
    lines.append(
        f"jobs: queued={response.get('queue_depth', 0)} "
        f"running={len(response.get('active', []))} "
        f"done={counts.get('done', 0)} "
        f"failed={counts.get('failed', 0)} "
        f"cancelled={counts.get('cancelled', 0)}")
    hit_rate = cache_hit_rate(snapshot)
    throughput = rates.get("dse.evaluated")
    lines.append(
        "sweep: points/sec="
        + (f"{throughput:.2f}" if throughput is not None else "-")
        + " cache-hit-rate="
        + (f"{hit_rate * 100:.1f}%" if hit_rate is not None else "-")
        + f" evaluated={snapshot.get('counters', {}).get('dse.evaluated', 0)}")
    health = response.get("health") or {}
    ladder = health.get("ladder") or {}
    degraded = sorted(name for name, entry in ladder.items()
                      if entry.get("degraded"))
    if ladder:
        rss = health.get("rss_mb")
        lines.append(
            "health: "
            + ("ALL RUNGS PRIMARY" if not degraded else
               " ".join(f"{name}→{ladder[name].get('rung')}"
                        for name in degraded))
            + (f" rss={rss:.0f}MB" if isinstance(rss, (int, float))
               else ""))
    phases = snapshot.get("phases", {})
    if phases:
        lines.append("")
        lines.append(f"{'phase':<14}{'count':>8}{'p50':>10}"
                     f"{'p95':>10}{'p99':>10}{'total':>10}")
        for name in sorted(phases):
            payload = phases[name]
            lines.append(
                f"{name:<14}{payload.get('count', 0):>8}"
                f"{_fmt_seconds(payload.get('p50')):>10}"
                f"{_fmt_seconds(payload.get('p95')):>10}"
                f"{_fmt_seconds(payload.get('p99')):>10}"
                f"{_fmt_seconds(payload.get('total')):>10}")
    return "\n".join(lines)


def run_top(client: Any, interval: float = 2.0, once: bool = False,
            emit: Callable[[str], None] = print,
            clock: Callable[[], float] = time.monotonic,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """The ``repro top`` loop; returns a CLI exit code.

    *client* needs a ``metrics()`` method (a
    :class:`~repro.service.client.ServiceClient`); injectable clock /
    sleep / emit keep the loop unit-testable without a daemon.
    """
    previous: Optional[Dict[str, Any]] = None
    previous_at: Optional[float] = None
    while True:
        try:
            response = client.metrics()
        except ServiceError as exc:
            emit(f"repro top: {exc}")
            return 1
        now = clock()
        rates = compute_rates(previous, response.get("metrics", {}),
                              now - previous_at
                              if previous_at is not None else 0.0)
        # ANSI clear + home between frames; plain separator keeps the
        # output readable when piped to a file.
        frame = format_frame(response, rates)
        emit("\x1b[2J\x1b[H" + frame if not once else frame)
        if once:
            return 0
        previous = response.get("metrics", {})
        previous_at = now
        try:
            sleep(interval)
        except KeyboardInterrupt:
            return 0
