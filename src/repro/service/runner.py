"""What a service job actually *does* when a worker picks it up.

The daemon is deliberately ignorant of simulation: it hands the job's
payload to :func:`run_job`, which dispatches on ``kind``.  Two kinds
exist:

* ``sweep`` — the real workload: a design-space study
  (:func:`repro.dse.study.run_study`) with verification off (the
  daemon's callers collect statistical results; execution-driven
  verification stays an interactive decision).  Sharing ``cache_dir``
  across jobs is how two overlapping sweeps avoid duplicate
  evaluations: the promoted :class:`~repro.dse.cache.ResultCache` is
  multi-process safe.
* ``sleep`` — a do-nothing job of a known duration, used by the tests
  to exercise queueing, recovery and cancellation without paying for
  simulation.
"""

from __future__ import annotations

from typing import Any, Dict


def run_sleep_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    import time

    seconds = float(payload.get("seconds", 0.1))
    if seconds < 0:
        raise ValueError(f"cannot sleep {seconds}s")
    time.sleep(seconds)
    return {"kind": "sleep", "slept": seconds,
            "tag": payload.get("tag")}


def run_sweep_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.dse.space import SweepSpec, reduced_sec46_spec
    from repro.dse.study import run_study
    from repro.experiments.common import DEFAULT_SCALE, QUICK_SCALE

    spec = (SweepSpec.from_dict(payload["spec"])
            if payload.get("spec") else reduced_sec46_spec())
    scale = (QUICK_SCALE if payload.get("scale", "quick") == "quick"
             else DEFAULT_SCALE)
    seeds = payload.get("seeds")
    health = None
    if payload.get("deadline") is not None:
        from repro.health import HealthPolicy

        health = HealthPolicy.from_env().with_deadline(
            float(payload["deadline"]))
    study = run_study(
        spec,
        payload["benchmark"],
        scale,
        jobs=int(payload.get("jobs", 1)),
        cache_dir=payload.get("cache_dir"),
        seeds=tuple(seeds) if seeds else None,
        verify=False,
        health=health,
    )
    row = study.to_row()
    row["kind"] = "sweep"
    row["interrupted"] = study.sweep.interrupted
    return row


_KINDS = {
    "sleep": run_sleep_job,
    "sweep": run_sweep_job,
}


def run_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job payload; returns its JSON-serializable result.

    Raises on failure — the daemon converts exceptions into the job's
    terminal ``failed`` state with the error recorded.
    """
    kind = payload.get("kind")
    runner = _KINDS.get(kind)
    if runner is None:
        raise ValueError(
            f"unknown job kind {kind!r}; expected one of "
            f"{', '.join(sorted(_KINDS))}")
    return runner(payload)


__all__ = ["run_job", "run_sleep_job", "run_sweep_job"]
