"""Write-ahead journal for the durable job store.

Every job-state mutation is appended to ``journal.jsonl`` — one JSON
line per record, fsynced — *before* the in-memory state changes are
considered durable.  A ``kill -9`` of the daemon therefore loses
nothing: restart replays the journal on top of the last checkpoint
(:mod:`repro.service.jobs` writes those with
:func:`repro.runner.checkpoint.write_json_atomic`'s checksummed
scheme) and reconstructs exactly the acknowledged state.

Tail corruption — the on-disk shape of dying mid-append, and what the
``journal-corrupt`` chaos site injects — is expected, not fatal: each
line carries its own checksum, and replay **skips** lines that fail to
parse or verify, counting them.  A skipped line can only be a record
that was never acknowledged (the append had not returned), so dropping
it is the correct recovery.

Compaction: once a checkpoint absorbs the journal's records, the
journal is atomically rewritten empty (``tmp`` + ``os.replace``), so
the file stays bounded by the churn since the last checkpoint rather
than the daemon's lifetime.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

_CRC_BYTES = 16


def _line_checksum(seq: int, record: Dict[str, Any]) -> str:
    canonical = json.dumps({"seq": seq, "record": record},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(
        canonical.encode("utf-8")).hexdigest()[:_CRC_BYTES]


class Journal:
    """Append-only JSONL journal with per-line checksums.

    Single-writer by design (the daemon holds the state-dir lock);
    readers only ever see complete, verified lines via
    :meth:`replay`.
    """

    def __init__(self, path: Union[str, Path],
                 fault_plan: Any = None) -> None:
        self.path = Path(path)
        self.fault_plan = fault_plan
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None

    # -- handle management ---------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- writing --------------------------------------------------------

    def append(self, seq: int, record: Dict[str, Any]) -> None:
        """Durably append one record: write, flush, fsync.

        Only after this returns may the caller acknowledge the
        mutation to a client — that ordering is the whole write-ahead
        contract.
        """
        line = json.dumps({"seq": seq, "record": record,
                           "crc": _line_checksum(seq, record)},
                          sort_keys=True, separators=(",", ":"))
        handle = self._open()
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        corrupt = getattr(self.fault_plan, "maybe_corrupt_journal",
                          None)
        if corrupt is not None:
            # The chaos site rewrites the file behind the handle's
            # back; drop the handle so the next append reopens at the
            # real end of file.
            if corrupt(self.path, str(seq)):
                self.close()

    def rewrite(self, records: List[Tuple[int, Dict[str, Any]]]) -> None:
        """Atomically replace the journal's contents (compaction).

        Readers and a crashed-midway daemon see either the old journal
        or the new one, never a mix: the new content lands in a temp
        file first and is moved into place with ``os.replace``.
        """
        self.close()
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for seq, record in records:
                handle.write(json.dumps(
                    {"seq": seq, "record": record,
                     "crc": _line_checksum(seq, record)},
                    sort_keys=True, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # -- reading --------------------------------------------------------

    def replay(self, after_seq: int = 0
               ) -> Tuple[List[Tuple[int, Dict[str, Any]]], int]:
        """Every verified ``(seq, record)`` with ``seq > after_seq``,
        in file order, plus the count of dropped (torn or corrupt)
        lines."""
        if not self.path.exists():
            return [], 0
        records: List[Tuple[int, Dict[str, Any]]] = []
        dropped = 0
        with open(self.path, "r", encoding="utf-8",
                  errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                except json.JSONDecodeError:
                    dropped += 1
                    continue
                if not isinstance(document, dict):
                    dropped += 1
                    continue
                seq = document.get("seq")
                record = document.get("record")
                crc = document.get("crc")
                if (not isinstance(seq, int)
                        or not isinstance(record, dict)
                        or crc != _line_checksum(seq, record)):
                    dropped += 1
                    continue
                if seq > after_seq:
                    records.append((seq, record))
        return records, dropped

    def max_seq(self) -> int:
        """The highest verified sequence number on disk (0 if none)."""
        records, _ = self.replay()
        return max((seq for seq, _ in records), default=0)


__all__ = ["Journal"]
