"""The simulation service daemon: ``repro serve``.

An asyncio Unix-socket server in front of the durable
:class:`~repro.service.jobs.JobStore`.  The contract, in order of
importance:

* **Durability** — every acknowledged mutation is journaled before the
  reply leaves the socket; ``kill -9`` then restart replays to exactly
  the acknowledged state, and running jobs whose lease went stale are
  requeued (:meth:`JobStore.recover`).
* **Idempotency** — submissions are content-addressed; a client
  retrying after a dropped connection (the ``submit-drop`` chaos site
  simulates the ack getting lost *after* the journal write) lands on
  the same job.
* **Admission control** — a bounded queue and a per-client in-flight
  cap; over-limit submissions are rejected with a ``retry_after`` hint
  instead of queueing unboundedly.  Deduplicating resubmissions bypass
  the caps (they add no work).
* **Graceful drain** — SIGTERM/SIGINT stops admissions, lets running
  jobs finish until ``drain_deadline``, requeues the rest, writes a
  final checkpoint and removes the socket.

One daemon per state directory, enforced with an exclusive
``daemon.lock`` flock.  Job lifecycle flows through
:mod:`repro.obs.events` (``service.job_*``), and an in-process event
sink fans those out to ``repro tail`` connections.
"""

from __future__ import annotations

import asyncio
import fcntl
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Union

from repro.errors import ServiceError
from repro.faults import plan_from_env
from repro.obs import events as obs_events
from repro.obs import flightrec, telemetry
from repro.obs.exposition import aggregate_run_dir, render_openmetrics
from repro.obs.metrics import get_registry
from repro.obs.telemetry import TraceContext
from repro.obs.tracing import trace_span
from repro.service import protocol
from repro.service.jobs import JobStore, TERMINAL_STATES
from repro.service.runner import run_job

#: Passed to ``ServiceConfig.fault_plan`` consumers meaning "consult
#: the environment" (same convention as the dse engine).
_ENV_PLAN = object()


def default_socket_path(state_dir: Union[str, Path]) -> Path:
    return Path(state_dir) / "service.sock"


@dataclass
class ServiceConfig:
    """Everything tunable about one daemon."""

    state_dir: Path
    socket_path: Optional[Path] = None
    workers: int = 1
    max_queue_depth: int = 32
    max_client_inflight: int = 4
    lease_ttl: float = 15.0
    heartbeat_interval: float = 2.0
    checkpoint_every: int = 64
    drain_deadline: float = 10.0
    retry_after: float = 0.5

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        if self.socket_path is None:
            self.socket_path = default_socket_path(self.state_dir)
        else:
            self.socket_path = Path(self.socket_path)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_client_inflight < 1:
            raise ValueError("max_client_inflight must be >= 1")


@dataclass(eq=False)
class _Tail:
    """One ``tail`` connection's subscription."""

    queue: "asyncio.Queue[Optional[Dict[str, Any]]]"
    job_id: Optional[str] = None
    delivered: int = 0
    dropped: int = 0


class Daemon:
    """The service: durable store + asyncio server + worker tasks."""

    def __init__(self, config: ServiceConfig,
                 fault_plan: Any = _ENV_PLAN,
                 job_runner: Callable[[Dict[str, Any]],
                                      Dict[str, Any]] = run_job) -> None:
        self.config = config
        if fault_plan is _ENV_PLAN:
            fault_plan = plan_from_env()
        self.fault_plan = fault_plan
        self.job_runner = job_runner
        self.store = JobStore(config.state_dir, fault_plan=fault_plan,
                              checkpoint_every=config.checkpoint_every,
                              lease_ttl=config.lease_ttl)
        self.draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._lock_handle = None
        self._wake: Optional[asyncio.Event] = None
        self._stop: Optional[asyncio.Event] = None
        self._workers: List[asyncio.Task] = []
        self._active: Set[str] = set()
        self._tails: Set[_Tail] = set()
        self._waiters: Dict[str, List[asyncio.Future]] = {}
        self._sink_installed = False

    # -- lifecycle -------------------------------------------------------

    def _acquire_lock(self) -> None:
        self.config.state_dir.mkdir(parents=True, exist_ok=True)
        handle = open(self.config.state_dir / "daemon.lock", "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.seek(0)
            holder = handle.read().strip() or "unknown pid"
            handle.close()
            raise ServiceError(
                f"another daemon (pid {holder}) already serves "
                f"{self.config.state_dir}") from None
        handle.truncate(0)
        handle.seek(0)
        handle.write(str(os.getpid()))
        handle.flush()
        self._lock_handle = handle

    def _release_lock(self) -> None:
        if self._lock_handle is not None:
            try:
                fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
            finally:
                self._lock_handle.close()
                self._lock_handle = None

    async def start(self) -> None:
        """Lock the state dir, recover the store, bind the socket and
        launch the workers."""
        self._acquire_lock()
        # The daemon is a telemetry root: it mints its own trace
        # context (jobs override it with the submitter's), writes
        # trace/metrics files under state_dir/telemetry, and keeps a
        # flight recorder so a daemon crash leaves its last moments.
        # Signals stay with the asyncio handlers (request_stop dumps).
        telemetry_dir = self.config.state_dir / "telemetry"
        telemetry.start(trace_dir=telemetry_dir)
        flightrec.install(telemetry_dir, signals=False)
        report = self.store.recover()
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stop = asyncio.Event()
        if self.store.queue_depth():
            self._wake.set()
        # The flock guarantees no live daemon owns this socket; a
        # leftover path is debris from a kill -9.
        self.config.socket_path.unlink(missing_ok=True)
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.config.socket_path))
        obs_events.add_sink(self._event_sink)
        self._sink_installed = True
        for index in range(self.config.workers):
            self._workers.append(
                self._loop.create_task(self._worker(index)))
        obs_events.emit(
            "service.started",
            msg=(f"service listening on {self.config.socket_path} "
                 f"({report.jobs} job(s) recovered, "
                 f"{len(report.requeued)} requeued)"),
            socket=str(self.config.socket_path), pid=os.getpid(),
            **report.to_payload())

    def _install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self.request_stop, signal.Signals(signum).name)
            except (NotImplementedError, RuntimeError):
                pass

    def request_stop(self, reason: str = "request") -> None:
        """Begin the drain (idempotent; signal-handler safe)."""
        if self._stop is not None and not self._stop.is_set():
            self.draining = True
            obs_events.emit("service.draining", level="warning",
                            msg=f"drain requested ({reason}); new "
                                f"submissions are rejected",
                            reason=reason)
            if reason in ("SIGTERM", "SIGINT"):
                flightrec.dump(f"drain-{reason.lower()}")
            self._stop.set()
            self._wake.set()

    async def run(self) -> int:
        """``repro serve``: start, serve until a stop signal, drain."""
        await self.start()
        self._install_signal_handlers()
        try:
            await self._stop.wait()
        finally:
            await self.shutdown()
        return 0

    async def shutdown(self) -> None:
        """Drain: stop admissions, give running jobs until the
        deadline, requeue the rest, checkpoint, unbind."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + self.config.drain_deadline
        while self._active and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        # Snapshot before cancelling: a cancelled worker's cleanup
        # clears its _active entry without touching the store.
        abandoned = sorted(self._active)
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._workers = []
        # Jobs still marked running past the deadline go back on the
        # queue: the next daemon (or this state dir's next recovery)
        # owes them a fresh attempt.  The abandoned thread may still
        # be sleeping in the job code, but it is a daemon thread and
        # its results can no longer land: the requeue entry owns the
        # work now.
        for job_id in abandoned:
            job = self.store.get(job_id)
            if job is not None and job.state == "running":
                self.store.requeue(job_id, reason="drain-deadline")
        self._active.clear()
        self.store.checkpoint()
        self.store.journal.close()
        if self._sink_installed:
            obs_events.remove_sink(self._event_sink)
            self._sink_installed = False
        for tail in list(self._tails):
            tail.queue.put_nowait(None)
        self.config.socket_path.unlink(missing_ok=True)
        self._release_lock()
        telemetry.flush_metrics(force=True)
        obs_events.emit("service.stopped",
                        msg="service stopped (state checkpointed)",
                        counts=self.store.counts())
        # Graceful exits don't need the black box; tear telemetry down
        # so a host process (tests) returns to its pre-daemon state.
        flightrec.uninstall()
        telemetry.reset()

    # -- event fan-out ---------------------------------------------------

    def _event_sink(self, payload: Dict[str, Any]) -> None:
        """obs sink: runs on the emitting thread; hop to the loop."""
        if self._loop is None or self._loop.is_closed():
            return
        if "job" not in payload and \
                not str(payload.get("event", "")).startswith("service."):
            return
        try:
            self._loop.call_soon_threadsafe(self._broadcast, payload)
        except RuntimeError:
            pass

    def _broadcast(self, payload: Dict[str, Any]) -> None:
        job_id = payload.get("job")
        for tail in list(self._tails):
            if tail.job_id is not None and job_id != tail.job_id:
                continue
            try:
                tail.queue.put_nowait(payload)
                tail.delivered += 1
            except asyncio.QueueFull:
                tail.dropped += 1

    def _resolve_waiters(self, job_id: str) -> None:
        job = self.store.get(job_id)
        for future in self._waiters.pop(job_id, []):
            if not future.done():
                future.set_result(job.summary() if job else None)

    # -- the work loop ---------------------------------------------------

    def _claim_next(self) -> Optional[str]:
        for job in self.store.queued_jobs():
            if job.job_id not in self._active:
                self._active.add(job.job_id)
                return job.job_id
        return None

    async def _worker(self, index: int) -> None:
        while True:
            if self._stop.is_set():
                return
            job_id = self._claim_next()
            if job_id is None:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(),
                                           timeout=0.5)
                except asyncio.TimeoutError:
                    pass
                continue
            try:
                await self._execute(job_id, index)
            finally:
                self._active.discard(job_id)

    async def _execute(self, job_id: str, worker: int) -> None:
        job = self.store.mark_running(job_id)
        if job is None:
            # The job left "queued" between the claim and now (a
            # cancel raced the worker): drop the claim on the floor —
            # the cancel already released the client's in-flight slot
            # and any waiters.
            return
        obs_events.emit("service.job_started",
                        msg=(f"job {job_id} started "
                             f"(attempt {job.attempts}, "
                             f"worker {worker})"),
                        job=job_id, attempt=job.attempts,
                        kind=job.payload.get("kind"), worker=worker)
        registry = get_registry()
        registry.counter("service.jobs_started").inc()
        heartbeat = self._loop.create_task(self._heartbeat(job_id))
        started = time.monotonic()
        try:
            result = await self._run_in_thread(dict(job.payload),
                                               job_id=job_id,
                                               trace=job.trace)
        except Exception as exc:  # noqa: BLE001 — job code is arbitrary
            job = self.store.mark_failed(job_id, {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=8),
            })
            registry.counter("service.jobs_failed").inc()
            obs_events.emit("service.job_failed", level="warning",
                            msg=(f"job {job_id} {job.state}: "
                                 f"{type(exc).__name__}: {exc}"),
                            job=job_id, state=job.state,
                            error=type(exc).__name__)
        else:
            job = self.store.mark_done(job_id, result)
            registry.counter("service.jobs_done").inc()
            registry.histogram("service.job_seconds").observe(
                time.monotonic() - started)
            obs_events.emit("service.job_done",
                            msg=(f"job {job_id} {job.state} in "
                                 f"{time.monotonic() - started:.2f}s"),
                            job=job_id, state=job.state)
        finally:
            heartbeat.cancel()
            try:
                await heartbeat
            except asyncio.CancelledError:
                pass
        self._resolve_waiters(job_id)

    def _run_in_thread(self, payload: Dict[str, Any],
                       job_id: Optional[str] = None,
                       trace: Optional[Dict[str, Any]] = None
                       ) -> "asyncio.Future":
        """Run the job on a *daemon* thread (not the default executor):
        a drained daemon must exit at the deadline even when an
        abandoned job is still sleeping in a syscall — the requeue
        entry, not the thread, owns that work now.

        The thread adopts the submitter's trace context (falling back
        to the daemon's own) so the job span — and every sweep/unit
        span it spawns, in this or any pool process — stitches into
        the client's distributed trace.
        """
        future = self._loop.create_future()
        context = TraceContext.from_wire(trace) or telemetry.current_context()

        def deliver(setter, value):
            if not future.done():
                setter(value)

        def work():
            try:
                with telemetry.activate(context):
                    with trace_span("job", job=job_id,
                                    kind=payload.get("kind")):
                        result = self.job_runner(payload)
            except BaseException as exc:  # noqa: BLE001
                outcome = (future.set_exception, exc)
            else:
                outcome = (future.set_result, result)
            try:
                self._loop.call_soon_threadsafe(deliver, *outcome)
            except RuntimeError:
                pass  # loop already closed; the job was requeued

        threading.Thread(target=work, daemon=True,
                         name="repro-service-job").start()
        return future

    async def _heartbeat(self, job_id: str) -> None:
        beat = 0
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            beat += 1
            try:
                self.store.write_heartbeat(job_id, beat=beat)
            except OSError:
                pass

    # -- the protocol ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError,
                        ValueError):
                    break
                if not line:
                    break
                if len(line) > protocol.MAX_LINE:
                    break
                request = protocol.decode(line)
                if request is None:
                    writer.write(protocol.encode(protocol.reject(
                        "bad-request", "unparseable request line")))
                    await writer.drain()
                    continue
                done = await self._handle_request(request, writer)
                if done:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, request: Dict[str, Any],
                              writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns True when the connection should
        close (streaming commands own the connection)."""
        cmd = request.get("cmd")
        if cmd == "ping":
            response = protocol.ok(protocol=protocol.PROTOCOL,
                                   pid=os.getpid(),
                                   draining=self.draining)
        elif cmd == "status":
            response = protocol.ok(
                protocol=protocol.PROTOCOL, pid=os.getpid(),
                draining=self.draining, counts=self.store.counts(),
                queue_depth=self.store.queue_depth(),
                active=sorted(self._active),
                workers=self.config.workers)
        elif cmd == "metrics":
            response = self._handle_metrics()
        elif cmd == "health":
            response = self._handle_health()
        elif cmd == "submit":
            return await self._handle_submit(request, writer)
        elif cmd == "jobs":
            jobs = [job.summary() for job in sorted(
                self.store.jobs.values(),
                key=lambda job: (job.created, job.job_id))]
            state = request.get("state")
            if state:
                jobs = [job for job in jobs if job["state"] == state]
            response = protocol.ok(jobs=jobs)
        elif cmd == "cancel":
            disposition = self.store.cancel(str(request.get("job", "")))
            if disposition is None:
                response = protocol.reject(
                    "unknown-job", f"no such job {request.get('job')!r}")
            else:
                if disposition == "cancelled":
                    obs_events.emit(
                        "service.job_cancelled",
                        msg=f"job {request.get('job')} cancelled",
                        job=request.get("job"))
                    self._resolve_waiters(str(request.get("job")))
                response = protocol.ok(job=request.get("job"),
                                       disposition=disposition)
        elif cmd == "wait":
            response = await self._handle_wait(request)
        elif cmd == "tail":
            await self._handle_tail(request, writer)
            return True
        else:
            response = protocol.reject("bad-request",
                                       f"unknown command {cmd!r}")
        writer.write(protocol.encode(response))
        await writer.drain()
        return False

    def _handle_metrics(self) -> Dict[str, Any]:
        """The ``metrics`` verb: fleet-aggregated counters/histograms.

        Flushes the daemon's own registry into the telemetry dir, then
        merges every per-process ``metrics-<pid>.json`` found there —
        pool workers included — so one socket round-trip answers for
        the whole fleet (``repro top``'s refresh, or an OpenMetrics
        scrape via ``repro top --openmetrics``).
        """
        telemetry.flush_metrics(force=True)
        trace_dir = telemetry.trace_directory()
        if trace_dir is not None:
            snapshot = aggregate_run_dir(trace_dir)
        else:
            snapshot = get_registry().snapshot()
        return protocol.ok(
            metrics=snapshot,
            openmetrics=render_openmetrics(snapshot),
            counts=self.store.counts(),
            queue_depth=self.store.queue_depth(),
            active=sorted(self._active),
            workers=self.config.workers,
            draining=self.draining,
            health=self._health_snapshot(),
            pid=os.getpid())

    def _health_snapshot(self) -> Dict[str, Any]:
        """The daemon process's degradation-ladder state, RSS and
        configured health policy — embedded in every ``metrics`` reply
        (for ``repro top``'s panel) and served alone by ``health``."""
        from repro.errors import HealthSpecError
        from repro.health import HealthPolicy, get_ladder, rss_mb

        try:
            policy = HealthPolicy.from_env().to_payload()
        except HealthSpecError:
            policy = None
        return {"ladder": get_ladder().snapshot(),
                "rss_mb": rss_mb(),
                "policy": policy}

    def _handle_health(self) -> Dict[str, Any]:
        return protocol.ok(health=self._health_snapshot(),
                           draining=self.draining, pid=os.getpid())

    async def _handle_submit(self, request: Dict[str, Any],
                             writer: asyncio.StreamWriter) -> bool:
        payload = request.get("payload")
        client = str(request.get("client") or "anonymous")
        if not isinstance(payload, dict) or not payload.get("kind"):
            writer.write(protocol.encode(protocol.reject(
                "bad-request", "submit needs a payload with a 'kind'")))
            await writer.drain()
            return False
        from repro.service.jobs import job_key

        key = job_key(payload)
        existing = self.store.get(key[:12])
        revives = existing is not None and \
            existing.state in ("failed", "cancelled")
        adds_work = existing is None or revives
        if adds_work:
            response = self._admission_check(client)
            if response is not None:
                get_registry().counter("service.rejected").inc()
                writer.write(protocol.encode(response))
                await writer.drain()
                return False
        trace = request.get("trace")
        job, created = self.store.submit(
            payload, client,
            trace=trace if isinstance(trace, dict) else None)
        if created or revives:
            self._wake.set()
        obs_events.emit(
            "service.job_submitted",
            msg=(f"job {job.job_id} "
                 + ("submitted" if created
                    else "revived" if revives
                    else f"deduplicated ({job.state})")
                 + f" by {client}"),
            job=job.job_id, client=client, created=created,
            state=job.state, kind=payload.get("kind"))
        # The submit-drop chaos site models the ack vanishing *after*
        # the journal write: the work is admitted, the client never
        # hears — exactly the window where a naive retry would
        # double-enqueue.
        drops = getattr(self.fault_plan, "drops_submit", None)
        if drops is not None and created and drops(job.job_id):
            obs_events.emit("service.submit_dropped", level="warning",
                            msg=(f"chaos: dropping submit ack for "
                                 f"job {job.job_id}"),
                            job=job.job_id)
            return True  # close without replying
        writer.write(protocol.encode(protocol.ok(
            job=job.summary(), created=created)))
        await writer.drain()
        return False

    def _admission_check(self,
                         client: str) -> Optional[Dict[str, Any]]:
        """The rejection to send, or None to admit."""
        if self.draining:
            return protocol.reject(
                "draining", "daemon is draining; resubmit elsewhere "
                "or after restart",
                retry_after=self.config.retry_after * 4)
        depth = self.store.queue_depth()
        if depth >= self.config.max_queue_depth:
            return protocol.reject(
                "queue-full",
                f"queue depth {depth} at the "
                f"{self.config.max_queue_depth} cap",
                retry_after=self.config.retry_after)
        inflight = self.store.client_inflight(client)
        if inflight >= self.config.max_client_inflight:
            return protocol.reject(
                "client-cap",
                f"client {client!r} already has {inflight} job(s) "
                f"in flight (cap {self.config.max_client_inflight})",
                retry_after=self.config.retry_after)
        return None

    async def _handle_wait(self,
                           request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = str(request.get("job", ""))
        job = self.store.get(job_id)
        if job is None:
            return protocol.reject("unknown-job",
                                   f"no such job {job_id!r}")
        if job.state in TERMINAL_STATES:
            return protocol.ok(done=True, job=job.summary())
        future = self._loop.create_future()
        self._waiters.setdefault(job_id, []).append(future)
        timeout = request.get("timeout")
        try:
            summary = await asyncio.wait_for(
                future, timeout=float(timeout) if timeout else None)
        except asyncio.TimeoutError:
            job = self.store.get(job_id)
            return protocol.ok(done=False,
                               job=job.summary() if job else None)
        finally:
            pending = self._waiters.get(job_id)
            if pending and future in pending:
                pending.remove(future)
        return protocol.ok(done=True, job=summary)

    async def _handle_tail(self, request: Dict[str, Any],
                           writer: asyncio.StreamWriter) -> None:
        """Stream job lifecycle events as JSON lines until the client
        hangs up, the daemon drains, or the tailed job finishes."""
        job_id = request.get("job")
        tail = _Tail(queue=asyncio.Queue(maxsize=1024),
                     job_id=str(job_id) if job_id else None)
        self._tails.add(tail)
        writer.write(protocol.encode(protocol.ok(tailing=True,
                                                 job=tail.job_id)))
        try:
            await writer.drain()
            if tail.job_id:
                job = self.store.get(tail.job_id)
                if job is not None and job.state in TERMINAL_STATES:
                    writer.write(protocol.encode(
                        {"event": "service.job_already_finished",
                         "job": tail.job_id, "state": job.state}))
                    await writer.drain()
                    return
            while True:
                payload = await tail.queue.get()
                if payload is None:
                    return
                writer.write(protocol.encode(payload))
                await writer.drain()
                if tail.job_id and payload.get("job") == tail.job_id \
                        and payload.get("event") in (
                            "service.job_done", "service.job_failed",
                            "service.job_cancelled"):
                    return
        except (ConnectionError, OSError):
            return
        finally:
            self._tails.discard(tail)
            try:
                writer.write(protocol.encode({"tail_end": True,
                                              "dropped": tail.dropped}))
                await writer.drain()
            except (ConnectionError, OSError):
                pass


def serve(config: ServiceConfig, fault_plan: Any = _ENV_PLAN,
          job_runner: Callable[[Dict[str, Any]],
                               Dict[str, Any]] = run_job) -> int:
    """Blocking entry point for ``repro serve``."""
    daemon = Daemon(config, fault_plan=fault_plan,
                    job_runner=job_runner)
    return asyncio.run(daemon.run())


__all__ = ["Daemon", "ServiceConfig", "default_socket_path", "serve"]
