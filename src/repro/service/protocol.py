"""Wire protocol for the simulation service: JSON lines over a Unix
socket.

One request or response per line, UTF-8 JSON, ``\\n``-terminated.
Requests carry ``cmd`` plus command-specific fields; responses carry
``ok`` plus either the result or ``error``/``reason``/``retry_after``.
Streaming commands (``tail``) send many lines and finish with a
``{"tail_end": true}`` marker.  The format is deliberately trivial:
any language — or ``nc -U`` — can speak it, and a torn line (daemon
killed mid-write) fails JSON parsing instead of being half-believed.

Protocol 2 additions: ``submit`` accepts an optional ``trace`` field
(a :meth:`repro.obs.telemetry.TraceContext.to_wire` payload, excluded
from the idempotency hash) so jobs stitch into the submitting client's
distributed trace, and a ``metrics`` verb returns the daemon's
fleet-aggregated registry snapshot plus its OpenMetrics rendering
(the feed for ``repro top`` and scrapers).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Protocol revision, echoed by ``ping`` so clients can detect skew.
PROTOCOL = 2

#: A request/response line larger than this is a protocol violation
#: (or an attack on the daemon's memory); the connection is dropped.
MAX_LINE = 1 << 20


def encode(message: Dict[str, Any]) -> bytes:
    """One wire line for *message* (compact JSON + newline)."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> Optional[Dict[str, Any]]:
    """The message on *line*, or None for blank/torn/foreign input."""
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        return None
    try:
        message = json.loads(text)
    except json.JSONDecodeError:
        return None
    return message if isinstance(message, dict) else None


def ok(**fields: Any) -> Dict[str, Any]:
    return {"ok": True, **fields}


def reject(reason: str, message: str,
           retry_after: Optional[float] = None) -> Dict[str, Any]:
    """An admission-control rejection: *reason* is machine-readable
    (``queue-full``, ``client-cap``, ``draining``), *retry_after* the
    daemon's backoff hint in seconds."""
    response: Dict[str, Any] = {"ok": False, "reason": reason,
                                "error": message}
    if retry_after is not None:
        response["retry_after"] = retry_after
    return response
