"""Durable job store: journaled state machine + leases.

Jobs are the service's unit of work — one submitted sweep each — and
their lifecycle is ``queued → running → done | failed | cancelled``,
with ``running → queued`` requeues when a daemon incarnation dies
mid-job.  Durability is write-ahead: every mutation journals a full
job snapshot (:mod:`repro.service.journal`) before it is acknowledged,
and a periodic atomic checkpoint (``checkpoint.json``, checksummed via
:mod:`repro.runner.checkpoint`) bounds replay time; recovery loads the
checkpoint, replays the journal tail, then requeues every ``running``
job whose lease is dead or stale — the service-level twin of the
PR 5 supervisor's leased in-flight points.

**Idempotent submission**: a job's identity is the SHA-256 content
hash of its submission payload (the same canonical-JSON scheme as
:func:`repro.dse.cache.result_key`), so a client retrying after a
dropped connection lands on the existing job instead of enqueueing a
duplicate, and re-submitting an already-completed spec short-circuits
to the finished job without touching the queue.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ArtifactCorruptError
from repro.obs import events as obs_events
from repro.obs.metrics import get_registry
from repro.runner.checkpoint import read_json_checked, write_json_atomic
from repro.service.journal import Journal
from repro.dse.space import canonical_json

#: Checkpoint schema version.
STORE_FORMAT = 1

#: Every state a job can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States from which a job never moves again.
TERMINAL_STATES = ("done", "failed", "cancelled")


def job_key(payload: Dict[str, Any]) -> str:
    """The content address of one submission: hash of its canonical
    JSON, so field order and whitespace cannot split identical jobs."""
    return hashlib.sha256(canonical_json(
        {"format": STORE_FORMAT, "job": payload}
    ).encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One submission's full state."""

    job_id: str
    key: str
    payload: Dict[str, Any]
    client: str
    state: str = "queued"
    created: float = 0.0
    updated: float = 0.0
    attempts: int = 0
    requeues: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cancel_requested: bool = False
    # Submitter's trace context (TraceContext.to_wire).  Deliberately
    # OUTSIDE job_key: two clients submitting the same work from
    # different traces must still dedup onto one job.
    trace: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id, "key": self.key,
            "payload": self.payload, "client": self.client,
            "state": self.state, "created": self.created,
            "updated": self.updated, "attempts": self.attempts,
            "requeues": self.requeues, "result": self.result,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "trace": self.trace,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Job":
        return cls(**{key: payload.get(key) for key in (
            "job_id", "key", "payload", "client", "state", "created",
            "updated", "attempts", "requeues", "result", "error",
            "cancel_requested", "trace")})

    def summary(self) -> Dict[str, Any]:
        """The listing row ``repro jobs`` renders."""
        return {
            "job_id": self.job_id, "state": self.state,
            "client": self.client,
            "kind": self.payload.get("kind"),
            "benchmark": self.payload.get("benchmark"),
            "created": self.created, "updated": self.updated,
            "attempts": self.attempts, "requeues": self.requeues,
            "cancel_requested": self.cancel_requested,
            "error": (self.error or {}).get("message")
            if self.error else None,
        }


@dataclass
class RecoveryReport:
    """What :meth:`JobStore.recover` found and did."""

    jobs: int = 0
    requeued: List[str] = field(default_factory=list)
    dropped_lines: int = 0
    checkpoint_loaded: bool = False
    checkpoint_corrupt: bool = False

    def to_payload(self) -> Dict[str, Any]:
        return {"jobs": self.jobs, "requeued": list(self.requeued),
                "dropped_lines": self.dropped_lines,
                "checkpoint_loaded": self.checkpoint_loaded,
                "checkpoint_corrupt": self.checkpoint_corrupt}


class JobStore:
    """Journal-backed in-memory job table (single writer: the
    daemon, which holds the state directory's lock)."""

    def __init__(self, state_dir: Union[str, Path],
                 fault_plan: Any = None,
                 checkpoint_every: int = 64,
                 lease_ttl: float = 15.0) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.lease_dir = self.state_dir / "leases"
        self.lease_dir.mkdir(exist_ok=True)
        self.fault_plan = fault_plan
        self.checkpoint_every = checkpoint_every
        self.lease_ttl = lease_ttl
        self.journal = Journal(self.state_dir / "journal.jsonl",
                               fault_plan=fault_plan)
        self.jobs: Dict[str, Job] = {}
        self.seq = 0
        self._mutations_since_checkpoint = 0

    # -- checkpoint ------------------------------------------------------

    @property
    def checkpoint_path(self) -> Path:
        return self.state_dir / "checkpoint.json"

    def checkpoint(self) -> None:
        """Absorb the journal into an atomic checksummed snapshot,
        then truncate the journal."""
        write_json_atomic(self.checkpoint_path, {
            "format": STORE_FORMAT,
            "seq": self.seq,
            "jobs": {job_id: job.to_payload()
                     for job_id, job in self.jobs.items()},
        })
        self.journal.rewrite([])
        self._mutations_since_checkpoint = 0
        get_registry().counter("service.checkpoints").inc()

    # -- recovery --------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild state from checkpoint + journal; requeue orphaned
        running jobs.  Call exactly once, before serving."""
        report = RecoveryReport()
        self.jobs = {}
        self.seq = 0
        if self.checkpoint_path.exists():
            try:
                snapshot = read_json_checked(self.checkpoint_path)
                self.seq = int(snapshot.get("seq", 0))
                for job_id, payload in snapshot.get("jobs",
                                                    {}).items():
                    self.jobs[job_id] = Job.from_payload(payload)
                report.checkpoint_loaded = True
            except (ArtifactCorruptError, OSError, TypeError,
                    ValueError):
                # A torn checkpoint is recoverable as long as the
                # journal survives: fall back to a full replay.
                report.checkpoint_corrupt = True
                self.jobs = {}
                self.seq = 0
        records, report.dropped_lines = self.journal.replay(
            after_seq=self.seq)
        for seq, record in records:
            self.seq = max(self.seq, seq)
            payload = record.get("job")
            if isinstance(payload, dict) and payload.get("job_id"):
                self.jobs[payload["job_id"]] = Job.from_payload(payload)
        for job in list(self.jobs.values()):
            if job.state == "running" and self._lease_is_stale(job):
                self._requeue(job, reason="stale-lease")
                report.requeued.append(job.job_id)
        report.jobs = len(self.jobs)
        if report.dropped_lines or report.requeued \
                or report.checkpoint_corrupt:
            obs_events.emit(
                "service.recovered", level="warning",
                msg=(f"job store recovered: {report.jobs} job(s), "
                     f"{len(report.requeued)} requeued, "
                     f"{report.dropped_lines} torn journal line(s) "
                     f"dropped"
                     + (", checkpoint was corrupt (full replay)"
                        if report.checkpoint_corrupt else "")),
                **report.to_payload())
        return report

    # -- leases ----------------------------------------------------------

    def _lease_path(self, job_id: str) -> Path:
        return self.lease_dir / (job_id + ".json")

    def write_heartbeat(self, job_id: str, beat: int = 0) -> None:
        """Refresh the running job's lease; the ``heartbeat-loss``
        chaos site can swallow individual beats (``beat`` is the
        deterministic decision attempt)."""
        if beat:
            loses = getattr(self.fault_plan, "loses_heartbeat", None)
            if loses is not None and loses(job_id, beat):
                return
        path = self._lease_path(job_id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps({"pid": os.getpid(),
                                   "ts": time.time()}))
        os.replace(tmp, path)

    def clear_lease(self, job_id: str) -> None:
        self._lease_path(job_id).unlink(missing_ok=True)

    def _lease_is_stale(self, job: Job) -> bool:
        """Whether a running job's lease belongs to a dead or silent
        owner.  A missing/unreadable lease is stale (the owner died
        before its first heartbeat landed); so is a dead pid or a
        heartbeat older than ``lease_ttl``."""
        try:
            record = json.loads(self._lease_path(job.job_id).read_text())
            pid = int(record["pid"])
            ts = float(record["ts"])
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError):
            return True
        if time.time() - ts > self.lease_ttl:
            return True
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            pass  # alive, owned by someone else
        return False

    # -- journaled mutations ---------------------------------------------

    def _commit(self, job: Job) -> None:
        """Write-ahead: journal the new snapshot, then adopt it."""
        job.updated = time.time()
        self.seq += 1
        self.journal.append(self.seq, {"job": job.to_payload()})
        self.jobs[job.job_id] = job
        self._mutations_since_checkpoint += 1
        if self._mutations_since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    def submit(self, payload: Dict[str, Any], client: str,
               trace: Optional[Dict[str, Any]] = None
               ) -> Tuple[Job, bool]:
        """Admit one submission; returns ``(job, created)``.

        Identical payloads dedup onto the existing job: in-flight
        submissions return it untouched, finished ``done`` jobs
        short-circuit (their result is already durable), and
        ``failed``/``cancelled`` jobs are revived back onto the queue.
        *trace* (the submitter's wire trace context) rides along
        without entering the identity hash.
        """
        key = job_key(payload)
        job_id = key[:12]
        existing = self.jobs.get(job_id)
        if existing is not None:
            if existing.state in ("queued", "running", "done"):
                return existing, False
            # failed/cancelled: revive the same identity.
            existing.state = "queued"
            existing.error = None
            existing.result = None
            existing.cancel_requested = False
            if trace:
                existing.trace = dict(trace)
            self._commit(existing)
            return existing, False
        job = Job(job_id=job_id, key=key, payload=dict(payload),
                  client=client, created=time.time(),
                  trace=dict(trace) if trace else None)
        self._commit(job)
        return job, True

    def mark_running(self, job_id: str) -> Optional[Job]:
        """Move a claimed job to ``running``; returns None when the
        job is no longer queued — e.g. it was cancelled between the
        worker's claim and this call — in which case the claim must be
        abandoned, never resurrected into a running state (that would
        both run cancelled work and re-occupy the client's in-flight
        cap the cancel just released)."""
        job = self.jobs[job_id]
        if job.state != "queued":
            return None
        job.state = "running"
        job.attempts += 1
        self._commit(job)
        self.write_heartbeat(job_id)
        return job

    def mark_done(self, job_id: str,
                  result: Optional[Dict[str, Any]]) -> Job:
        job = self.jobs[job_id]
        if job.cancel_requested:
            job.state = "cancelled"
        else:
            job.state = "done"
            job.result = result
        job.error = None
        self._commit(job)
        self.clear_lease(job_id)
        return job

    def mark_failed(self, job_id: str,
                    error: Dict[str, Any]) -> Job:
        job = self.jobs[job_id]
        job.state = "cancelled" if job.cancel_requested else "failed"
        job.error = error
        self._commit(job)
        self.clear_lease(job_id)
        return job

    def _requeue(self, job: Job, reason: str) -> None:
        job.state = "queued"
        job.requeues += 1
        self._commit(job)
        self.clear_lease(job.job_id)
        get_registry().counter("service.requeued").inc()
        obs_events.emit("service.job_requeued", level="warning",
                        msg=(f"job {job.job_id} requeued "
                             f"({reason})"),
                        job=job.job_id, reason=reason)

    def requeue(self, job_id: str, reason: str) -> Job:
        """Push a running job back onto the queue (drain deadline,
        recovery)."""
        job = self.jobs[job_id]
        self._requeue(job, reason)
        return job

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel *job_id*; returns the resulting disposition
        (``cancelled`` for queued jobs, ``cancel-requested`` for
        running ones, the terminal state for finished ones, None for
        unknown ids)."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state == "queued":
            job.state = "cancelled"
            self._commit(job)
            return "cancelled"
        if job.state == "running":
            if not job.cancel_requested:
                job.cancel_requested = True
                self._commit(job)
            return "cancel-requested"
        return job.state

    # -- queries ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def queued_jobs(self) -> List[Job]:
        """FIFO by creation time."""
        return sorted((job for job in self.jobs.values()
                       if job.state == "queued"),
                      key=lambda job: (job.created, job.job_id))

    def queue_depth(self) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.state == "queued")

    def client_inflight(self, client: str) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.client == client
                   and job.state in ("queued", "running"))

    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts


__all__ = ["JOB_STATES", "Job", "JobStore", "RecoveryReport",
           "STORE_FORMAT", "TERMINAL_STATES", "job_key"]
