"""Synchronous client for the simulation service.

One short-lived Unix-socket connection per request (``tail`` holds its
connection open).  The client owns the *retry* half of the service's
robustness contract:

* a **dropped connection** (daemon killed mid-reply, or the
  ``submit-drop`` chaos site eating the ack) is retried — safe because
  submissions are content-addressed and idempotent on the daemon side;
* an **admission-control rejection** (``queue-full``, ``client-cap``,
  ``draining``) is retried after the daemon's ``retry_after`` hint,
  stretched by jittered exponential backoff so a thundering herd of
  clients decorrelates instead of re-colliding.

Only ``bad-request``-class rejections fail immediately: retrying a
malformed request can never succeed.
"""

from __future__ import annotations

import os
import random
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.errors import JobRejectedError, ServiceError
from repro.obs import telemetry
from repro.obs.metrics import get_registry
from repro.service import protocol

#: Rejection reasons worth retrying: transient daemon-side pressure.
RETRYABLE_REASONS = frozenset({"queue-full", "client-cap", "draining"})


class ServiceClient:
    """Talks JSON lines to a :class:`~repro.service.daemon.Daemon`."""

    def __init__(self, socket_path: Union[str, Path],
                 client_id: Optional[str] = None,
                 timeout: float = 30.0,
                 max_attempts: int = 8,
                 backoff_base: float = 0.1,
                 backoff_cap: float = 5.0,
                 rng: Optional[random.Random] = None,
                 sleep=time.sleep) -> None:
        self.socket_path = Path(socket_path)
        self.client_id = client_id or f"pid-{os.getpid()}"
        self.timeout = timeout
        self.max_attempts = max(1, max_attempts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.rng = rng or random.Random()
        self.sleep = sleep

    # -- transport -------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(str(self.socket_path))
        return sock

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange; raises ConnectionError on a
        dropped or unparseable reply so the retry loop can decide."""
        with self._connect() as sock:
            sock.sendall(protocol.encode(message))
            with sock.makefile("rb") as stream:
                line = stream.readline(protocol.MAX_LINE)
        response = protocol.decode(line) if line else None
        if response is None:
            raise ConnectionError("connection dropped before a reply")
        return response

    def _backoff(self, attempt: int,
                 retry_after: Optional[float]) -> float:
        """Jittered exponential delay for retry *attempt* (0-based),
        never shorter than the daemon's ``retry_after`` hint."""
        ceiling = min(self.backoff_cap,
                      self.backoff_base * (2 ** attempt))
        delay = ceiling * (0.5 + self.rng.random() / 2)
        if retry_after:
            delay = max(delay, float(retry_after))
        return delay

    def request(self, message: Dict[str, Any],
                retry: bool = True) -> Dict[str, Any]:
        """Send *message*, retrying transient failures; returns the
        daemon's ``ok`` response or raises."""
        last_error: Optional[BaseException] = None
        attempts = self.max_attempts if retry else 1
        for attempt in range(attempts):
            try:
                response = self._roundtrip(message)
            except (ConnectionError, FileNotFoundError, OSError) as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    self.sleep(self._backoff(attempt, None))
                continue
            if response.get("ok"):
                return response
            reason = response.get("reason", "rejected")
            if reason in RETRYABLE_REASONS and attempt + 1 < attempts:
                last_error = JobRejectedError(
                    response.get("error", reason), reason=reason,
                    retry_after=response.get("retry_after") or 0.0)
                self.sleep(self._backoff(
                    attempt, response.get("retry_after")))
                continue
            raise JobRejectedError(
                response.get("error", reason), reason=reason,
                retry_after=response.get("retry_after") or 0.0)
        if isinstance(last_error, JobRejectedError):
            raise last_error
        raise ServiceError(
            f"service at {self.socket_path} unreachable after "
            f"{attempts} attempt(s): {last_error}") from last_error

    # -- commands --------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"cmd": "ping"})

    def status(self) -> Dict[str, Any]:
        return self.request({"cmd": "status"})

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job; returns ``{"job": summary, "created":
        bool}``.  Safe to call repeatedly — the daemon deduplicates by
        content hash, so a retry after a dropped ack lands on the same
        job.

        When this process has an active trace context
        (:mod:`repro.obs.telemetry`), it rides the request so the
        daemon's job span stitches into the submitter's trace —
        without entering the dedup hash.
        """
        message: Dict[str, Any] = {"cmd": "submit", "payload": payload,
                                   "client": self.client_id}
        trace = telemetry.propagation_payload()
        if trace is not None:
            message["trace"] = {"trace": trace["trace"],
                                "parent": trace.get("parent")}
        return self.request(message)

    def metrics(self) -> Dict[str, Any]:
        """The daemon's fleet-aggregated metrics (``metrics`` verb)."""
        return self.request({"cmd": "metrics"})

    def health(self) -> Dict[str, Any]:
        """The daemon's degradation-ladder state, RSS and health
        policy (``health`` verb)."""
        return self.request({"cmd": "health"})

    def jobs(self, state: Optional[str] = None) -> list:
        message: Dict[str, Any] = {"cmd": "jobs"}
        if state:
            message["state"] = state
        return self.request(message).get("jobs", [])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"cmd": "cancel", "job": job_id})

    def wait(self, job_id: str,
             timeout: Optional[float] = None,
             poll: float = 0.5) -> Dict[str, Any]:
        """Block until *job_id* finishes; returns its summary.

        Survives daemon restarts mid-wait: a dropped wait connection
        falls back to polling ``jobs`` until the job turns terminal or
        *timeout* expires.
        """
        deadline = (time.monotonic() + timeout) if timeout else None
        while True:
            remaining = None
            if deadline is not None:
                remaining = max(0.1, deadline - time.monotonic())
            try:
                response = self.request(
                    {"cmd": "wait", "job": job_id,
                     "timeout": min(remaining or 30.0, 30.0)})
                if response.get("done"):
                    return response["job"]
            except ServiceError:
                pass  # daemon away; poll until it is back
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still not finished after "
                    f"{timeout}s")
            self.sleep(poll)

    def _tail_stream(self, job_id: Optional[str]
                     ) -> Iterator[Dict[str, Any]]:
        """One tail connection; raises ConnectionError when the stream
        dies without the daemon's orderly ``tail_end`` marker."""
        message: Dict[str, Any] = {"cmd": "tail"}
        if job_id:
            message["job"] = job_id
        with self._connect() as sock:
            sock.sendall(protocol.encode(message))
            sock.settimeout(None)
            with sock.makefile("rb") as stream:
                for line in stream:
                    event = protocol.decode(line)
                    if event is None:
                        continue
                    if event.get("tail_end"):
                        yield event
                        return
                    if event.get("ok") and event.get("tailing"):
                        continue  # the subscription ack
                    yield event
        raise ConnectionError("tail stream dropped without tail_end")

    def tail(self, job_id: Optional[str] = None,
             reconnect: bool = True) -> Iterator[Dict[str, Any]]:
        """Yield job lifecycle events as the daemon emits them.

        Ends when the daemon drains (orderly ``tail_end``) or the
        tailed job finishes.  A stream that just *drops* — daemon
        killed, restarted — is reconnected with the same jittered
        exponential backoff as ``submit`` retries (``tail.reconnects``
        counts them); the attempt budget resets whenever an event
        actually arrives, so a long-lived tail survives any number of
        daemon restarts as long as each outage stays under the budget.
        """
        attempt = 0
        while True:
            received = False
            try:
                for event in self._tail_stream(job_id):
                    if event.get("tail_end"):
                        return
                    received = True
                    attempt = 0
                    yield event
                return
            except (ConnectionError, FileNotFoundError, OSError):
                if not reconnect:
                    return
                if received:
                    attempt = 0
                if attempt + 1 >= self.max_attempts:
                    raise ServiceError(
                        f"tail of {self.socket_path} dropped and "
                        f"stayed unreachable after "
                        f"{self.max_attempts} attempt(s)")
                get_registry().counter("tail.reconnects").inc()
                self.sleep(self._backoff(attempt, None))
                attempt += 1


__all__ = ["RETRYABLE_REASONS", "ServiceClient"]
