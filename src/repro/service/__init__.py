"""Simulation service: a durable job daemon for design-space sweeps.

``repro serve`` turns one machine into a small, crash-safe sweep
server: submissions are content-addressed and idempotent, every
acknowledged state change is write-ahead journaled, and restart —
including after ``kill -9`` — recovers exactly the acknowledged state
and requeues orphaned work.  ``repro submit / jobs / tail / cancel``
are the client side.  See ``docs/service.md`` for the full contract.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import (
    Daemon,
    ServiceConfig,
    default_socket_path,
    serve,
)
from repro.service.jobs import Job, JobStore, job_key
from repro.service.journal import Journal
from repro.service.runner import run_job
from repro.service.top import format_frame, run_top

__all__ = [
    "Daemon", "Job", "JobStore", "Journal", "ServiceClient",
    "ServiceConfig", "default_socket_path", "format_frame",
    "job_key", "run_job", "run_top", "serve",
]
