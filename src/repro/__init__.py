"""repro — statistical simulation with control-flow modeling.

A full reproduction of *Control Flow Modeling in Statistical Simulation
for Accurate and Efficient Processor Design Studies* (Eeckhout, Bell,
Stougie, De Bosschere, John — ISCA 2004): statistical flow graphs,
delayed-update branch profiling, synthetic trace generation, and the
complete simulation substrate (workloads, functional frontend, branch
predictors, caches, an out-of-order superscalar core and a Wattch-style
power model) needed to evaluate it.

Quickstart::

    from repro import (baseline_config, build_benchmark, run_program,
                       run_statistical_simulation, run_execution_driven)

    program = build_benchmark("gzip")
    trace = run_program(program, n_instructions=50_000)
    config = baseline_config()

    reference, _ = run_execution_driven(trace, config)
    report = run_statistical_simulation(trace, config, order=1,
                                        reduction_factor=10)
    print(reference.ipc, report.ipc)
"""

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    TLBConfig,
    baseline_config,
    simplescalar_default_config,
)
from repro.errors import (
    ArtifactCorruptError,
    InjectedFaultError,
    ProfileError,
    ReproError,
    SimulationError,
    SynthesisError,
    TaskTimeoutError,
)
from repro.runner import (
    FaultPlan,
    RunnerPolicy,
    RunReport,
    TaskRunner,
    WorkUnit,
)
from repro.isa import IClass, Program, BasicBlock
from repro.workloads import (
    SPEC_INT_2000,
    WorkloadConfig,
    benchmark_names,
    build_benchmark,
    build_suite,
    generate_program,
)
from repro.frontend import Trace, run_program, split_intervals
from repro.branch import (
    BranchOutcome,
    BranchPredictorUnit,
    profile_branches_delayed,
    profile_branches_immediate,
)
from repro.cache import CacheHierarchy
from repro.cpu import (
    ExecutionDrivenSource,
    PreannotatedSource,
    SimulationResult,
    simulate,
)
from repro.power import WattchPowerModel, energy_delay_product
from repro.core import (
    StatisticalFlowGraph,
    StatisticalProfile,
    StatisticalSimulationReport,
    SyntheticTrace,
    absolute_error,
    coefficient_of_variation,
    generate_synthetic_trace,
    profile_trace,
    reduce_flow_graph,
    relative_error,
    run_execution_driven,
    run_statistical_simulation,
    simulate_synthetic_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "MachineConfig", "CacheConfig", "TLBConfig", "BranchPredictorConfig",
    "baseline_config", "simplescalar_default_config",
    # ISA / workloads
    "IClass", "Program", "BasicBlock", "WorkloadConfig",
    "generate_program", "SPEC_INT_2000", "benchmark_names",
    "build_benchmark", "build_suite",
    # frontend
    "Trace", "run_program", "split_intervals",
    # substrates
    "BranchOutcome", "BranchPredictorUnit",
    "profile_branches_immediate", "profile_branches_delayed",
    "CacheHierarchy",
    "ExecutionDrivenSource", "PreannotatedSource", "SimulationResult",
    "simulate", "WattchPowerModel", "energy_delay_product",
    # core methodology
    "StatisticalFlowGraph", "StatisticalProfile", "SyntheticTrace",
    "StatisticalSimulationReport", "profile_trace", "reduce_flow_graph",
    "generate_synthetic_trace", "simulate_synthetic_trace",
    "run_statistical_simulation", "run_execution_driven",
    "absolute_error", "relative_error", "coefficient_of_variation",
    # errors
    "ReproError", "ProfileError", "SynthesisError", "SimulationError",
    "ArtifactCorruptError", "TaskTimeoutError", "InjectedFaultError",
    # fault-tolerant runner
    "TaskRunner", "RunnerPolicy", "RunReport", "WorkUnit", "FaultPlan",
]
