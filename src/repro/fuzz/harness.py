"""The fuzzing harness: case loop, verdicts, corpus and replay.

One fuzz *case* is evaluated in two layers:

1. **differential** — the case's program runs through the optimized and
   the frozen reference pipeline; any divergence (fields or retirement
   schedule) is a failure (:mod:`repro.fuzz.oracle`);
2. **acceptance** — the paper's profile → reduce → synthesize loop runs
   on the same trace, and the synthetic statistics must converge to the
   profile within scaled tolerances (:mod:`repro.fuzz.acceptance`);
3. **vector** (``--vector``) — the columnar batch generator
   (:mod:`repro.core.columnar`) synthesizes from the same profile, and
   its statistically-equivalent draw stream must converge to the
   profile under the same tolerances — the differential guard between
   the scalar oracle and the vectorized kernels.

Failures are minimized (:mod:`repro.fuzz.minimize`) and written to the
corpus (:mod:`repro.fuzz.corpus`).  Cases execute under the shared
:class:`~repro.runner.TaskRunner`, so per-case timeouts, retries and
crash containment behave exactly like ``repro experiment``; chaos
injection (``REPRO_CHAOS``) composes — ``task-fail``/``slow-call``
exercise the containment, and the dedicated ``pipeline-skew`` site
plants a deliberate one-cycle discrepancy that must be caught,
minimized and corpus-filed (the end-to-end canary for the oracle
itself).

Everything is deterministic given ``(seed, case count, tolerances)``:
identical invocations produce identical verdicts, which is what makes
``repro fuzz --stats-only`` trackable over time like the benchmark
suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.faults import plan_from_env
from repro.fuzz.acceptance import (
    AcceptanceReport,
    ToleranceConfig,
    acceptance_report,
)
from repro.fuzz.corpus import (
    CorpusEntry,
    list_entries,
    load_entry,
    program_from_dict,
    program_to_dict,
    save_entry,
)
from repro.fuzz.generator import FuzzCase, case_from_dict, random_case
from repro.fuzz.minimize import minimize_program
from repro.fuzz.oracle import diff_program
from repro.errors import FuzzDiscrepancyError
from repro.obs.metrics import get_registry
from repro.obs.tracing import trace_span
from repro.runner import RunnerPolicy, TaskRunner, WorkUnit

#: "no chaos argument given": resolve from the environment, like the
#: runner does.
_ENV_CHAOS = object()

OK = "ok"
DIFFERENTIAL = "differential"
ACCEPTANCE = "acceptance"
VECTOR = "vector"
ERROR = "error"


@dataclass(frozen=True)
class FuzzPolicy:
    """Knobs of one fuzzing run."""

    cases: int = 25
    seed: int = 0
    timeout: Optional[float] = None
    retries: int = 0
    corpus_dir: Optional[str] = None
    max_trials: int = 200
    tolerances: ToleranceConfig = field(default_factory=ToleranceConfig)
    minimize: bool = True
    #: Adds a third layer: the columnar batch generator's draws must
    #: satisfy the same statistical acceptance against the profile as
    #: the scalar generator's (``repro fuzz --vector``).
    vector: bool = False


@dataclass
class CaseVerdict:
    """The outcome of one fuzz case."""

    case_id: str
    status: str  # ok | differential | acceptance | error
    detail: str = ""
    #: Acceptance margins per statistic (tolerance - deviation; negative
    #: means the statistic failed).  Empty when acceptance never ran.
    margins: Dict[str, float] = field(default_factory=dict)
    skew_injected: bool = False
    corpus_path: Optional[str] = None
    minimization: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "case_id": self.case_id,
            "status": self.status,
            "detail": self.detail,
            "margins": self.margins,
            "skew_injected": self.skew_injected,
            "corpus_path": self.corpus_path,
            "minimization": self.minimization,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CaseVerdict":
        return cls(
            case_id=data["case_id"],
            status=data["status"],
            detail=data.get("detail", ""),
            margins=dict(data.get("margins", {})),
            skew_injected=data.get("skew_injected", False),
            corpus_path=data.get("corpus_path"),
            minimization=dict(data.get("minimization", {})),
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    seed: int
    verdicts: List[CaseVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(verdict.status == OK for verdict in self.verdicts)

    def count(self, status: str) -> int:
        return sum(1 for verdict in self.verdicts
                   if verdict.status == status)

    def summary(self) -> str:
        parts = (f"{len(self.verdicts)} cases: {self.count(OK)} ok, "
                 f"{self.count(DIFFERENTIAL)} differential, "
                 f"{self.count(ACCEPTANCE)} acceptance, ")
        if self.count(VECTOR):
            parts += f"{self.count(VECTOR)} vector, "
        return parts + f"{self.count(ERROR)} error"

    def stats_payload(self) -> Dict:
        """The deterministic JSON summary behind ``--stats-only``.

        No wall-clock fields: two runs with the same seed and case
        count produce byte-identical payloads, so the file diffs
        cleanly in CI history (like ``BENCH_hotpath.json``).
        """
        margins: Dict[str, List[float]] = {}
        for verdict in self.verdicts:
            for name, margin in verdict.margins.items():
                margins.setdefault(name, []).append(margin)
        margin_stats = {
            name: {
                "min": min(values),
                "mean": sum(values) / len(values),
                "cases": len(values),
            }
            for name, values in sorted(margins.items())
        }
        return {
            "schema": 1,
            "cases": len(self.verdicts),
            "seed": self.seed,
            "verdicts": {
                OK: self.count(OK),
                DIFFERENTIAL: self.count(DIFFERENTIAL),
                ACCEPTANCE: self.count(ACCEPTANCE),
                VECTOR: self.count(VECTOR),
                ERROR: self.count(ERROR),
            },
            "acceptance_margins": margin_stats,
            "failed_cases": [verdict.to_dict()
                             for verdict in self.verdicts
                             if verdict.status != OK],
        }


def _acceptance_fails(program, n_instructions: int, case: FuzzCase,
                      tolerances: ToleranceConfig) -> bool:
    """Re-run the statistical loop on a shrunken program; True = still
    out of tolerance (the minimization predicate for acceptance
    failures)."""
    from repro.core.profiler import profile_trace
    from repro.core.synthesis import generate_synthetic_trace
    from repro.frontend.functional import run_program

    config = case.machine_config()
    trace = run_program(program, n_instructions, warmup=case.warmup)
    profile = profile_trace(trace, config, order=case.order)
    synthetic = generate_synthetic_trace(profile, case.reduction_factor,
                                         seed=case.synthesis_seed)
    return not acceptance_report(profile, synthetic, tolerances).passed


def _vector_synthetic(profile, case: FuzzCase):
    """The columnar generator's draws for *case*, materialized as a
    scalar trace so the acceptance checks apply unchanged."""
    from repro.core.columnar import generate_columnar_trace

    columnar = generate_columnar_trace(profile, case.reduction_factor,
                                       seed=case.synthesis_seed)
    return columnar.to_synthetic_trace()


def _vector_fails(program, n_instructions: int, case: FuzzCase,
                  tolerances: ToleranceConfig) -> bool:
    """Minimization predicate for vector failures: True while the
    columnar draws stay out of tolerance on the shrunken program."""
    from repro.core.profiler import profile_trace
    from repro.frontend.functional import run_program

    config = case.machine_config()
    trace = run_program(program, n_instructions, warmup=case.warmup)
    profile = profile_trace(trace, config, order=case.order)
    synthetic = _vector_synthetic(profile, case)
    return not acceptance_report(profile, synthetic, tolerances).passed


def evaluate_case(case: FuzzCase, policy: FuzzPolicy,
                  chaos=None) -> CaseVerdict:
    """Run the differential + acceptance checks for one case."""
    from repro.core.profiler import profile_trace
    from repro.core.synthesis import generate_synthetic_trace
    from repro.frontend.functional import run_program

    registry = get_registry()
    config = case.machine_config()
    program = case.program()

    with trace_span("fuzz.case", case=case.case_id):
        # ---- layer 1: differential oracle --------------------------
        diff = diff_program(program, config, case.trace_instructions,
                            warmup=case.warmup, chaos=chaos,
                            token=case.case_id)
        if not diff.identical:
            registry.counter("fuzz.differential").inc()
            obs.warn(f"{case.case_id}: pipelines diverged "
                     f"({diff.summary()})",
                     event="fuzz.divergence", case=case.case_id,
                     injected=diff.skew_injected)
            verdict = CaseVerdict(case_id=case.case_id,
                                  status=DIFFERENTIAL,
                                  detail=diff.summary(),
                                  skew_injected=diff.skew_injected)
            if policy.minimize:
                minimized = minimize_program(
                    program, case.trace_instructions,
                    lambda prog, n: not diff_program(
                        prog, config, n, warmup=case.warmup,
                        chaos=chaos, token=case.case_id).identical,
                    max_trials=policy.max_trials)
                registry.counter("fuzz.minimized").inc()
                verdict.minimization = minimized.to_dict()
                program = minimized.program
            if policy.corpus_dir:
                entry = CorpusEntry(
                    case_id=case.case_id, kind=DIFFERENTIAL,
                    case=case.to_dict(), report=diff.to_dict(),
                    program=program_to_dict(program),
                    minimization=verdict.minimization,
                    chaos_spec=(chaos.to_spec()
                                if hasattr(chaos, "to_spec") else None),
                    skew_injected=diff.skew_injected)
                verdict.corpus_path = save_entry(policy.corpus_dir, entry)
            return verdict

        # ---- layer 2: statistical acceptance ------------------------
        trace = run_program(program, case.trace_instructions,
                            warmup=case.warmup)
        profile = profile_trace(trace, config, order=case.order)
        synthetic = generate_synthetic_trace(profile,
                                             case.reduction_factor,
                                             seed=case.synthesis_seed)
        report = acceptance_report(profile, synthetic, policy.tolerances)
        margins = {check.name: check.margin for check in report.checks}
        if report.passed:
            # ---- layer 3 (--vector): columnar draws vs profile ------
            # The scalar draws just converged; the columnar generator's
            # statistically-equivalent stream must converge to the same
            # profile under the same tolerances.
            if policy.vector:
                vector_trace = _vector_synthetic(profile, case)
                vector_report = acceptance_report(profile, vector_trace,
                                                  policy.tolerances)
                margins.update({f"vector.{check.name}": check.margin
                                for check in vector_report.checks})
                if not vector_report.passed:
                    registry.counter("fuzz.vector").inc()
                    obs.warn(
                        f"{case.case_id}: columnar draws out of "
                        f"tolerance ({vector_report.summary()})",
                        event="fuzz.vector_failure", case=case.case_id)
                    verdict = CaseVerdict(case_id=case.case_id,
                                          status=VECTOR,
                                          detail=vector_report.summary(),
                                          margins=margins)
                    if policy.minimize:
                        minimized = minimize_program(
                            program, case.trace_instructions,
                            lambda prog, n: _vector_fails(
                                prog, n, case, policy.tolerances),
                            max_trials=max(1, policy.max_trials // 4))
                        registry.counter("fuzz.minimized").inc()
                        verdict.minimization = minimized.to_dict()
                        program = minimized.program
                    if policy.corpus_dir:
                        entry = CorpusEntry(
                            case_id=case.case_id, kind=VECTOR,
                            case=case.to_dict(),
                            report=vector_report.to_dict(),
                            program=program_to_dict(program),
                            minimization=verdict.minimization,
                            chaos_spec=(chaos.to_spec()
                                        if hasattr(chaos, "to_spec")
                                        else None))
                        verdict.corpus_path = save_entry(
                            policy.corpus_dir, entry)
                    return verdict
            registry.counter("fuzz.ok").inc()
            return CaseVerdict(case_id=case.case_id, status=OK,
                               margins=margins)

        registry.counter("fuzz.acceptance").inc()
        obs.warn(f"{case.case_id}: synthetic statistics out of "
                 f"tolerance ({report.summary()})",
                 event="fuzz.acceptance_failure", case=case.case_id)
        verdict = CaseVerdict(case_id=case.case_id, status=ACCEPTANCE,
                              detail=report.summary(), margins=margins)
        if policy.minimize:
            minimized = minimize_program(
                program, case.trace_instructions,
                lambda prog, n: _acceptance_fails(prog, n, case,
                                                  policy.tolerances),
                max_trials=max(1, policy.max_trials // 4))
            registry.counter("fuzz.minimized").inc()
            verdict.minimization = minimized.to_dict()
            program = minimized.program
        if policy.corpus_dir:
            entry = CorpusEntry(
                case_id=case.case_id, kind=ACCEPTANCE,
                case=case.to_dict(), report=report.to_dict(),
                program=program_to_dict(program),
                minimization=verdict.minimization,
                chaos_spec=(chaos.to_spec()
                            if hasattr(chaos, "to_spec") else None))
            verdict.corpus_path = save_entry(policy.corpus_dir, entry)
        return verdict


def run_fuzz(policy: FuzzPolicy, chaos=_ENV_CHAOS,
             log=None) -> FuzzReport:
    """Run *policy.cases* seeded cases; return the aggregate report.

    *chaos* defaults to the plan in ``REPRO_CHAOS`` (pass ``None`` to
    force chaos off).  The plan is shared with the runner, so
    ``task-fail``/``slow-call`` hit the containment path while
    ``pipeline-skew`` hits the oracle.
    """
    if chaos is _ENV_CHAOS:
        chaos = plan_from_env(os.environ)
    registry = get_registry()
    log = log or (lambda message: None)

    cases = [random_case(policy.seed, index)
             for index in range(policy.cases)]
    units = [WorkUnit(experiment="fuzz", benchmark=case.case_id,
                      seed=policy.seed, params=(("index", case.index),))
             for case in cases]
    by_unit = {unit.unit_id: case for unit, case in zip(units, cases)}

    runner = TaskRunner(
        policy=RunnerPolicy(timeout=policy.timeout,
                            max_retries=policy.retries),
        fault_plan=chaos,
        raise_on_total_failure=False,
        log=log,
    )

    def run_one(unit: WorkUnit) -> Dict:
        case = by_unit[unit.unit_id]
        registry.counter("fuzz.cases").inc()
        return evaluate_case(case, policy, chaos=chaos).to_dict()

    run_report = runner.run(units, run_one)

    verdicts: List[CaseVerdict] = []
    for outcome in run_report.outcomes:
        if outcome.status == "failed" or outcome.result is None:
            registry.counter("fuzz.errors").inc()
            error = (outcome.error or {}).get("message", "case crashed")
            verdicts.append(CaseVerdict(
                case_id=outcome.benchmark or outcome.unit_id,
                status=ERROR, detail=str(error)))
        else:
            verdicts.append(CaseVerdict.from_dict(outcome.result))

    report = FuzzReport(seed=policy.seed, verdicts=verdicts)
    obs.info(f"fuzz run complete: {report.summary()}",
             event="fuzz.summary", seed=policy.seed,
             cases=len(report.verdicts), ok=report.count(OK))
    return report


# ---------------------------------------------------------------- replay

@dataclass
class ReplayResult:
    """The outcome of replaying one corpus entry."""

    path: str
    case_id: str
    kind: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> Dict:
        return {"path": self.path, "case_id": self.case_id,
                "kind": self.kind, "passed": self.passed,
                "detail": self.detail}


def replay_entry(path: str,
                 tolerances: ToleranceConfig = ToleranceConfig()
                 ) -> ReplayResult:
    """Replay one corpus entry; green means the pinned bug stays fixed."""
    from repro.core.profiler import profile_trace
    from repro.core.synthesis import generate_synthetic_trace
    from repro.frontend.functional import run_program

    entry = load_entry(path)
    case = case_from_dict(entry.case)
    config = case.machine_config()
    program = program_from_dict(entry.program)
    n_instructions = entry.minimization.get("n_instructions",
                                            case.trace_instructions)

    if entry.kind == DIFFERENTIAL:
        diff = diff_program(program, config, n_instructions,
                            warmup=case.warmup)
        return ReplayResult(path=path, case_id=entry.case_id,
                            kind=entry.kind, passed=diff.identical,
                            detail=("" if diff.identical
                                    else diff.summary()))
    if entry.kind in (ACCEPTANCE, VECTOR):
        trace = run_program(program, n_instructions, warmup=case.warmup)
        profile = profile_trace(trace, config, order=case.order)
        if entry.kind == VECTOR:
            synthetic = _vector_synthetic(profile, case)
        else:
            synthetic = generate_synthetic_trace(
                profile, case.reduction_factor, seed=case.synthesis_seed)
        report = acceptance_report(profile, synthetic, tolerances)
        return ReplayResult(path=path, case_id=entry.case_id,
                            kind=entry.kind, passed=report.passed,
                            detail=("" if report.passed
                                    else report.summary()))
    return ReplayResult(path=path, case_id=entry.case_id,
                        kind=entry.kind, passed=False,
                        detail=f"unknown entry kind {entry.kind!r}")


def replay_corpus(corpus_dir: str,
                  tolerances: ToleranceConfig = ToleranceConfig(),
                  raise_on_failure: bool = False) -> List[ReplayResult]:
    """Replay every entry under *corpus_dir* (sorted, deterministic)."""
    registry = get_registry()
    results = []
    for path in list_entries(corpus_dir):
        result = replay_entry(path, tolerances)
        registry.counter("fuzz.replayed").inc()
        if not result.passed:
            registry.counter("fuzz.replay_failures").inc()
            obs.error(f"corpus replay failed: {result.case_id} "
                      f"({result.detail})", event="fuzz.replay_failure",
                      case=result.case_id, path=path)
            if raise_on_failure:
                raise FuzzDiscrepancyError(
                    f"corpus entry {result.case_id} regressed: "
                    f"{result.detail}")
        results.append(result)
    return results
