"""Failure minimization: shrink a failing fuzz program to a reproducer.

Given a program and a predicate ``failing(program, n_instructions)``
(true when the differential oracle still reports a discrepancy, or the
acceptance harness still rejects), the minimizer applies shrinking
passes to a fixpoint:

1. halve the simulated trace length;
2. drop basic blocks, ddmin-style (complement halving with increasing
   granularity), remapping branch targets onto the survivors;
3. truncate block bodies down to just the terminating branch;
4. simplify remaining body instructions to bare ``INT_ALU`` ops with no
   operands;
5. collapse all branch behaviours to a two-iteration loop.

Every trial re-runs the predicate on a candidate; a trial that raises
is treated as "not failing" (an invalid shrink, not a reproducer).  The
result is the smallest program found that still fails, measured in
static instructions — corpus entries store it alongside the original
case so regressions replay in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.isa.iclass import IClass
from repro.isa.instruction import StaticInstruction
from repro.isa.program import BasicBlock, Program
from repro.workloads.behaviors import LoopBehavior

#: Trace lengths below this stop the halving pass; shorter runs lose
#: the steady-state behaviour most discrepancies need.
_MIN_TRACE = 200

FailingPredicate = Callable[[Program, int], bool]


@dataclass(frozen=True)
class MinimizationResult:
    """A minimized reproducer plus shrink statistics."""

    program: Program
    original_size: int
    minimized_size: int
    trials: int
    n_instructions: int

    @property
    def reduction(self) -> float:
        """Minimized size as a fraction of the original (lower=better)."""
        return self.minimized_size / max(1, self.original_size)

    def to_dict(self) -> Dict:
        return {
            "original_size": self.original_size,
            "minimized_size": self.minimized_size,
            "reduction": self.reduction,
            "trials": self.trials,
            "n_instructions": self.n_instructions,
        }


def _remap_target(target: int, survivors: Sequence[int],
                  new_id: Dict[int, int], entry: int) -> int:
    """Map an old block id onto the surviving set.

    A dropped target is redirected to the nearest surviving block at or
    after it (cyclically), falling back to the entry block — control
    flow stays closed over the shrunken CFG.
    """
    if target in new_id:
        return new_id[target]
    for old in survivors:
        if old >= target:
            return new_id[old]
    return new_id.get(entry, 0)


def _without_blocks(program: Program, dropped: Sequence[int]
                    ) -> Optional[Program]:
    """A copy of *program* with *dropped* block ids removed."""
    drop = set(dropped)
    drop.discard(program.entry)  # the entry block always survives
    survivors = [block.bb_id for block in program.blocks
                 if block.bb_id not in drop]
    if not survivors or len(survivors) == len(program.blocks):
        return None
    new_id = {old: new for new, old in enumerate(survivors)}
    blocks: List[BasicBlock] = []
    for old in survivors:
        block = program.blocks[old]
        taken = block.taken_target
        if taken >= 0:
            taken = _remap_target(taken, survivors, new_id, program.entry)
        fallthrough = block.fallthrough
        if fallthrough >= 0:
            fallthrough = _remap_target(fallthrough, survivors, new_id,
                                        program.entry)
        indirect = ()
        if block.indirect_targets:
            remapped = sorted({
                _remap_target(target, survivors, new_id, program.entry)
                for target in block.indirect_targets})
            indirect = tuple(remapped)
        blocks.append(BasicBlock(
            bb_id=new_id[old],
            address=block.address,
            instructions=block.instructions,
            taken_target=taken,
            fallthrough=fallthrough,
            indirect_targets=indirect,
            branch_behavior=block.branch_behavior,
        ))
    return Program(
        name=program.name,
        blocks=blocks,
        entry=new_id[program.entry],
        branch_behaviors=list(program.branch_behaviors),
        memory_streams=list(program.memory_streams),
    )


def _truncate_bodies(program: Program) -> Program:
    """Keep only the terminating branch of every block."""
    blocks = [BasicBlock(
        bb_id=block.bb_id,
        address=block.address,
        instructions=block.instructions[-1:],
        taken_target=block.taken_target,
        fallthrough=block.fallthrough,
        indirect_targets=block.indirect_targets,
        branch_behavior=block.branch_behavior,
    ) for block in program.blocks]
    return Program(name=program.name, blocks=blocks, entry=program.entry,
                   branch_behaviors=list(program.branch_behaviors),
                   memory_streams=list(program.memory_streams))


def _simplify_instructions(program: Program) -> Program:
    """Replace every non-branch instruction with a bare INT_ALU op."""
    filler = StaticInstruction(IClass.INT_ALU, src_regs=())
    blocks = [BasicBlock(
        bb_id=block.bb_id,
        address=block.address,
        instructions=[filler] * (len(block.instructions) - 1)
        + [block.instructions[-1]],
        taken_target=block.taken_target,
        fallthrough=block.fallthrough,
        indirect_targets=block.indirect_targets,
        branch_behavior=block.branch_behavior,
    ) for block in program.blocks]
    return Program(name=program.name, blocks=blocks, entry=program.entry,
                   branch_behaviors=list(program.branch_behaviors),
                   memory_streams=list(program.memory_streams))


def _simplify_behaviors(program: Program) -> Program:
    """Collapse every branch behaviour to a two-iteration loop."""
    behaviors = [LoopBehavior(2) for _ in program.branch_behaviors]
    return Program(name=program.name, blocks=list(program.blocks),
                   entry=program.entry, branch_behaviors=behaviors,
                   memory_streams=list(program.memory_streams))


class _Shrinker:
    """Trial bookkeeping shared by the passes."""

    def __init__(self, failing: FailingPredicate, max_trials: int) -> None:
        self.failing = failing
        self.max_trials = max_trials
        self.trials = 0

    @property
    def exhausted(self) -> bool:
        return self.trials >= self.max_trials

    def still_fails(self, program: Optional[Program],
                    n_instructions: int) -> bool:
        if program is None or self.exhausted:
            return False
        self.trials += 1
        try:
            return bool(self.failing(program, n_instructions))
        except Exception:
            return False  # invalid shrink, not a reproducer


def _ddmin_blocks(program: Program, n_instructions: int,
                  shrinker: _Shrinker) -> Program:
    """Delta-debugging over the droppable (non-entry) block set."""
    while True:
        droppable = [block.bb_id for block in program.blocks
                     if block.bb_id != program.entry]
        if not droppable or shrinker.exhausted:
            return program
        chunks = 2
        shrunk = False
        while chunks <= len(droppable):
            size = (len(droppable) + chunks - 1) // chunks
            for start in range(0, len(droppable), size):
                dropped = droppable[start:start + size]
                candidate = _without_blocks(program, dropped)
                if shrinker.still_fails(candidate, n_instructions):
                    program = candidate
                    shrunk = True
                    break
            if shrunk:
                break
            chunks *= 2
        if not shrunk:
            return program


def minimize_program(program: Program, n_instructions: int,
                     failing: FailingPredicate,
                     max_trials: int = 200) -> MinimizationResult:
    """Shrink *program* while ``failing(program, n)`` stays true.

    The input pair is assumed failing; the passes run to a fixpoint or
    until *max_trials* predicate evaluations have been spent.
    """
    original_size = program.static_instruction_count
    shrinker = _Shrinker(failing, max_trials)

    # Pass 1: halve the trace length while the failure persists.
    while (n_instructions // 2 >= _MIN_TRACE
           and shrinker.still_fails(program, n_instructions // 2)):
        n_instructions //= 2

    changed = True
    while changed and not shrinker.exhausted:
        changed = False

        smaller = _ddmin_blocks(program, n_instructions, shrinker)
        if smaller is not program:
            program = smaller
            changed = True

        truncated = _truncate_bodies(program)
        if (truncated.static_instruction_count
                < program.static_instruction_count
                and shrinker.still_fails(truncated, n_instructions)):
            program = truncated
            changed = True

        simplified = _simplify_instructions(program)
        if (simplified.blocks != program.blocks
                and shrinker.still_fails(simplified, n_instructions)):
            program = simplified
            changed = True

    tame = _simplify_behaviors(program)
    if shrinker.still_fails(tame, n_instructions):
        program = tame

    return MinimizationResult(
        program=program,
        original_size=original_size,
        minimized_size=program.static_instruction_count,
        trials=shrinker.trials,
        n_instructions=n_instructions,
    )
