"""Statistical acceptance: do synthetic traces converge to the profile?

For each fuzz case the harness runs the paper's full loop —
profile → reduce → synthesize — and then asserts the *synthetic*
statistics converge to the *profiled* ones within configurable
tolerances:

* instruction mix, per class: max absolute deviation of the class
  fraction, plus one chi-square goodness-of-fit check across classes
  (critical value via the Wilson–Hilferty cube approximation, so no
  scipy dependency);
* dependency-distance distribution, over log2 buckets;
* branch characteristics: taken / misprediction / redirection rates;
* cache characteristics: IL1, DL1 and L2-data miss rates.

Every tolerance scales with the synthetic trace length: a statistic
realized over ``n`` samples gets ``base + scale * sqrt(p*(1-p)/n)``,
i.e. the binomial standard error times a configurable multiplier, so
short reduced traces are judged more leniently than long ones and the
harness stays deterministic (no re-rolls, no flaky thresholds).

Known modeling slack is encoded, not hidden: synthesis step 4 rejects a
dependency whenever its sampled distance lands on a branch/store slot
(the paper's rule), so the dependency checks carry a looser base
tolerance than the mix and rate checks — see ``dep_max_dev``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.profiler import StatisticalProfile
from repro.core.synthetic import SyntheticTrace
from repro.core.validation import profile_rates, synthetic_rates
from repro.isa.iclass import IClass

#: Dependency distances are bucketed at powers of two: 1, 2, (2,4],
#: (4,8], ... (256,512].  Coarse enough to be stable at fuzz-trace
#: lengths, fine enough to catch a broken distance sampler.
_DEP_BUCKET_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class ToleranceConfig:
    """Acceptance tolerances (all deviations are absolute fractions)."""

    #: Base tolerance for per-class instruction-mix fractions.
    mix_max_dev: float = 0.05
    #: Base tolerance for branch and cache rates.
    rate_max_dev: float = 0.05
    #: Base tolerance for dependency-distance bucket fractions
    #: (looser: synthesis rejection legitimately reshapes the tail).
    dep_max_dev: float = 0.08
    #: z-score for the chi-square critical value (Wilson–Hilferty).
    chi_square_z: float = 4.0
    #: Multiplier on the binomial standard error sqrt(p*(1-p)/n).
    scale: float = 4.0

    def effective(self, base: float, p: float, n: int) -> float:
        """Length-scaled tolerance for a fraction ``p`` over ``n`` draws."""
        variance = max(p * (1.0 - p), 1e-6)
        return base + self.scale * math.sqrt(variance / max(1, n))

    def to_dict(self) -> Dict[str, float]:
        return {
            "mix_max_dev": self.mix_max_dev,
            "rate_max_dev": self.rate_max_dev,
            "dep_max_dev": self.dep_max_dev,
            "chi_square_z": self.chi_square_z,
            "scale": self.scale,
        }


def chi_square_critical(df: int, z: float) -> float:
    """Wilson–Hilferty approximation of the chi-square quantile at
    normal deviate *z* (z=4 ≈ the 0.99997 quantile)."""
    if df <= 0:
        return 0.0
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * math.sqrt(h)) ** 3


@dataclass(frozen=True)
class StatisticCheck:
    """One statistic compared between profile and synthetic trace."""

    name: str
    metric: str  # "max_abs_deviation" or "chi_square"
    expected: float
    realized: float
    deviation: float
    tolerance: float
    passed: bool

    @property
    def margin(self) -> float:
        """Headroom before failure (negative = failed)."""
        return self.tolerance - self.deviation

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "expected": self.expected,
            "realized": self.realized,
            "deviation": self.deviation,
            "tolerance": self.tolerance,
            "margin": self.margin,
            "passed": self.passed,
        }


@dataclass
class AcceptanceReport:
    """All acceptance checks for one profile/synthetic pair."""

    checks: List[StatisticCheck] = field(default_factory=list)
    synthetic_instructions: int = 0

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[StatisticCheck]:
        return [check for check in self.checks if not check.passed]

    def to_dict(self) -> Dict:
        return {
            "passed": self.passed,
            "synthetic_instructions": self.synthetic_instructions,
            "checks": [check.to_dict() for check in self.checks],
        }

    def summary(self) -> str:
        if self.passed:
            return f"all {len(self.checks)} statistics within tolerance"
        parts = [f"{check.name}: |{check.realized:.4f} - "
                 f"{check.expected:.4f}| > {check.tolerance:.4f}"
                 for check in self.failures[:4]]
        return f"{len(self.failures)} statistic(s) out of tolerance: " \
               + "; ".join(parts)


def _profile_mix(profile: StatisticalProfile) -> Tuple[Dict[IClass, float], int]:
    """Occurrence-weighted instruction-class fractions of the profile."""
    counts: Dict[IClass, int] = {}
    total = 0
    for stats in profile.sfg.contexts.values():
        occurrences = stats.occurrences
        for iclass in stats.iclasses:
            counts[iclass] = counts.get(iclass, 0) + occurrences
            total += occurrences
    return ({iclass: count / total for iclass, count in counts.items()}
            if total else {}, total)


def _synthetic_mix(synthetic: SyntheticTrace) -> Tuple[Dict[IClass, float], int]:
    counts: Dict[IClass, int] = {}
    for inst in synthetic.instructions:
        counts[inst.iclass] = counts.get(inst.iclass, 0) + 1
    total = len(synthetic.instructions)
    return ({iclass: count / total for iclass, count in counts.items()}
            if total else {}, total)


def _dep_bucket(distance: int) -> int:
    for index, edge in enumerate(_DEP_BUCKET_EDGES):
        if distance <= edge:
            return index
    return len(_DEP_BUCKET_EDGES) - 1


def _profile_dep_buckets(profile: StatisticalProfile) -> Dict[int, int]:
    buckets: Dict[int, int] = {}
    for stats in profile.sfg.contexts.values():
        for slot in range(stats.block_size):
            for hist in stats.dep_hists[slot]:
                for distance, count in hist.items():
                    bucket = _dep_bucket(distance)
                    buckets[bucket] = buckets.get(bucket, 0) + count
    return buckets


def _synthetic_dep_buckets(synthetic: SyntheticTrace) -> Dict[int, int]:
    buckets: Dict[int, int] = {}
    for inst in synthetic.instructions:
        for distance in inst.dep_distances:
            bucket = _dep_bucket(distance)
            buckets[bucket] = buckets.get(bucket, 0) + 1
    return buckets


def _bucket_name(index: int) -> str:
    low = 0 if index == 0 else _DEP_BUCKET_EDGES[index - 1]
    high = _DEP_BUCKET_EDGES[index]
    if high - low <= 1:
        return f"dep_dist[{high}]"
    return f"dep_dist[({low},{high}]]"


def acceptance_report(profile: StatisticalProfile,
                      synthetic: SyntheticTrace,
                      tolerances: ToleranceConfig = ToleranceConfig()
                      ) -> AcceptanceReport:
    """Compare *synthetic* against *profile* statistic by statistic."""
    checks: List[StatisticCheck] = []
    n = len(synthetic.instructions)

    # --- instruction mix, per class + chi-square across classes -----
    expected_mix, _ = _profile_mix(profile)
    realized_mix, _ = _synthetic_mix(synthetic)
    chi_square = 0.0
    chi_square_df = 0
    for iclass in sorted(set(expected_mix) | set(realized_mix),
                         key=int):
        p = expected_mix.get(iclass, 0.0)
        q = realized_mix.get(iclass, 0.0)
        deviation = abs(p - q)
        tolerance = tolerances.effective(tolerances.mix_max_dev, p, n)
        checks.append(StatisticCheck(
            name=f"mix[{iclass.name}]", metric="max_abs_deviation",
            expected=p, realized=q, deviation=deviation,
            tolerance=tolerance, passed=deviation <= tolerance))
        expected_count = p * n
        if expected_count >= 5.0:
            chi_square += (q * n - expected_count) ** 2 / expected_count
            chi_square_df += 1
    if chi_square_df > 1:
        critical = chi_square_critical(chi_square_df - 1,
                                       tolerances.chi_square_z)
        checks.append(StatisticCheck(
            name="mix[chi_square]", metric="chi_square",
            expected=critical, realized=chi_square,
            deviation=chi_square, tolerance=critical,
            passed=chi_square <= critical))

    # --- dependency-distance distribution over log2 buckets ---------
    expected_buckets = _profile_dep_buckets(profile)
    realized_buckets = _synthetic_dep_buckets(synthetic)
    expected_total = sum(expected_buckets.values())
    realized_total = sum(realized_buckets.values())
    if expected_total and realized_total:
        for bucket in sorted(set(expected_buckets) | set(realized_buckets)):
            p = expected_buckets.get(bucket, 0) / expected_total
            q = realized_buckets.get(bucket, 0) / realized_total
            deviation = abs(p - q)
            tolerance = tolerances.effective(tolerances.dep_max_dev, p,
                                             realized_total)
            checks.append(StatisticCheck(
                name=_bucket_name(bucket), metric="max_abs_deviation",
                expected=p, realized=q, deviation=deviation,
                tolerance=tolerance, passed=deviation <= tolerance))

    # --- branch and cache rates -------------------------------------
    expected_rates = profile_rates(profile).as_dict()
    realized_rates = synthetic_rates(synthetic).as_dict()
    branches = sum(1 for inst in synthetic.instructions if inst.is_branch)
    loads = sum(1 for inst in synthetic.instructions if inst.is_load)
    dl1_misses = sum(inst.dl1_miss for inst in synthetic.instructions
                     if inst.is_load)
    rate_samples = {
        "taken_rate": branches,
        "misprediction_rate": branches,
        "redirection_rate": branches,
        "il1_miss_rate": n,
        "dl1_miss_rate": loads,
        "l2d_miss_rate": dl1_misses,
    }
    for name, samples in rate_samples.items():
        if samples <= 0:
            continue  # the statistic never realized; nothing to judge
        p = expected_rates[name]
        q = realized_rates[name]
        deviation = abs(p - q)
        tolerance = tolerances.effective(tolerances.rate_max_dev, p,
                                         samples)
        checks.append(StatisticCheck(
            name=name, metric="max_abs_deviation",
            expected=p, realized=q, deviation=deviation,
            tolerance=tolerance, passed=deviation <= tolerance))

    return AcceptanceReport(checks=checks, synthetic_instructions=n)
