"""Differential fuzzing + statistical acceptance for the simulator.

``repro.fuzz`` hunts for two failure families the fixed test suites
cannot enumerate:

* **pipeline divergence** — the optimized event-driven pipeline
  (:mod:`repro.cpu.pipeline`) must stay bit-identical to the frozen
  reference (:mod:`repro.cpu.reference`) on *any* program, not just the
  named benchmark grid;
* **statistical drift** — synthetic traces must converge to their
  source profile (instruction mix, dependency distances, branch and
  cache rates) within tolerances that scale with trace length.

See ``docs/fuzzing.md`` for the workflow; ``repro fuzz --help`` for the
CLI.
"""

from repro.fuzz.acceptance import (
    AcceptanceReport,
    StatisticCheck,
    ToleranceConfig,
    acceptance_report,
    chi_square_critical,
)
from repro.fuzz.corpus import (
    CorpusEntry,
    entry_path,
    list_entries,
    load_entry,
    program_from_dict,
    program_to_dict,
    save_entry,
)
from repro.fuzz.generator import (
    FuzzCase,
    case_from_dict,
    case_rng,
    generate_cases,
    random_case,
)
from repro.fuzz.harness import (
    CaseVerdict,
    FuzzPolicy,
    FuzzReport,
    ReplayResult,
    evaluate_case,
    replay_corpus,
    replay_entry,
    run_fuzz,
)
from repro.fuzz.minimize import MinimizationResult, minimize_program
from repro.fuzz.oracle import (
    DifferentialReport,
    FieldDiff,
    diff_program,
    diff_slots,
    diff_sources,
)

__all__ = [
    "AcceptanceReport",
    "CaseVerdict",
    "CorpusEntry",
    "DifferentialReport",
    "FieldDiff",
    "FuzzCase",
    "FuzzPolicy",
    "FuzzReport",
    "MinimizationResult",
    "ReplayResult",
    "StatisticCheck",
    "ToleranceConfig",
    "acceptance_report",
    "case_from_dict",
    "case_rng",
    "chi_square_critical",
    "diff_program",
    "diff_slots",
    "diff_sources",
    "entry_path",
    "evaluate_case",
    "generate_cases",
    "list_entries",
    "load_entry",
    "minimize_program",
    "program_from_dict",
    "program_to_dict",
    "random_case",
    "replay_corpus",
    "replay_entry",
    "run_fuzz",
    "save_entry",
]
