"""Regression corpus: minimized reproducers on disk, replayable forever.

Every failing fuzz case is written to the corpus directory as one
checksummed JSON file (reusing :mod:`repro.runner.checkpoint`, so a
truncated or hand-edited entry raises ``ArtifactCorruptError`` instead
of silently replaying garbage).  An entry carries everything needed to
re-run the check without the fuzz RNG: the originating case (seed,
index, workload, machine overrides), the diff/acceptance report at
discovery time, the minimization statistics, and the *minimized
program* itself, fully serialized — blocks, instructions, branch
behaviours (with their seeds) and memory streams.

Replay semantics are those of a regression corpus: a committed entry
replays **green** (the optimized pipeline now matches the reference,
or the synthetic statistics now converge).  A replay failure means the
bug the entry pinned down has come back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.isa.iclass import IClass
from repro.isa.instruction import StaticInstruction
from repro.isa.program import BasicBlock, Program
from repro.runner.checkpoint import (
    read_json_checked,
    sanitize_unit_id,
    write_json_atomic,
)
from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    IndirectBehavior,
    LoopBehavior,
    PatternBehavior,
    PointerChaseStream,
    RandomStream,
    StridedStream,
)

#: Bumped when the entry layout changes incompatibly.
CORPUS_SCHEMA = 1


# --------------------------------------------------------------- program

def _behavior_to_dict(behavior) -> Dict:
    if isinstance(behavior, LoopBehavior):
        return {"kind": "loop", "trip_count": behavior.trip_count}
    if isinstance(behavior, PatternBehavior):
        return {"kind": "pattern", "pattern": behavior.pattern}
    if isinstance(behavior, BiasedRandomBehavior):
        return {"kind": "biased", "p_taken": behavior.p_taken,
                "seed": behavior._seed}
    if isinstance(behavior, IndirectBehavior):
        return {"kind": "indirect", "n_targets": behavior.n_targets,
                "switch_period": behavior.switch_period,
                "seed": behavior._seed}
    raise ReproError(
        f"cannot serialize branch behavior {type(behavior).__name__}")


def _behavior_from_dict(data: Dict):
    kind = data["kind"]
    if kind == "loop":
        return LoopBehavior(data["trip_count"])
    if kind == "pattern":
        return PatternBehavior(data["pattern"])
    if kind == "biased":
        return BiasedRandomBehavior(data["p_taken"], data["seed"])
    if kind == "indirect":
        return IndirectBehavior(data["n_targets"], data["switch_period"],
                                data["seed"])
    raise ReproError(f"unknown branch behavior kind {kind!r}")


def _stream_to_dict(stream) -> Dict:
    if isinstance(stream, StridedStream):
        return {"kind": "strided", "base": stream.base,
                "stride": stream.stride, "length": stream.length}
    if isinstance(stream, RandomStream):
        return {"kind": "random", "base": stream.base,
                "working_set": stream.working_set, "align": stream.align,
                "seed": stream._seed}
    if isinstance(stream, PointerChaseStream):
        # _start is seed % n_nodes, and the constructor reapplies the
        # modulo, so storing _start as the seed round-trips exactly.
        return {"kind": "chase", "base": stream.base,
                "n_nodes": stream.n_nodes,
                "node_bytes": stream.node_bytes, "seed": stream._start}
    raise ReproError(
        f"cannot serialize memory stream {type(stream).__name__}")


def _stream_from_dict(data: Dict):
    kind = data["kind"]
    if kind == "strided":
        return StridedStream(data["base"], data["stride"], data["length"])
    if kind == "random":
        return RandomStream(data["base"], data["working_set"],
                            align=data.get("align", 8),
                            seed=data.get("seed", 0))
    if kind == "chase":
        return PointerChaseStream(data["base"], data["n_nodes"],
                                  node_bytes=data.get("node_bytes", 64),
                                  seed=data.get("seed", 1))
    raise ReproError(f"unknown memory stream kind {kind!r}")


def _instruction_to_dict(inst: StaticInstruction) -> Dict:
    data: Dict = {"iclass": int(inst.iclass)}
    if inst.src_regs:
        data["src_regs"] = list(inst.src_regs)
    if inst.dst_reg is not None:
        data["dst_reg"] = inst.dst_reg
    if inst.mem_stream is not None:
        data["mem_stream"] = inst.mem_stream
    return data


def _instruction_from_dict(data: Dict) -> StaticInstruction:
    return StaticInstruction(
        iclass=IClass(data["iclass"]),
        src_regs=tuple(data.get("src_regs", ())),
        dst_reg=data.get("dst_reg"),
        mem_stream=data.get("mem_stream"),
    )


def program_to_dict(program: Program) -> Dict:
    """Fully serialize a program (round-trips via
    :func:`program_from_dict`; the rebuilt behaviours start from their
    initial state, exactly like a fresh ``generate_program``)."""
    return {
        "name": program.name,
        "entry": program.entry,
        "blocks": [{
            "bb_id": block.bb_id,
            "address": block.address,
            "instructions": [_instruction_to_dict(inst)
                             for inst in block.instructions],
            "taken_target": block.taken_target,
            "fallthrough": block.fallthrough,
            "indirect_targets": list(block.indirect_targets),
            "branch_behavior": block.branch_behavior,
        } for block in program.blocks],
        "branch_behaviors": [_behavior_to_dict(behavior)
                             for behavior in program.branch_behaviors],
        "memory_streams": [_stream_to_dict(stream)
                           for stream in program.memory_streams],
    }


def program_from_dict(data: Dict) -> Program:
    """Inverse of :func:`program_to_dict`."""
    blocks = [BasicBlock(
        bb_id=raw["bb_id"],
        address=raw["address"],
        instructions=[_instruction_from_dict(inst)
                      for inst in raw["instructions"]],
        taken_target=raw.get("taken_target", -1),
        fallthrough=raw.get("fallthrough", -1),
        indirect_targets=tuple(raw.get("indirect_targets", ())),
        branch_behavior=raw.get("branch_behavior", -1),
    ) for raw in data["blocks"]]
    return Program(
        name=data["name"],
        blocks=blocks,
        entry=data.get("entry", 0),
        branch_behaviors=[_behavior_from_dict(raw)
                          for raw in data.get("branch_behaviors", [])],
        memory_streams=[_stream_from_dict(raw)
                        for raw in data.get("memory_streams", [])],
    )


# ----------------------------------------------------------------- entry

@dataclass
class CorpusEntry:
    """One minimized reproducer with its discovery context."""

    case_id: str
    kind: str  # "differential" or "acceptance"
    case: Dict  # FuzzCase.to_dict()
    report: Dict  # DifferentialReport/AcceptanceReport .to_dict()
    program: Dict  # program_to_dict() of the minimized reproducer
    minimization: Dict = field(default_factory=dict)
    chaos_spec: Optional[str] = None
    skew_injected: bool = False

    def to_dict(self) -> Dict:
        return {
            "schema": CORPUS_SCHEMA,
            "case_id": self.case_id,
            "kind": self.kind,
            "case": self.case,
            "report": self.report,
            "program": self.program,
            "minimization": self.minimization,
            "chaos_spec": self.chaos_spec,
            "skew_injected": self.skew_injected,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CorpusEntry":
        schema = data.get("schema", 0)
        if schema != CORPUS_SCHEMA:
            raise ReproError(
                f"corpus entry schema {schema} unsupported "
                f"(this build reads schema {CORPUS_SCHEMA})")
        return cls(
            case_id=data["case_id"],
            kind=data["kind"],
            case=data["case"],
            report=data["report"],
            program=data["program"],
            minimization=data.get("minimization", {}),
            chaos_spec=data.get("chaos_spec"),
            skew_injected=data.get("skew_injected", False),
        )


def entry_path(corpus_dir: str, case_id: str) -> str:
    return os.path.join(corpus_dir, f"{sanitize_unit_id(case_id)}.json")


def save_entry(corpus_dir: str, entry: CorpusEntry) -> str:
    """Write *entry* atomically; returns the path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = entry_path(corpus_dir, entry.case_id)
    write_json_atomic(path, entry.to_dict())
    return path


def load_entry(path: str) -> CorpusEntry:
    """Load one checksummed entry (raises ``ArtifactCorruptError`` on
    tamper/truncation)."""
    return CorpusEntry.from_dict(read_json_checked(path))


def list_entries(corpus_dir: str) -> List[str]:
    """Entry paths under *corpus_dir*, sorted for determinism."""
    if not os.path.isdir(corpus_dir):
        return []
    return sorted(
        os.path.join(corpus_dir, name)
        for name in os.listdir(corpus_dir)
        if name.endswith(".json")
    )
