"""Differential oracle: optimized pipeline vs the frozen reference.

Runs the same instruction stream through :class:`repro.cpu.pipeline.
SuperscalarPipeline` (event-driven, optimized) and :class:`repro.cpu.
reference.ReferencePipeline` (frozen, strictly cycle-by-cycle) and
diffs the results field-for-field: cycles, IPC, per-stage occupancies,
activity counters, branch/squash accounting, and the full retirement
schedule (``(cycle, pseq)`` commit logs).  The two implementations are
required to be *bit-identical*; any divergence is a bug in one of them.

The ``pipeline-skew`` chaos site lets tests and CI canaries prove the
oracle actually fires: when the active :class:`~repro.faults.ChaosPlan`
fires for a case token, the optimized result is perturbed by one cycle
before diffing, which must surface as a reported discrepancy (and is
flagged ``skew_injected`` so corpus entries stay honest about their
origin).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.cpu.pipeline import SuperscalarPipeline
from repro.cpu.reference import ReferencePipeline
from repro.cpu.results import SimulationResult
from repro.cpu.source import ExecutionDrivenSource, FetchSlot, PreannotatedSource
from repro.frontend.functional import run_program
from repro.isa.program import Program


@dataclass(frozen=True)
class FieldDiff:
    """One scalar field where the two pipelines disagreed."""

    field: str
    reference: float
    optimized: float

    def to_dict(self) -> Dict:
        return {"field": self.field, "reference": self.reference,
                "optimized": self.optimized}


@dataclass
class DifferentialReport:
    """Outcome of one reference-vs-optimized comparison."""

    identical: bool
    field_diffs: List[FieldDiff] = field(default_factory=list)
    #: First index where the retirement schedules diverge, with the
    #: ``(cycle, pseq)`` tuple each side produced (None = logs agree).
    first_retirement_divergence: Optional[Dict] = None
    skew_injected: bool = False

    def to_dict(self) -> Dict:
        return {
            "identical": self.identical,
            "field_diffs": [diff.to_dict() for diff in self.field_diffs],
            "first_retirement_divergence": self.first_retirement_divergence,
            "skew_injected": self.skew_injected,
        }

    def summary(self) -> str:
        if self.identical:
            return "pipelines identical"
        parts = [f"{diff.field}: ref={diff.reference} opt={diff.optimized}"
                 for diff in self.field_diffs[:4]]
        if self.first_retirement_divergence is not None:
            div = self.first_retirement_divergence
            parts.append(
                f"retirement diverges at index {div['index']}: "
                f"ref={div['reference']} opt={div['optimized']}")
        suffix = " [injected skew]" if self.skew_injected else ""
        return "; ".join(parts) + suffix


def _compare(reference: SimulationResult, optimized: SimulationResult,
             ref_log: List[Tuple[int, int]],
             opt_log: List[Tuple[int, int]]) -> DifferentialReport:
    diffs: List[FieldDiff] = []

    def check(name: str, ref_value, opt_value) -> None:
        if ref_value != opt_value:
            diffs.append(FieldDiff(name, ref_value, opt_value))

    check("cycles", reference.cycles, optimized.cycles)
    check("instructions", reference.instructions, optimized.instructions)
    check("ipc", reference.ipc, optimized.ipc)
    check("avg_ruu_occupancy", reference.avg_ruu_occupancy,
          optimized.avg_ruu_occupancy)
    check("avg_lsq_occupancy", reference.avg_lsq_occupancy,
          optimized.avg_lsq_occupancy)
    check("avg_ifq_occupancy", reference.avg_ifq_occupancy,
          optimized.avg_ifq_occupancy)
    check("branches", reference.branches, optimized.branches)
    check("taken_branches", reference.taken_branches,
          optimized.taken_branches)
    check("fetch_redirections", reference.fetch_redirections,
          optimized.fetch_redirections)
    check("branch_mispredictions", reference.branch_mispredictions,
          optimized.branch_mispredictions)
    check("squashed_instructions", reference.squashed_instructions,
          optimized.squashed_instructions)
    for key in sorted(set(reference.activity) | set(optimized.activity)):
        check(f"activity[{key}]", reference.activity.get(key, 0),
              optimized.activity.get(key, 0))

    divergence = None
    for index, (ref_entry, opt_entry) in enumerate(zip(ref_log, opt_log)):
        if ref_entry != opt_entry:
            divergence = {"index": index, "reference": list(ref_entry),
                          "optimized": list(opt_entry)}
            break
    if divergence is None and len(ref_log) != len(opt_log):
        index = min(len(ref_log), len(opt_log))
        divergence = {
            "index": index,
            "reference": (list(ref_log[index])
                          if index < len(ref_log) else None),
            "optimized": (list(opt_log[index])
                          if index < len(opt_log) else None),
        }

    return DifferentialReport(
        identical=not diffs and divergence is None,
        field_diffs=diffs,
        first_retirement_divergence=divergence,
    )


def _maybe_skew(chaos, token: str) -> bool:
    """Whether the active chaos plan asks us to perturb this case."""
    if chaos is None:
        return False
    skews = getattr(chaos, "skews_pipeline", None)  # legacy FaultPlan lacks it
    if skews is None:
        return False
    return skews(token)


def _apply_skew(result: SimulationResult,
                log: List[Tuple[int, int]]) -> SimulationResult:
    """Perturb a result by one cycle (the injected discrepancy)."""
    if log:
        cycle, pseq = log[-1]
        log[-1] = (cycle + 1, pseq)
    return dataclasses.replace(result, cycles=result.cycles + 1)


def diff_sources(config: MachineConfig, make_reference_source,
                 make_optimized_source, chaos=None,
                 token: str = "") -> DifferentialReport:
    """Run both pipelines over independently constructed sources."""
    ref_log: List[Tuple[int, int]] = []
    opt_log: List[Tuple[int, int]] = []
    reference = ReferencePipeline(config, make_reference_source()).run(
        commit_log=ref_log)
    optimized = SuperscalarPipeline(config, make_optimized_source()).run(
        commit_log=opt_log)
    skewed = _maybe_skew(chaos, token)
    if skewed:
        optimized = _apply_skew(optimized, opt_log)
    report = _compare(reference, optimized, ref_log, opt_log)
    report.skew_injected = skewed
    return report


def diff_program(program: Program, config: MachineConfig,
                 n_instructions: int, warmup: int = 0, chaos=None,
                 token: str = "") -> DifferentialReport:
    """Differential check over an execution-driven run of *program*.

    The functional front-end produces one trace; each pipeline then gets
    its own :class:`ExecutionDrivenSource` (own caches and predictor),
    exactly like the equivalence suite, so cache/predictor state never
    leaks between the two runs.
    """
    trace = run_program(program, n_instructions, warmup=warmup)
    return diff_sources(
        config,
        lambda: ExecutionDrivenSource(trace, config),
        lambda: ExecutionDrivenSource(trace, config),
        chaos=chaos,
        token=token,
    )


def diff_slots(slots: Sequence[FetchSlot], config: MachineConfig,
               chaos=None, token: str = "") -> DifferentialReport:
    """Differential check over a pre-annotated (synthetic) slot list."""
    slots = list(slots)
    return diff_sources(
        config,
        lambda: PreannotatedSource(list(slots)),
        lambda: PreannotatedSource(list(slots)),
        chaos=chaos,
        token=token,
    )
