"""Seeded random fuzz-case generation off the paper's benchmark grid.

Each :class:`FuzzCase` bundles everything one differential + acceptance
check needs: a randomly drawn :class:`~repro.workloads.generator.
WorkloadConfig` (program structure, instruction mix, branch behaviour
mixture, memory behaviour), a machine-configuration override set, and
the trace/synthesis knobs.  Case generation is a pure function of
``(fuzz seed, case index)`` — the per-case RNG is seeded with the
string ``"fuzz:<seed>:<index>"``, which CPython hashes through SHA-512
(``random.seed`` version 2), so cases are identical across processes
and unaffected by ``PYTHONHASHSEED``.

The sweeps deliberately leave the SPEC-like grid of
:mod:`repro.workloads.spec`: degenerate single-block programs, one-hot
instruction mixes, branch mixtures that are all-loop or all-random,
mixes with zero memory mass, tiny register files and pathological
machine shapes (tiny windows, starved FU pools, in-order issue) are all
in range — that is where pipeline and synthesis bugs hide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.config import MachineConfig, baseline_config
from repro.isa.iclass import IClass
from repro.isa.program import Program
from repro.workloads.generator import WorkloadConfig, generate_program

#: Block counts favouring the small CFGs that shrink well, with a tail
#: of larger ones exercising SFG growth.
_BLOCK_CHOICES = (1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64)

#: Non-branch classes a fuzz mix may weight (branch classes are
#: implicit: every basic block ends in one).
_MIX_CLASSES = (
    IClass.LOAD, IClass.STORE, IClass.INT_ALU, IClass.INT_MULT,
    IClass.INT_DIV, IClass.FP_ALU, IClass.FP_MULT, IClass.FP_DIV,
    IClass.FP_SQRT,
)

_STREAM_KINDS = ("strided", "random", "chase", "hot")

#: Machine-shape ingredients, composable: each entry is applied with an
#: independent probability so single pathologies and combinations both
#: appear.  Values mirror the structurally distinct pipeline paths the
#: equivalence suite names (in-order, tiny window, FU starvation, wide).
_MACHINE_INGREDIENTS = (
    {"in_order_issue": True},
    {"conservative_loads": True, "enforce_anti_dependencies": True},
    {"ruu_size": 4, "lsq_size": 2, "ifq_size": 2, "fetch_speed": 1},
    {"ruu_size": 16, "lsq_size": 8},
    {"int_alus": 1, "load_store_units": 1, "fp_adders": 1,
     "int_mult_divs": 1, "fp_mult_divs": 1},
    {"decode_width": 8, "issue_width": 8, "commit_width": 8,
     "ruu_size": 128},
    {"decode_width": 1, "issue_width": 1, "commit_width": 1},
    {"branch_misprediction_penalty": 2},
    {"branch_misprediction_penalty": 30},
    {"fetch_redirect_penalty": 9},
    {"frontend_depth": 1},
    {"frontend_depth": 8},
)


@dataclass(frozen=True)
class FuzzCase:
    """One fully specified fuzz case (program + machine + knobs)."""

    case_id: str
    seed: int
    index: int
    workload: WorkloadConfig
    machine_overrides: Dict[str, object] = field(default_factory=dict)
    trace_instructions: int = 3000
    warmup: int = 0
    reduction_factor: float = 4.0
    synthesis_seed: int = 0
    order: int = 1

    def machine_config(self) -> MachineConfig:
        config = baseline_config()
        if self.machine_overrides:
            config = replace(config, **self.machine_overrides)
        return config

    def program(self) -> Program:
        """Generate this case's program (fresh behaviours each call)."""
        return generate_program(self.workload)

    def to_dict(self) -> Dict:
        """JSON-compatible encoding (round-trips via :func:`case_from_dict`)."""
        workload = {
            "name": self.workload.name,
            "seed": self.workload.seed,
            "n_blocks": self.workload.n_blocks,
            "mean_block_size": self.workload.mean_block_size,
            "instruction_mix": {str(int(iclass)): weight
                                for iclass, weight
                                in self.workload.instruction_mix.items()},
            "n_registers": self.workload.n_registers,
            "working_set_kb": self.workload.working_set_kb,
            "stream_kinds": dict(self.workload.stream_kinds),
            "n_memory_streams": self.workload.n_memory_streams,
            "loop_fraction": self.workload.loop_fraction,
            "pattern_fraction": self.workload.pattern_fraction,
            "indirect_fraction": self.workload.indirect_fraction,
            "random_branch_bias": self.workload.random_branch_bias,
            "code_footprint_kb": self.workload.code_footprint_kb,
            "dependency_locality": self.workload.dependency_locality,
        }
        return {
            "case_id": self.case_id,
            "seed": self.seed,
            "index": self.index,
            "workload": workload,
            "machine_overrides": dict(self.machine_overrides),
            "trace_instructions": self.trace_instructions,
            "warmup": self.warmup,
            "reduction_factor": self.reduction_factor,
            "synthesis_seed": self.synthesis_seed,
            "order": self.order,
        }


def case_from_dict(data: Dict) -> FuzzCase:
    """Inverse of :meth:`FuzzCase.to_dict`."""
    raw = dict(data["workload"])
    raw["instruction_mix"] = {IClass(int(key)): weight for key, weight
                              in raw["instruction_mix"].items()}
    return FuzzCase(
        case_id=data["case_id"],
        seed=data["seed"],
        index=data["index"],
        workload=WorkloadConfig(**raw),
        machine_overrides=dict(data.get("machine_overrides", {})),
        trace_instructions=data["trace_instructions"],
        warmup=data.get("warmup", 0),
        reduction_factor=data["reduction_factor"],
        synthesis_seed=data.get("synthesis_seed", 0),
        order=data.get("order", 1),
    )


def _random_mix(rng: random.Random) -> Dict[IClass, float]:
    shape = rng.random()
    if shape < 0.10:
        # Degenerate one-hot mix (zero-probability classes everywhere
        # else); loads stay possible so memory paths are not starved.
        hot = rng.choice(_MIX_CLASSES)
        return {iclass: (1.0 if iclass is hot else 0.0)
                for iclass in _MIX_CLASSES}
    mix: Dict[IClass, float] = {}
    drop_memory = shape < 0.22  # pure-compute workload
    for iclass in _MIX_CLASSES:
        if drop_memory and iclass in (IClass.LOAD, IClass.STORE):
            mix[iclass] = 0.0
            continue
        # Exponential weights spread mixes across orders of magnitude;
        # a fifth of the entries are exactly zero.
        mix[iclass] = 0.0 if rng.random() < 0.2 else rng.expovariate(1.0)
    if sum(mix.values()) <= 0:
        mix[IClass.INT_ALU] = 1.0
    return mix


def _random_stream_kinds(rng: random.Random) -> Dict[str, float]:
    if rng.random() < 0.2:
        hot = rng.choice(_STREAM_KINDS)
        return {kind: (1.0 if kind == hot else 0.0)
                for kind in _STREAM_KINDS}
    kinds = {kind: (0.0 if rng.random() < 0.25 else rng.random())
             for kind in _STREAM_KINDS}
    if sum(kinds.values()) <= 0:
        kinds["strided"] = 1.0
    return kinds


def _random_machine_overrides(rng: random.Random) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for ingredient in _MACHINE_INGREDIENTS:
        if rng.random() < 0.12:
            overrides.update(ingredient)
    return overrides


def case_rng(seed: int, index: int) -> random.Random:
    """The per-case RNG: deterministic, process-independent."""
    return random.Random(f"fuzz:{seed}:{index}")


def random_case(seed: int, index: int) -> FuzzCase:
    """Draw fuzz case *index* of the stream identified by *seed*."""
    rng = case_rng(seed, index)
    case_id = f"case{index:03d}"

    mix = _random_mix(rng)
    uses_memory = (mix.get(IClass.LOAD, 0.0) > 0
                   or mix.get(IClass.STORE, 0.0) > 0)
    n_blocks = rng.choice(_BLOCK_CHOICES)
    # Branch-behaviour mixture over the full simplex, extremes included.
    shape = rng.random()
    if shape < 0.15:
        loop_fraction, pattern_fraction = 1.0, 0.0
    elif shape < 0.30:
        loop_fraction, pattern_fraction = 0.0, 0.0
    else:
        loop_fraction = rng.random()
        pattern_fraction = rng.uniform(0.0, 1.0 - loop_fraction)
    workload = WorkloadConfig(
        name=f"fuzz-{seed}-{index}",
        seed=rng.getrandbits(32),
        n_blocks=n_blocks,
        mean_block_size=rng.randint(1, 12),
        instruction_mix=mix,
        n_registers=rng.choice((4, 8, 12, 16, 24, 32, 48, 64)),
        working_set_kb=rng.choice((2, 4, 8, 16, 32, 64, 128, 256)),
        stream_kinds=_random_stream_kinds(rng),
        n_memory_streams=(rng.randint(1, 24) if uses_memory
                          else rng.choice((0, 0, 1, 4))),
        loop_fraction=loop_fraction,
        pattern_fraction=pattern_fraction,
        indirect_fraction=rng.choice((0.0, 0.0, 0.05, 0.1, 0.2, 0.3)),
        random_branch_bias=rng.uniform(0.05, 0.95),
        code_footprint_kb=rng.choice((1, 2, 4, 8, 16, 32, 64)),
        dependency_locality=rng.uniform(0.0, 0.95),
    )
    return FuzzCase(
        case_id=case_id,
        seed=seed,
        index=index,
        workload=workload,
        machine_overrides=_random_machine_overrides(rng),
        trace_instructions=rng.choice((1200, 2000, 3000, 4000)),
        warmup=rng.choice((0, 0, 0, 256)),
        reduction_factor=float(rng.choice((2, 3, 4, 6, 8))),
        synthesis_seed=rng.getrandbits(16),
        order=rng.choice((1, 1, 1, 2)),
    )


def generate_cases(seed: int, count: int) -> list:
    """The first *count* cases of stream *seed*."""
    return [random_case(seed, index) for index in range(count)]
