"""Parametric generator of synthetic workload programs.

:func:`generate_program` turns a :class:`WorkloadConfig` into a concrete
:class:`~repro.isa.program.Program`: a control-flow graph of basic blocks
with assigned instruction classes, register operands, branch behaviours
and memory streams.  Generation is fully deterministic given the config's
seed, so each named benchmark of :mod:`repro.workloads.spec` is a fixed,
reproducible program — the stand-in for a SPEC binary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import WorkloadSpecError
from repro.isa.iclass import IClass
from repro.isa.instruction import StaticInstruction
from repro.isa.program import INSTRUCTION_BYTES, BasicBlock, Program
from repro.workloads.behaviors import (
    IndirectBehavior,
    make_branch_behavior,
    make_memory_stream,
)

#: Data segment base address; code starts at 0x1000.
DATA_BASE = 0x10_0000
CODE_BASE = 0x1000

#: Default instruction mix (non-branch instructions) loosely matching an
#: integer SPEC-like profile: ~30% loads, ~12% stores, rest ALU-dominated.
DEFAULT_MIX: Dict[IClass, float] = {
    IClass.LOAD: 0.28,
    IClass.STORE: 0.12,
    IClass.INT_ALU: 0.50,
    IClass.INT_MULT: 0.04,
    IClass.INT_DIV: 0.01,
    IClass.FP_ALU: 0.03,
    IClass.FP_MULT: 0.015,
    IClass.FP_DIV: 0.004,
    IClass.FP_SQRT: 0.001,
}

#: Typical source-operand counts per instruction class.  Some classes mix
#: one- and two-operand forms, which is exactly the situation the paper
#: notes ("some instruction types ... may have a different number of
#: source operands").
_SRC_COUNT_CHOICES: Dict[IClass, Tuple[int, ...]] = {
    IClass.LOAD: (1, 1, 1, 2),
    IClass.STORE: (2,),
    IClass.INT_ALU: (2, 2, 2, 1),
    IClass.INT_MULT: (2,),
    IClass.INT_DIV: (2,),
    IClass.FP_ALU: (2, 2, 1),
    IClass.FP_MULT: (2,),
    IClass.FP_DIV: (2,),
    IClass.FP_SQRT: (1,),
    IClass.INT_COND_BRANCH: (1, 2),
    IClass.FP_COND_BRANCH: (1,),
    IClass.INDIRECT_BRANCH: (1,),
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters shaping one synthetic workload.

    The fields map onto the program properties the paper's methodology is
    sensitive to:

    * ``n_blocks`` / ``mean_block_size`` — static code structure; drives
      SFG size (Table 3) and basic-block granularity effects.
    * ``loop_fraction`` / ``pattern_fraction`` (remainder: biased-random)
      — branch predictability mixture; drives misprediction rates
      (Figures 3 and 5).
    * ``indirect_fraction`` — share of blocks ending in indirect
      branches (BTB misses -> fetch redirections / mispredictions).
    * ``working_set_kb`` plus stream-kind fractions — data locality;
      drives the six cache miss rates of section 2.1.2.
    * ``code_footprint_kb`` — instruction locality (L1 I-cache misses).
    * ``dependency_locality`` — register-reuse tightness; shapes the
      dependency-distance distributions (ILP).
    """

    name: str
    seed: int
    n_blocks: int = 64
    mean_block_size: int = 6
    instruction_mix: Dict[IClass, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX)
    )
    n_registers: int = 48
    working_set_kb: int = 64
    stream_kinds: Dict[str, float] = field(
        default_factory=lambda: {"strided": 0.4, "random": 0.2,
                                 "chase": 0.2, "hot": 0.2}
    )
    n_memory_streams: int = 16
    loop_fraction: float = 0.45
    pattern_fraction: float = 0.25
    indirect_fraction: float = 0.04
    random_branch_bias: float = 0.5
    code_footprint_kb: int = 16
    dependency_locality: float = 0.35

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise WorkloadSpecError(
                f"n_blocks must be >= 1, got {self.n_blocks}; a program "
                f"needs at least one basic block")
        if self.mean_block_size < 1:
            raise WorkloadSpecError(
                f"mean_block_size must be >= 1, got "
                f"{self.mean_block_size}")
        if self.n_registers < 1:
            raise WorkloadSpecError(
                f"n_registers must be >= 1, got {self.n_registers}; "
                f"instructions need registers to read and write")
        if not 0 <= self.loop_fraction + self.pattern_fraction <= 1:
            raise WorkloadSpecError(
                f"loop_fraction + pattern_fraction must lie in [0, 1], "
                f"got {self.loop_fraction} + {self.pattern_fraction} = "
                f"{self.loop_fraction + self.pattern_fraction}")
        if not 0 <= self.indirect_fraction <= 0.5:
            raise WorkloadSpecError(
                f"indirect_fraction must be in [0, 0.5], got "
                f"{self.indirect_fraction}")
        for iclass, weight in self.instruction_mix.items():
            if weight < 0:
                raise WorkloadSpecError(
                    f"instruction mix weight for {iclass.name} is "
                    f"negative ({weight}); weights are relative "
                    f"frequencies")
        total = sum(self.instruction_mix.values())
        if total <= 0:
            raise WorkloadSpecError(
                "instruction mix must have positive mass; every class "
                "weight is zero or the mix is empty")
        for iclass in self.instruction_mix:
            if iclass in (IClass.INT_COND_BRANCH, IClass.FP_COND_BRANCH,
                          IClass.INDIRECT_BRANCH):
                raise WorkloadSpecError(
                    "branch classes are implicit; exclude them from "
                    "instruction_mix")
        # Memory instructions need streams to draw addresses from; a
        # mix without loads/stores legitimately needs neither streams
        # nor stream kinds (zero-probability behaviour classes are a
        # valid way to disable a dimension, not an error).
        uses_memory = any(
            weight > 0 for iclass, weight in self.instruction_mix.items()
            if iclass in (IClass.LOAD, IClass.STORE))
        if uses_memory and self.n_memory_streams < 1:
            raise WorkloadSpecError(
                f"the instruction mix contains loads/stores but "
                f"n_memory_streams is {self.n_memory_streams}; memory "
                f"instructions need at least one stream (or remove "
                f"LOAD/STORE mass from the mix)")
        if self.n_memory_streams < 0:
            raise WorkloadSpecError(
                f"n_memory_streams must be >= 0, got "
                f"{self.n_memory_streams}")
        for kind, weight in self.stream_kinds.items():
            if weight < 0:
                raise WorkloadSpecError(
                    f"stream kind {kind!r} has negative weight "
                    f"({weight})")
        if self.n_memory_streams > 0 \
                and sum(self.stream_kinds.values()) <= 0:
            raise WorkloadSpecError(
                "stream_kinds must have positive mass when "
                "n_memory_streams > 0 (or set n_memory_streams=0 and "
                "drop LOAD/STORE from the mix)")


def _sample_mix(rng: random.Random, mix: Dict[IClass, float]) -> IClass:
    """Sample an instruction class from a (possibly unnormalized) mix.

    Zero-weight entries are never returned — not even through the
    floating-point fallback below, which otherwise could hand back a
    zero-probability class when ``x`` lands within rounding error of
    the total.
    """
    total = sum(mix.values())
    if total <= 0:
        raise WorkloadSpecError(
            "cannot sample from a mix with no positive mass")
    x = rng.random() * total
    acc = 0.0
    last_positive = None
    for iclass, weight in mix.items():
        if weight <= 0:
            continue
        last_positive = iclass
        acc += weight
        if x < acc:
            return iclass
    return last_positive


def _pick_sources(rng: random.Random, count: int, recent: List[int],
                  locality: float, n_registers: int) -> Tuple[int, ...]:
    """Pick *count* source registers, preferring recently written ones.

    With probability *locality* a source is drawn from the tail of the
    recent-writers list with geometric recency decay; otherwise uniformly.
    Tighter locality -> shorter dynamic dependency distances -> less ILP.
    """
    sources = []
    for _ in range(count):
        if recent and rng.random() < locality:
            depth = min(len(recent), 1 + int(rng.expovariate(1.0) * 4))
            sources.append(recent[-rng.randint(1, depth)])
        else:
            sources.append(rng.randrange(n_registers))
    return tuple(sources)


def _generate_block_body(rng: random.Random, config: WorkloadConfig,
                         size: int, recent: List[int]) -> List[StaticInstruction]:
    """Generate the non-branch instructions of one basic block."""
    body = []
    for _ in range(size):
        iclass = _sample_mix(rng, config.instruction_mix)
        n_src = rng.choice(_SRC_COUNT_CHOICES[iclass])
        src_regs = _pick_sources(rng, n_src, recent,
                                 config.dependency_locality,
                                 config.n_registers)
        dst_reg = None
        mem_stream = None
        if iclass is IClass.STORE:
            mem_stream = rng.randrange(config.n_memory_streams)
        else:
            dst_reg = rng.randrange(config.n_registers)
            recent.append(dst_reg)
            if len(recent) > 64:
                del recent[0]
            if iclass is IClass.LOAD:
                mem_stream = rng.randrange(config.n_memory_streams)
        body.append(StaticInstruction(iclass=iclass, src_regs=src_regs,
                                      dst_reg=dst_reg, mem_stream=mem_stream))
    return body


def generate_program(config: WorkloadConfig) -> Program:
    """Generate the deterministic program described by *config*."""
    rng = random.Random(config.seed)
    n = config.n_blocks

    # --- Behaviour kind per block -------------------------------------
    kinds = []
    for _ in range(n):
        x = rng.random()
        if x < config.loop_fraction:
            kinds.append("loop")
        elif x < config.loop_fraction + config.pattern_fraction:
            kinds.append("pattern")
        else:
            kinds.append("random")
    indirect_blocks = set(
        rng.sample(range(n), max(0, int(round(config.indirect_fraction * n))))
    )

    # --- Code layout ---------------------------------------------------
    # Blocks are laid out in id order with random gaps so the static code
    # spans roughly ``code_footprint_kb`` of address space; a footprint
    # exceeding the L1 I-cache induces instruction misses.
    sizes = []
    for _ in range(n):
        # At least one body instruction: branch-only blocks would make
        # tight loops degenerate into pure branch streams.
        body = max(1, int(rng.gauss(config.mean_block_size - 1,
                                    config.mean_block_size / 2.5)))
        sizes.append(body + 1)  # +1 for the terminating branch
    packed_bytes = sum(sizes) * INSTRUCTION_BYTES
    footprint = max(config.code_footprint_kb * 1024, packed_bytes)
    slack = footprint - packed_bytes
    gaps = [0] * n
    for _ in range(n):
        gaps[rng.randrange(n)] += slack // n
    addresses = []
    cursor = CODE_BASE
    for i in range(n):
        addresses.append(cursor)
        cursor += sizes[i] * INSTRUCTION_BYTES + gaps[i]

    # --- Memory streams --------------------------------------------------
    memory_streams = []
    stream_base = DATA_BASE
    per_stream_bytes = max(4096, config.working_set_kb * 1024
                           // max(1, config.n_memory_streams))
    for _ in range(config.n_memory_streams):
        kind = _sample_mix(rng, dict(config.stream_kinds))  # type: ignore[arg-type]
        memory_streams.append(
            make_memory_stream(kind, rng, base=stream_base,
                               working_set=per_stream_bytes)
        )
        stream_base += per_stream_bytes + 4096

    # --- Blocks ---------------------------------------------------------
    blocks: List[BasicBlock] = []
    branch_behaviors: list = []
    recent_writers: List[int] = []
    for i in range(n):
        body = _generate_block_body(rng, config, sizes[i] - 1, recent_writers)
        fallthrough = (i + 1) % n
        if i in indirect_blocks:
            branch_class = IClass.INDIRECT_BRANCH
            n_targets = rng.randint(2, 6)
            targets = tuple(
                sorted(rng.sample(range(n), min(n_targets, n)))
            )
            behavior = IndirectBehavior(
                n_targets=len(targets),
                switch_period=rng.choice((50, 100, 200, 400)),
                seed=rng.getrandbits(32),
            )
            taken_target = targets[0]
        else:
            branch_class = IClass.INT_COND_BRANCH
            targets = ()
            if kinds[i] == "loop":
                # Backedge: to self or a nearby earlier block.
                taken_target = rng.randint(max(0, i - 3), i)
            else:
                # Forward jump within a window, wrapping at the end.
                # Tiny CFGs leave no room for the usual [2, 12] window:
                # with two blocks the only forward jump is the other
                # block, and a single block can only target itself.
                span = min(12, n - 1)
                jump = rng.randint(2, span) if span >= 2 else span
                taken_target = (i + jump) % n
            p_taken = config.random_branch_bias
            if kinds[i] == "random":
                p_taken = min(0.95, max(0.05,
                                        rng.gauss(config.random_branch_bias,
                                                  0.15)))
            behavior = make_branch_behavior(kinds[i], rng, p_taken=p_taken)
        n_src = rng.choice(_SRC_COUNT_CHOICES[branch_class])
        branch = StaticInstruction(
            iclass=branch_class,
            src_regs=_pick_sources(rng, n_src, recent_writers,
                                   config.dependency_locality,
                                   config.n_registers),
        )
        branch_behaviors.append(behavior)
        blocks.append(
            BasicBlock(
                bb_id=i,
                address=addresses[i],
                instructions=body + [branch],
                taken_target=taken_target,
                fallthrough=fallthrough,
                indirect_targets=targets,
                branch_behavior=i,
            )
        )

    return Program(
        name=config.name,
        blocks=blocks,
        entry=0,
        branch_behaviors=branch_behaviors,
        memory_streams=memory_streams,
    )
