"""The ten SPECint2000-named synthetic workloads (substitution for the
paper's Alpha SPEC binaries — see DESIGN.md section 2).

Each configuration gives its namesake's qualitative personality from the
paper's Table 1 and the SPEC literature:

* **bzip2 / gzip** — streaming compressors: strided memory sweeps,
  highly predictable branches, small code; high baseline IPC (paper:
  1.83 / 1.94).
* **crafty** — chess: large random hash-table working set, hard
  data-dependent branches; lowest IPC (paper: 0.51).
* **eon** — C++ ray tracer: FP-flavoured mix, many indirect branches
  (virtual dispatch); IPC 0.81.
* **gcc** — compiler: by far the largest static code footprint (largest
  SFG in the paper's Table 3), mixed behaviour; IPC 1.37.
* **parser** — dictionary parser: pointer chasing, mixed branches;
  IPC 1.03.
* **perlbmk** — interpreter: indirect dispatch loop, patterned
  branches, sizable code; IPC 0.97.
* **twolf** — place & route: random accesses over a big working set,
  poorly predictable branches; IPC 0.64.
* **vortex** — OO database: large code, regular branches, moderate
  memory; IPC 1.11.
* **vpr** — FPGA place & route: pointer chasing plus random branches,
  tiny hot code (smallest SFG in Table 3); IPC 0.69.

Static block counts are scaled versions of the paper's Table 3 ordering
(gcc >> vortex > crafty > parser > others > vpr).
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.iclass import IClass
from repro.isa.program import Program
from repro.workloads.generator import DEFAULT_MIX, WorkloadConfig, generate_program


def _mix(**overrides: float) -> Dict[IClass, float]:
    """DEFAULT_MIX with named overrides, e.g. ``_mix(LOAD=0.35)``."""
    mix = dict(DEFAULT_MIX)
    for name, value in overrides.items():
        mix[IClass[name]] = value
    return mix


SPEC_INT_2000: Dict[str, WorkloadConfig] = {
    "bzip2": WorkloadConfig(
        name="bzip2", seed=0xB21, n_blocks=48, mean_block_size=9,
        instruction_mix=_mix(LOAD=0.26, STORE=0.10, INT_ALU=0.56),
        working_set_kb=96,
        stream_kinds={"strided": 0.75, "random": 0.05, "hot": 0.2},
        loop_fraction=0.62, pattern_fraction=0.24, indirect_fraction=0.0,
        code_footprint_kb=6, dependency_locality=0.22,
    ),
    "crafty": WorkloadConfig(
        name="crafty", seed=0xC4A, n_blocks=160, mean_block_size=5,
        instruction_mix=_mix(LOAD=0.31, STORE=0.09, INT_ALU=0.47),
        working_set_kb=2048,
        stream_kinds={"strided": 0.1, "random": 0.6, "chase": 0.2,
                      "hot": 0.1},
        loop_fraction=0.24, pattern_fraction=0.26, indirect_fraction=0.02,
        random_branch_bias=0.25, code_footprint_kb=48,
        dependency_locality=0.55,
    ),
    "eon": WorkloadConfig(
        name="eon", seed=0xE08, n_blocks=56, mean_block_size=7,
        instruction_mix=_mix(LOAD=0.27, STORE=0.13, INT_ALU=0.34,
                             FP_ALU=0.14, FP_MULT=0.07, FP_DIV=0.012,
                             FP_SQRT=0.006),
        working_set_kb=48,
        stream_kinds={"strided": 0.4, "random": 0.15, "chase": 0.15,
                      "hot": 0.3},
        loop_fraction=0.36, pattern_fraction=0.3, indirect_fraction=0.11,
        random_branch_bias=0.3, code_footprint_kb=24, dependency_locality=0.5,
    ),
    "gcc": WorkloadConfig(
        name="gcc", seed=0x6CC, n_blocks=400, mean_block_size=5,
        instruction_mix=_mix(LOAD=0.30, STORE=0.13, INT_ALU=0.47),
        working_set_kb=512,
        stream_kinds={"strided": 0.3, "random": 0.25, "chase": 0.25,
                      "hot": 0.2},
        loop_fraction=0.32, pattern_fraction=0.3, indirect_fraction=0.05,
        random_branch_bias=0.3, code_footprint_kb=64, dependency_locality=0.35,
    ),
    "gzip": WorkloadConfig(
        name="gzip", seed=0x621, n_blocks=32, mean_block_size=10,
        instruction_mix=_mix(LOAD=0.24, STORE=0.09, INT_ALU=0.59),
        working_set_kb=64,
        stream_kinds={"strided": 0.8, "hot": 0.2},
        loop_fraction=0.66, pattern_fraction=0.22, indirect_fraction=0.0,
        code_footprint_kb=4, dependency_locality=0.2,
    ),
    "parser": WorkloadConfig(
        name="parser", seed=0x9A5, n_blocks=200, mean_block_size=7,
        instruction_mix=_mix(LOAD=0.30, STORE=0.11, INT_ALU=0.49),
        working_set_kb=1536,
        stream_kinds={"strided": 0.15, "random": 0.2, "chase": 0.45,
                      "hot": 0.2},
        loop_fraction=0.3, pattern_fraction=0.32, indirect_fraction=0.03,
        random_branch_bias=0.3, code_footprint_kb=32, dependency_locality=0.55,
    ),
    "perlbmk": WorkloadConfig(
        name="perlbmk", seed=0x9E7, n_blocks=72, mean_block_size=6,
        instruction_mix=_mix(LOAD=0.29, STORE=0.14, INT_ALU=0.47),
        working_set_kb=128,
        stream_kinds={"strided": 0.25, "random": 0.2, "chase": 0.25,
                      "hot": 0.3},
        loop_fraction=0.24, pattern_fraction=0.42, indirect_fraction=0.12,
        random_branch_bias=0.3, code_footprint_kb=40, dependency_locality=0.4,
    ),
    "twolf": WorkloadConfig(
        name="twolf", seed=0x270, n_blocks=48, mean_block_size=5,
        instruction_mix=_mix(LOAD=0.32, STORE=0.10, INT_ALU=0.46,
                             FP_ALU=0.05, FP_MULT=0.02),
        working_set_kb=1024,
        stream_kinds={"strided": 0.1, "random": 0.55, "chase": 0.25,
                      "hot": 0.1},
        loop_fraction=0.24, pattern_fraction=0.3, indirect_fraction=0.02,
        random_branch_bias=0.3, code_footprint_kb=16,
        dependency_locality=0.55,
    ),
    "vortex": WorkloadConfig(
        name="vortex", seed=0x0E7, n_blocks=220, mean_block_size=6,
        instruction_mix=_mix(LOAD=0.31, STORE=0.15, INT_ALU=0.46),
        working_set_kb=256,
        stream_kinds={"strided": 0.35, "random": 0.2, "chase": 0.2,
                      "hot": 0.25},
        loop_fraction=0.48, pattern_fraction=0.32, indirect_fraction=0.04,
        random_branch_bias=0.25, code_footprint_kb=40, dependency_locality=0.32,
    ),
    "vpr": WorkloadConfig(
        name="vpr", seed=0x09F, n_blocks=24, mean_block_size=6,
        instruction_mix=_mix(LOAD=0.30, STORE=0.10, INT_ALU=0.45,
                             FP_ALU=0.07, FP_MULT=0.03, FP_DIV=0.008),
        working_set_kb=768,
        stream_kinds={"strided": 0.1, "random": 0.35, "chase": 0.45,
                      "hot": 0.1},
        loop_fraction=0.42, pattern_fraction=0.18, indirect_fraction=0.02,
        random_branch_bias=0.3, code_footprint_kb=8,
        dependency_locality=0.5,
    ),
}


def benchmark_names() -> List[str]:
    """Names of the ten workloads, in the paper's (alphabetical) order."""
    return list(SPEC_INT_2000)


def build_benchmark(name: str) -> Program:
    """Generate the named workload program (deterministic)."""
    try:
        config = SPEC_INT_2000[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(SPEC_INT_2000)}"
        ) from None
    return generate_program(config)


def build_suite(names: List[str] | None = None) -> Dict[str, Program]:
    """Generate all (or the selected) workloads of the suite."""
    selected = names if names is not None else benchmark_names()
    return {name: build_benchmark(name) for name in selected}
