"""Microbenchmarks with analytically known behaviour.

Unlike the SPEC-named suite (statistically generated), these kernels
are hand-built so their performance on a given machine is predictable
in closed form.  They serve three purposes: validating the simulators
(tests assert the analytic expectations), stressing one mechanism at a
time (dependency chains, branch patterns, memory levels), and giving
users minimal starting points for custom workloads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.iclass import IClass
from repro.isa.instruction import StaticInstruction
from repro.isa.program import BasicBlock, Program
from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    LoopBehavior,
    PatternBehavior,
    PointerChaseStream,
    RandomStream,
    StridedStream,
)

_DATA = 0x10_0000


def _alu(dst: int, *src: int) -> StaticInstruction:
    return StaticInstruction(IClass.INT_ALU, src_regs=tuple(src),
                             dst_reg=dst)


def _load(dst: int, addr_reg: int, stream: int) -> StaticInstruction:
    return StaticInstruction(IClass.LOAD, src_regs=(addr_reg,),
                             dst_reg=dst, mem_stream=stream)


def _branch(*src: int) -> StaticInstruction:
    return StaticInstruction(IClass.INT_COND_BRANCH,
                             src_regs=tuple(src))


def _single_block(name: str, instructions: List[StaticInstruction],
                  behavior, streams: list) -> Program:
    block = BasicBlock(bb_id=0, address=0x1000,
                       instructions=instructions, taken_target=0,
                       fallthrough=0, branch_behavior=0)
    return Program(name=name, blocks=[block], entry=0,
                   branch_behaviors=[behavior], memory_streams=streams)


def independent_alu_kernel(block_size: int = 16) -> Program:
    """Fully independent ALU operations: IPC should approach the
    machine's width limits (each instruction writes its own register
    and reads registers nothing in the loop writes)."""
    if not 2 <= block_size <= 30:
        raise ValueError("block_size must be in [2, 30]")
    body = [_alu(dst, 32, 33) for dst in range(block_size - 1)]
    return _single_block("micro/independent-alu",
                         body + [_branch(32)],
                         PatternBehavior("T"), [])


def serial_chain_kernel(block_size: int = 16) -> Program:
    """A pure RAW dependency chain: every instruction reads the
    previous one's destination, capping IPC near 1."""
    if not 3 <= block_size <= 30:
        raise ValueError("block_size must be in [3, 30]")
    # Every instruction reads and rewrites r1, so the chain continues
    # across block boundaries — blocks must not start fresh chains or
    # the window extracts inter-block parallelism.
    body = [_alu(1, 1) for _ in range(block_size - 1)]
    return _single_block("micro/serial-chain", body + [_branch(1)],
                         PatternBehavior("T"), [])


def pointer_chase_kernel(working_set_kb: int = 512,
                         chain_loads: int = 4) -> Program:
    """Serially dependent loads over a large working set: each load's
    address register is the previous load's result, so load latencies
    serialize.  IPC ~ block_size / (chain_loads * load_latency)."""
    stream = PointerChaseStream(base=_DATA,
                                n_nodes=working_set_kb * 1024 // 64,
                                node_bytes=64, seed=5)
    body: List[StaticInstruction] = []
    for _ in range(chain_loads):
        body.append(_load(1, 1, 0))
    return _single_block("micro/pointer-chase", body + [_branch(1)],
                         PatternBehavior("T"), [stream])


def streaming_kernel(array_kb: int = 256) -> Program:
    """A strided sweep with independent work: misses once per line,
    hits otherwise; latency overlapped by independent ALU work."""
    stream = StridedStream(base=_DATA, stride=8, length=array_kb * 1024)
    body = [_load(1, 32, 0), _alu(2, 1), _alu(3, 32, 33),
            _alu(4, 32, 33), _alu(5, 32, 33)]
    return _single_block("micro/streaming", body + [_branch(2)],
                         PatternBehavior("T"), [stream])


def branch_torture_kernel(p_taken: float = 0.5, seed: int = 7) -> Program:
    """Unpredictable branches back-to-back: misprediction rate should
    approach min(p, 1-p) and dominate run time."""
    block0 = BasicBlock(
        bb_id=0, address=0x1000,
        instructions=[_alu(1, 2), _branch(1)],
        taken_target=1, fallthrough=1, branch_behavior=0)
    block1 = BasicBlock(
        bb_id=1, address=0x2000,
        instructions=[_alu(2, 1), _branch(2)],
        taken_target=0, fallthrough=0, branch_behavior=1)
    return Program(
        name="micro/branch-torture",
        blocks=[block0, block1], entry=0,
        branch_behaviors=[BiasedRandomBehavior(p_taken, seed),
                          BiasedRandomBehavior(p_taken, seed + 1)],
        memory_streams=[])


def loop_nest_kernel(inner_trips: int = 16, outer_trips: int = 64
                     ) -> Program:
    """A classic two-deep loop nest: inner backedge taken
    ``inner_trips - 1`` of ``inner_trips`` times, outer likewise —
    highly predictable, with a known basic-block frequency ratio."""
    inner = BasicBlock(
        bb_id=0, address=0x1000,
        instructions=[_load(1, 32, 0), _alu(2, 1, 2), _branch(2)],
        taken_target=0, fallthrough=1, branch_behavior=0)
    outer = BasicBlock(
        bb_id=1, address=0x2000,
        instructions=[_alu(3, 2), _branch(3)],
        taken_target=0, fallthrough=0, branch_behavior=1)
    stream = RandomStream(base=_DATA, working_set=4096, seed=3)
    return Program(
        name="micro/loop-nest",
        blocks=[inner, outer], entry=0,
        branch_behaviors=[LoopBehavior(inner_trips),
                          LoopBehavior(outer_trips)],
        memory_streams=[stream])


MICROBENCHMARKS = {
    "independent-alu": independent_alu_kernel,
    "serial-chain": serial_chain_kernel,
    "pointer-chase": pointer_chase_kernel,
    "streaming": streaming_kernel,
    "branch-torture": branch_torture_kernel,
    "loop-nest": loop_nest_kernel,
}


def build_microbenchmark(name: str, **kwargs) -> Program:
    """Build a microbenchmark by name (see :data:`MICROBENCHMARKS`)."""
    try:
        factory = MICROBENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown microbenchmark {name!r}; known: "
            f"{', '.join(MICROBENCHMARKS)}"
        ) from None
    return factory(**kwargs)


def microbenchmark_names() -> List[str]:
    return list(MICROBENCHMARKS)
