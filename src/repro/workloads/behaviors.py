"""Run-time behaviour generators for synthetic programs.

Two families of generators give the synthetic workloads realistic
dynamics:

* **Branch behaviours** decide the outcome of a basic block's terminating
  branch each time it executes.  Their mixture controls how predictable a
  workload is — loop backedges and short periodic patterns are easy for
  the Table 2 hybrid predictor, biased coin flips are hard — which is what
  makes the paper's delayed-update branch profiling study (Figures 3/5)
  meaningful.
* **Memory streams** produce effective addresses for loads and stores.
  Strided sweeps, pointer chases and random accesses over configurable
  working sets control the cache miss rates that the profiler annotates
  onto the statistical flow graph.

All generators are deterministic given their constructor arguments (any
randomness comes from an explicit seed) and restartable via ``reset()``.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence


class BranchBehavior(Protocol):
    """Decides conditional branch outcomes for one static branch site."""

    def next_taken(self) -> bool:
        """Return the outcome of the next dynamic execution."""
        ...

    def reset(self) -> None:
        """Restart the behaviour from its initial state."""
        ...


class LoopBehavior:
    """A loop backedge: taken ``trip_count - 1`` times, then not taken.

    This is the classic highly-predictable branch; a bimodal predictor
    mispredicts only the exit, and a local-history predictor with history
    length >= trip_count captures it exactly.
    """

    __slots__ = ("trip_count", "_i")

    def __init__(self, trip_count: int) -> None:
        if trip_count < 1:
            raise ValueError("trip_count must be >= 1")
        self.trip_count = trip_count
        self._i = 0

    def next_taken(self) -> bool:
        self._i += 1
        if self._i >= self.trip_count:
            self._i = 0
            return False
        return True

    def reset(self) -> None:
        self._i = 0


class PatternBehavior:
    """A cyclic taken/not-taken pattern, e.g. ``"TTNTN"``.

    Periodic patterns are predictable by local two-level predictors when
    the period fits in the history register, and systematically
    mispredicted by bimodal predictors when near 50% biased.
    """

    __slots__ = ("pattern", "_i")

    def __init__(self, pattern: str) -> None:
        if not pattern or set(pattern) - {"T", "N"}:
            raise ValueError("pattern must be a non-empty string of T/N")
        self.pattern = pattern
        self._i = 0

    def next_taken(self) -> bool:
        taken = self.pattern[self._i] == "T"
        self._i = (self._i + 1) % len(self.pattern)
        return taken

    def reset(self) -> None:
        self._i = 0


class BiasedRandomBehavior:
    """An unpredictable branch: independent Bernoulli draws.

    The achievable prediction accuracy is ``max(p, 1-p)``; these branches
    set the floor on a workload's misprediction rate.
    """

    __slots__ = ("p_taken", "_seed", "_rng")

    def __init__(self, p_taken: float, seed: int) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError("p_taken must be in [0, 1]")
        self.p_taken = p_taken
        self._seed = seed
        self._rng = random.Random(seed)

    def next_taken(self) -> bool:
        return self._rng.random() < self.p_taken

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class IndirectBehavior:
    """Chooses among an indirect branch's targets.

    A skewed target distribution with occasional switches models virtual
    dispatch: mostly monomorphic (BTB-friendly) with bursts of
    polymorphism (BTB misses -> mispredictions, paper section 2.1.2).
    """

    __slots__ = ("n_targets", "switch_period", "_seed", "_rng", "_current", "_i")

    def __init__(self, n_targets: int, switch_period: int, seed: int) -> None:
        if n_targets < 1:
            raise ValueError("n_targets must be >= 1")
        if switch_period < 1:
            raise ValueError("switch_period must be >= 1")
        self.n_targets = n_targets
        self.switch_period = switch_period
        self._seed = seed
        self.reset()

    def next_target(self) -> int:
        self._i += 1
        if self._i >= self.switch_period:
            self._i = 0
            self._current = self._rng.randrange(self.n_targets)
        return self._current

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._current = self._rng.randrange(self.n_targets)
        self._i = 0


class MemoryStream(Protocol):
    """Produces effective addresses for one static memory instruction."""

    def next_address(self) -> int:
        ...

    def reset(self) -> None:
        ...


class StridedStream:
    """A sequential array sweep: ``base, base+stride, ...`` wrapping at
    ``length`` bytes.

    With a cache line of L bytes and stride s < L this hits on
    ``1 - s/L`` of accesses once the array exceeds the cache — the
    streaming behaviour of compression/media codes (bzip2, gzip).
    """

    __slots__ = ("base", "stride", "length", "_offset")

    def __init__(self, base: int, stride: int, length: int) -> None:
        if stride <= 0 or length <= 0:
            raise ValueError("stride and length must be positive")
        self.base = base
        self.stride = stride
        self.length = length
        self._offset = 0

    def next_address(self) -> int:
        addr = self.base + self._offset
        self._offset += self.stride
        if self._offset >= self.length:
            self._offset = 0
        return addr

    def reset(self) -> None:
        self._offset = 0


class RandomStream:
    """Uniform random accesses over a working set.

    The working-set size relative to the cache controls the miss rate:
    a set much larger than L1 but inside L2 yields L1 misses that hit in
    L2; one larger than L2 yields main-memory traffic.
    """

    __slots__ = ("base", "working_set", "align", "_seed", "_rng")

    def __init__(self, base: int, working_set: int, align: int = 8,
                 seed: int = 0) -> None:
        if working_set <= 0:
            raise ValueError("working_set must be positive")
        self.base = base
        self.working_set = working_set
        self.align = align
        self._seed = seed
        self._rng = random.Random(seed)

    def next_address(self) -> int:
        slots = self.working_set // self.align
        return self.base + self._rng.randrange(slots) * self.align

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class PointerChaseStream:
    """A pseudo-random permutation walk over a working set.

    Models linked-data-structure traversal (parser, twolf, vpr): each
    access lands on a different cache line with no spatial locality, but
    the *sequence* is fixed, so temporal reuse appears when the walk
    wraps.  The permutation is a simple LCG-style full-cycle generator.
    """

    __slots__ = ("base", "n_nodes", "node_bytes", "_state", "_start")

    def __init__(self, base: int, n_nodes: int, node_bytes: int = 64,
                 seed: int = 1) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.base = base
        self.n_nodes = n_nodes
        self.node_bytes = node_bytes
        self._start = seed % n_nodes
        self._state = self._start

    def next_address(self) -> int:
        addr = self.base + self._state * self.node_bytes
        # Full-cycle step: works for any n_nodes because gcd checks below.
        self._state = (self._state * 5 + 3) % self.n_nodes
        return addr

    def reset(self) -> None:
        self._state = self._start


def make_branch_behavior(kind: str, rng: random.Random,
                         p_taken: float = 0.5) -> BranchBehavior:
    """Build a branch behaviour of the given *kind* using *rng* for its
    parameters (trip counts, patterns, seeds).

    Kinds: ``"loop"``, ``"pattern"``, ``"random"``.
    """
    if kind == "loop":
        return LoopBehavior(
            trip_count=rng.choice((8, 12, 16, 24, 32, 48, 64, 100)))
    if kind == "pattern":
        length = rng.choice((2, 3, 4, 5, 6, 8))
        pattern = "".join(rng.choice("TN") for _ in range(length))
        if "T" not in pattern:
            pattern = "T" + pattern[1:]
        return PatternBehavior(pattern)
    if kind == "random":
        return BiasedRandomBehavior(p_taken=p_taken, seed=rng.getrandbits(32))
    raise ValueError(f"unknown branch behaviour kind: {kind!r}")


def make_memory_stream(kind: str, rng: random.Random, base: int,
                       working_set: int) -> MemoryStream:
    """Build a memory stream of the given *kind* over *working_set* bytes.

    Kinds: ``"strided"``, ``"random"``, ``"chase"``, ``"hot"`` (a small
    always-resident region regardless of the nominal working set).
    """
    if kind == "strided":
        return StridedStream(base=base, stride=rng.choice((4, 8, 8, 16)),
                             length=working_set)
    if kind == "random":
        return RandomStream(base=base, working_set=working_set,
                            seed=rng.getrandbits(32))
    if kind == "chase":
        node_bytes = 64
        n_nodes = max(1, working_set // node_bytes)
        return PointerChaseStream(base=base, n_nodes=n_nodes,
                                  node_bytes=node_bytes,
                                  seed=rng.getrandbits(16) | 1)
    if kind == "hot":
        return RandomStream(base=base, working_set=min(working_set, 2048),
                            seed=rng.getrandbits(32))
    raise ValueError(f"unknown memory stream kind: {kind!r}")


__all__: Sequence[str] = (
    "BranchBehavior",
    "LoopBehavior",
    "PatternBehavior",
    "BiasedRandomBehavior",
    "IndirectBehavior",
    "MemoryStream",
    "StridedStream",
    "RandomStream",
    "PointerChaseStream",
    "make_branch_behavior",
    "make_memory_stream",
)
