"""Synthetic workload programs standing in for SPECint2000 binaries.

The paper profiles ten SPEC CINT2000 Alpha binaries.  Those binaries (and
an Alpha functional simulator) are unavailable here, so this package
provides the substitution described in DESIGN.md: a parametric program
generator (:mod:`repro.workloads.generator`) and a suite of ten
deterministic workload configurations (:mod:`repro.workloads.spec`) named
after the paper's benchmarks, spanning a comparable range of control-flow
regularity, instruction mix, branch predictability and memory locality.
"""

from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    BranchBehavior,
    IndirectBehavior,
    LoopBehavior,
    MemoryStream,
    PatternBehavior,
    PointerChaseStream,
    RandomStream,
    StridedStream,
)
from repro.workloads.generator import WorkloadConfig, generate_program
from repro.workloads.spec import (
    SPEC_INT_2000,
    benchmark_names,
    build_benchmark,
    build_suite,
)
from repro.workloads.micro import (
    MICROBENCHMARKS,
    build_microbenchmark,
    microbenchmark_names,
)

__all__ = [
    "BranchBehavior",
    "LoopBehavior",
    "PatternBehavior",
    "BiasedRandomBehavior",
    "IndirectBehavior",
    "MemoryStream",
    "StridedStream",
    "RandomStream",
    "PointerChaseStream",
    "WorkloadConfig",
    "generate_program",
    "SPEC_INT_2000",
    "benchmark_names",
    "build_benchmark",
    "build_suite",
    "MICROBENCHMARKS",
    "build_microbenchmark",
    "microbenchmark_names",
]
