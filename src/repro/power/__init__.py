"""Architectural power modeling (Wattch stand-in).

The paper estimates on-chip power with Wattch v1.02 (0.18um, 1.2 GHz,
aggressive cc3 clock gating).  This package provides an analytic
activity-driven model with the same two properties the paper's results
depend on: per-unit max power scales with structure size (so design
sweeps move EPC the right way) and per-cycle energy scales with unit
activity under cc3-style gating (so EPC tracks utilization).
"""

from repro.power.wattch import (
    PowerBreakdown,
    WattchPowerModel,
    energy_delay_product,
)

__all__ = ["WattchPowerModel", "PowerBreakdown", "energy_delay_product"]
