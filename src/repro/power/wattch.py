"""Analytic Wattch-style power model with cc3 clock gating.

Per unit, a *max power* is derived from the machine configuration using
standard scaling rules (array power grows with entries and ports, cache
power with capacity and associativity).  Per simulation, the unit's
energy per cycle follows the paper's cc3 gating description:

    "a unit that is unused consumes 10% of its max power and a unit that
    is only used for a fraction x only consumes a fraction x of its max
    power"

which we apply in expectation over the run:
``EPC_unit = Pmax * (0.1 + 0.9 * duty)`` with ``duty`` the unit's average
per-cycle utilization (accesses per cycle over peak accesses per cycle,
or average occupancy over capacity for storage arrays).

Absolute Watts are calibrated to a plausible 0.18um/1.2GHz budget
(~100 W peak for the Table 2 machine); the reproduction targets relative
behaviour, not Wattch's absolute numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.config import MachineConfig
from repro.cpu.results import SimulationResult

#: cc3: an unused unit still burns this fraction of its max power.
IDLE_FRACTION = 0.1


@dataclass(frozen=True)
class PowerBreakdown:
    """Energy per cycle, per unit and total (Watts at fixed frequency)."""

    per_unit: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_unit.values())

    def unit(self, name: str) -> float:
        try:
            return self.per_unit[name]
        except KeyError:
            raise ValueError(
                f"unknown power unit {name!r}; known: "
                f"{', '.join(sorted(self.per_unit))}"
            ) from None


class WattchPowerModel:
    """Per-unit max powers for one machine configuration."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        predictor = config.predictor
        predictor_entries = (
            predictor.meta_entries + predictor.bimodal_entries
            + predictor.local_history_entries + predictor.local_pht_entries
            + predictor.btb_entries * 2
        )
        self.max_power: Dict[str, float] = {
            # Storage arrays: ~entries * sqrt(ports)
            "ruu": 0.040 * config.ruu_size * math.sqrt(config.issue_width),
            "lsq": 0.080 * config.lsq_size,
            # Front end
            "fetch": 0.15 * math.sqrt(config.ifq_size * config.fetch_width),
            "dispatch": 0.40 * config.decode_width,
            "bpred": 0.015 * math.sqrt(predictor_entries),
            # Selection + wakeup grows with window and width
            "issue": 0.10 * config.issue_width * math.sqrt(config.ruu_size),
            # Caches: ~sqrt(capacity) * sqrt(associativity)
            "il1": 0.020 * math.sqrt(config.il1.size_bytes
                                     * config.il1.associativity),
            "dl1": 0.020 * math.sqrt(config.dl1.size_bytes
                                     * config.dl1.associativity),
            "l2": 0.006 * math.sqrt(config.l2.size_bytes
                                    * config.l2.associativity),
            # Functional units
            "int_alu": 0.6 * config.int_alus,
            "load_store": 0.8 * config.load_store_units,
            "fp_adder": 1.2 * config.fp_adders,
            "int_mult_div": 1.0 * config.int_mult_divs,
            "fp_mult_div": 1.5 * config.fp_mult_divs,
            "resultbus": 0.25 * config.issue_width,
        }
        # Clock tree: a fixed share of everything it feeds (Wattch
        # attributes a large share of total power to the clock network).
        self.max_power["clock"] = 0.35 * sum(self.max_power.values())

    # ------------------------------------------------------------------
    def _duties(self, result: SimulationResult) -> Dict[str, float]:
        """Average per-cycle utilization of each unit in [0, 1]."""
        config = self.config
        cycles = max(result.cycles, 1)
        activity = result.activity

        def rate(key: str, peak_per_cycle: float) -> float:
            if peak_per_cycle <= 0:
                return 0.0
            return min(1.0, activity.get(key, 0) / (cycles * peak_per_cycle))

        duties = {
            "ruu": min(1.0, result.avg_ruu_occupancy / config.ruu_size),
            "lsq": min(1.0, result.avg_lsq_occupancy / config.lsq_size),
            "fetch": rate("fetch", config.fetch_width),
            "dispatch": rate("dispatch", config.decode_width),
            "bpred": rate("bpred", 2.0),
            "issue": rate("issue", config.issue_width),
            "il1": rate("il1", config.fetch_width),
            "dl1": rate("dl1", config.load_store_units),
            "l2": rate("l2", 1.0),
            "int_alu": rate("int_alu", config.int_alus),
            "load_store": rate("load_store", config.load_store_units),
            "fp_adder": rate("fp_adder", config.fp_adders),
            "int_mult_div": rate("int_mult_div", config.int_mult_divs),
            "fp_mult_div": rate("fp_mult_div", config.fp_mult_divs),
            "resultbus": rate("issue", config.issue_width),
        }
        duties["clock"] = min(1.0, result.ipc / config.commit_width)
        return duties

    def energy_per_cycle(self, result: SimulationResult) -> PowerBreakdown:
        """EPC (the paper's Watt/cycle metric) with cc3 gating."""
        duties = self._duties(result)
        per_unit = {
            name: pmax * (IDLE_FRACTION + (1.0 - IDLE_FRACTION) * duties[name])
            for name, pmax in self.max_power.items()
        }
        return PowerBreakdown(per_unit=per_unit)

    def epc(self, result: SimulationResult) -> float:
        """Total energy per cycle for *result*."""
        return self.energy_per_cycle(result).total


def energy_delay_product(epc: float, ipc: float) -> float:
    """EDP = EPC * CPI^2 (paper section 4.2.3, after [3])."""
    if ipc <= 0:
        return float("inf")
    return epc / (ipc * ipc)
