"""Machine configurations (the paper's Table 2 and its sweeps).

Every simulator component (branch predictors, caches, the out-of-order
core and the power model) is constructed from a :class:`MachineConfig`,
so a design-space sweep is just a sequence of configs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache size and line size must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                f"{self.name}: size must be a multiple of line*assoc"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    def scaled(self, factor: float) -> "CacheConfig":
        """Return a config with the capacity scaled by *factor* (the
        paper's cache sweep scales sizes by 1/4x..4x)."""
        new_size = int(self.size_bytes * factor)
        line_assoc = self.line_bytes * self.associativity
        new_size = max(line_assoc, (new_size // line_assoc) * line_assoc)
        return replace(self, size_bytes=new_size)


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of a translation lookaside buffer."""

    name: str
    entries: int
    associativity: int
    page_bytes: int = 4096
    miss_latency: int = 30

    @property
    def num_sets(self) -> int:
        return max(1, self.entries // self.associativity)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """The Table 2 hybrid predictor: a meta table chooses between a
    bimodal table and a two-level local predictor whose local history is
    XOR-ed with the branch PC; plus a set-associative BTB and an RAS."""

    meta_entries: int = 8192
    bimodal_entries: int = 8192
    local_history_entries: int = 8192
    local_pht_entries: int = 8192
    local_history_bits: int = 13
    btb_entries: int = 512
    btb_associativity: int = 4
    ras_entries: int = 64

    def scaled(self, factor: float) -> "BranchPredictorConfig":
        """Scale all table sizes by *factor* (the paper's branch
        predictor sweep uses base/4 .. base*4)."""
        return replace(
            self,
            meta_entries=max(4, int(self.meta_entries * factor)),
            bimodal_entries=max(4, int(self.bimodal_entries * factor)),
            local_history_entries=max(4, int(self.local_history_entries * factor)),
            local_pht_entries=max(4, int(self.local_pht_entries * factor)),
            btb_entries=max(self.btb_associativity,
                            int(self.btb_entries * factor)),
        )


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description (paper Table 2 defaults).

    ``fetch_speed`` multiplies the decode width to give the raw fetch
    bandwidth, as in sim-outorder (Table 2: "8 decode width (fetch
    speed = 2)").
    """

    # Front end.  ``frontend_depth`` is the number of pipeline stages an
    # instruction spends between fetch and dispatch (on top of IFQ
    # residency); together with the IFQ it sets the distance over which
    # branch predictor updates are delayed (section 2.1.3).
    ifq_size: int = 32
    fetch_speed: int = 2
    decode_width: int = 8
    frontend_depth: int = 4
    # Out-of-order core
    ruu_size: int = 128
    lsq_size: int = 32
    issue_width: int = 8
    commit_width: int = 8
    # Functional units (paper Table 2)
    int_alus: int = 8
    load_store_units: int = 4
    fp_adders: int = 2
    int_mult_divs: int = 2
    fp_mult_divs: int = 2
    # Execution model extensions (paper section 2.1.1: "this approach
    # could be extended to also include WAW and WAR dependencies to
    # account for a limited number of physical registers or in-order
    # execution").
    in_order_issue: bool = False
    enforce_anti_dependencies: bool = False
    # Conservative memory disambiguation: a load may not issue before
    # the most recent earlier store has executed (no speculative
    # store-bypass).  Applies identically to execution-driven and
    # synthetic-trace simulation.
    conservative_loads: bool = False
    # Penalties / latencies
    branch_misprediction_penalty: int = 14
    fetch_redirect_penalty: int = 3
    memory_latency: int = 150
    # Locality structures
    il1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "il1", 8 * 1024, 2, 32, 1))
    dl1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "dl1", 16 * 1024, 4, 32, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "ul2", 1024 * 1024, 4, 64, 20))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(
        "itlb", 32, 8))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(
        "dtlb", 32, 8))
    predictor: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig)
    # Power model (paper: 0.18um, 1.2 GHz, cc3 clock gating)
    clock_ghz: float = 1.2

    def __post_init__(self) -> None:
        if self.lsq_size > self.ruu_size:
            raise ValueError("LSQ may not be larger than the RUU (paper "
                             "section 4.6 constraint)")
        for name in ("ifq_size", "decode_width", "issue_width",
                     "commit_width", "ruu_size", "lsq_size"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def fetch_width(self) -> int:
        return self.decode_width * self.fetch_speed

    def with_window(self, ruu_size: int, lsq_size: int) -> "MachineConfig":
        return replace(self, ruu_size=ruu_size, lsq_size=lsq_size)

    def with_width(self, width: int) -> "MachineConfig":
        """Set decode = issue = commit width (paper's width sweep)."""
        return replace(self, decode_width=width, issue_width=width,
                       commit_width=width)

    def with_ifq(self, ifq_size: int) -> "MachineConfig":
        return replace(self, ifq_size=ifq_size)

    def with_predictor_scale(self, factor: float) -> "MachineConfig":
        return replace(self, predictor=self.predictor.scaled(factor))

    def with_cache_scale(self, factor: float) -> "MachineConfig":
        """Scale all cache capacities by *factor*."""
        return replace(self, il1=self.il1.scaled(factor),
                       dl1=self.dl1.scaled(factor),
                       l2=self.l2.scaled(factor))

    def functional_unit_counts(self) -> Dict[str, int]:
        return {
            "int_alu": self.int_alus,
            "load_store": self.load_store_units,
            "fp_adder": self.fp_adders,
            "int_mult_div": self.int_mult_divs,
            "fp_mult_div": self.fp_mult_divs,
        }


def baseline_config() -> MachineConfig:
    """The paper's Table 2 baseline configuration."""
    return MachineConfig()


def simplescalar_default_config() -> MachineConfig:
    """SimpleScalar's out-of-the-box configuration, used by the paper for
    the HLS comparison (section 4.3): 4-wide, 16-entry RUU, 8-entry LSQ,
    smaller bimodal-style predictor."""
    return MachineConfig(
        ifq_size=4,
        fetch_speed=1,
        decode_width=4,
        issue_width=4,
        commit_width=4,
        ruu_size=16,
        lsq_size=8,
        int_alus=4,
        load_store_units=2,
        fp_adders=4,
        int_mult_divs=1,
        fp_mult_divs=1,
        branch_misprediction_penalty=3,
        predictor=BranchPredictorConfig(
            meta_entries=1024, bimodal_entries=2048,
            local_history_entries=1024, local_pht_entries=1024,
            local_history_bits=10, btb_entries=512, btb_associativity=4,
            ras_entries=8,
        ),
    )
