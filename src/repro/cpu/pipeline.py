"""Cycle-based superscalar out-of-order pipeline.

The stage structure follows sim-outorder (the paper's simulator):

* **fetch** — up to ``decode_width * fetch_speed`` instructions per cycle
  into the IFQ; a taken branch ends the fetch group; I-cache misses stall
  the fetch engine; a fetch redirection (BTB miss on a correctly
  predicted taken branch) costs a short front-end bubble; a mispredicted
  branch switches fetch to wrong-path filler instructions until the
  branch resolves (paper section 2.3).
* **dispatch** — up to ``decode_width`` from IFQ into the RUU (and LSQ
  for memory ops); RAW dependencies resolve against the last 512
  dispatched instructions by dependency distance; branch predictors are
  speculatively updated here (dispatch-time update, section 2.1.3).
* **issue/execute** — up to ``issue_width`` data-ready instructions to
  the functional-unit pool each cycle, oldest first.
* **writeback** — completions wake dependents; a resolving mispredicted
  branch squashes all younger instructions and redirects fetch after the
  misprediction penalty.
* **commit** — up to ``commit_width`` completed instructions in order
  from the RUU head.

Per-cycle occupancies and per-unit activity counts feed the power model.

This is the event-driven implementation (see ``docs/performance.md``):
after any cycle in which no stage did work, the clock fast-forwards to
the next scheduled event (earliest functional-unit completion, fetch
unblock, or IFQ-head decode readiness) and the skipped idle cycles are
accounted analytically.  ``_Inflight`` records are pooled, and the RUU
and IFQ are index-based ring buffers instead of deques.  The results
are cycle-for-cycle identical to the strictly iterative loop preserved
in :mod:`repro.cpu.reference`, which
``tests/test_pipeline_equivalence.py`` enforces exactly.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.obs.metrics import record_simulation
from repro.isa.iclass import FunctionalUnit
from repro.branch.unit import BranchOutcome
from repro.cpu.results import SimulationResult
from repro.cpu.source import (ColumnarSource, FetchSlot,
                              InstructionSource, PreannotatedSource,
                              _FILLER_CACHE, _filler_slot)

from repro.health.budget import checkpoint as _health_checkpoint

#: Dependency-resolution window (matches the profile's distance cap).
_HISTORY = 512

#: Cycles between cooperative health checkpoints (deadline check,
#: progress heartbeat, RSS guardrail — :mod:`repro.health`).  The
#: checkpoint consumes no randomness and touches no machine state, so
#: the simulated results are bit-identical with or without a budget;
#: the in-loop cost is one integer comparison per cycle.
_HEALTH_EVERY = 4096


class _Inflight:
    """Book-keeping for one instruction in the pipeline.

    Instances are pooled: a record is recycled once nothing can
    reference it again — at commit (after its history slot, waiter list
    and store-forwarding pointer are cleared) or when the IFQ is
    squashed before the instruction ever dispatched.  Squashed RUU
    instructions are *not* recycled; they may still sit in the ready
    heap or a completion bucket, where the ``squashed`` flag keeps them
    inert.
    """

    # ``row`` is only populated (and only read) by the columnar fast
    # path, which carries the instruction's immutable data — latency,
    # FU index, dependency tuple, load/store/mem flags, control byte —
    # as one prebuilt tuple instead of a FetchSlot.
    __slots__ = ("slot", "pseq", "pending", "waiters", "completed",
                 "squashed", "recover", "wrong_path", "is_mem",
                 "decode_ready", "issued", "hist_slot", "row")

    def __init__(self, slot: FetchSlot, pseq: int, wrong_path: bool) -> None:
        self.slot = slot
        self.pseq = pseq
        self.decode_ready = 0
        self.issued = False
        self.pending = 0
        self.waiters: List["_Inflight"] = []
        self.completed = False
        self.squashed = False
        self.recover = False
        self.wrong_path = wrong_path
        self.is_mem = slot.is_mem
        self.hist_slot = -1


class SuperscalarPipeline:
    """One configured out-of-order core; call :meth:`run` once."""

    def __init__(self, config: MachineConfig,
                 source: InstructionSource) -> None:
        # MachineConfig validates its own widths/sizes; these are the
        # derived and unvalidated knobs a livelocked pipeline would
        # otherwise only reveal as an infinite loop.
        for knob in ("fetch_width", "ifq_size", "decode_width",
                     "issue_width", "commit_width", "ruu_size"):
            value = getattr(config, knob)
            if value < 1:
                raise SimulationError(
                    f"machine config {knob} must be >= 1, got {value!r}; "
                    f"the pipeline cannot make progress")
        self.config = config
        self.source = source

    def run(self, max_cycles: Optional[int] = None,
            commit_log: Optional[list] = None) -> SimulationResult:
        """Simulate until the source drains; return the result.

        When *commit_log* is a list, every retired instruction appends
        ``(cycle, pseq)`` to it in retirement order — the differential
        fuzzing oracle (:mod:`repro.fuzz.oracle`) diffs this schedule
        against the reference pipeline's.  ``None`` (the default) keeps
        the commit stage allocation-free.
        """
        config = self.config
        source = self.source
        if isinstance(source, ColumnarSource) and not config.in_order_issue:
            # Columnar fast path: same machine, no per-instruction
            # objects (see _run_columnar).  In-order issue walks the
            # RUU through slot objects, so it stays on the generic
            # loop via the source's protocol methods.
            return self._run_columnar(max_cycles, commit_log)
        fetch_width = config.fetch_width
        decode_width = config.decode_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        ifq_size = config.ifq_size
        ruu_size = config.ruu_size
        lsq_size = config.lsq_size
        mispredict_penalty = config.branch_misprediction_penalty
        redirect_penalty = config.fetch_redirect_penalty
        frontend_depth = config.frontend_depth
        in_order = config.in_order_issue
        conservative_loads = config.conservative_loads
        source_fetch = source.fetch
        source_peek_filler = source.peek_filler
        source_on_dispatch = source.on_dispatch
        # Fast path for the statistical simulator: a PreannotatedSource
        # is a plain replay buffer with no locality state, so fetch and
        # wrong-path peeking inline to a list index (its cursor is
        # written back on every exit).  Execution-driven sources keep
        # the method calls — their fetch runs caches and a predictor.
        if isinstance(source, PreannotatedSource):
            pre_slots = source._slots
            pre_len = len(pre_slots)
            pre_pos = source._pos
        else:
            pre_slots = None
            pre_len = pre_pos = 0
        filler_cache_get = _FILLER_CACHE.get
        heap_push = heappush
        heap_pop = heappop
        last_store: Optional[_Inflight] = None
        # FU pools indexed by FunctionalUnit value (an IntEnum); the
        # FetchSlot precomputes ``fu_index`` so the issue stage indexes
        # plain lists instead of hashing enum keys.
        fu_caps: List[int] = [0] * len(FunctionalUnit)
        fu_caps[FunctionalUnit.INT_ALU] = config.int_alus
        fu_caps[FunctionalUnit.LOAD_STORE] = config.load_store_units
        fu_caps[FunctionalUnit.FP_ADDER] = config.fp_adders
        fu_caps[FunctionalUnit.INT_MULT_DIV] = config.int_mult_divs
        fu_caps[FunctionalUnit.FP_MULT_DIV] = config.fp_mult_divs
        fu_counts: List[int] = [0] * len(FunctionalUnit)

        # Index-based ring buffers: the RUU and IFQ have hard capacity
        # bounds, so a fixed list with head/count cursors replaces the
        # deque (no per-cycle allocation, O(1) everything).
        ruu_buf: List[Optional[_Inflight]] = [None] * ruu_size
        ruu_head = 0
        ruu_count = 0
        ifq_buf: List[Optional[_Inflight]] = [None] * ifq_size
        ifq_head = 0
        ifq_count = 0

        # Ready queue, split by arrival order.  Instructions that are
        # data-ready at dispatch arrive in strictly increasing pseq
        # (dispatch drains the in-order IFQ and pseq never rewinds), so
        # a plain FIFO list holds them with no heap discipline at all.
        # Only writeback wakeups (arbitrary order) and FU-contention
        # deferrals go through a real heap; issue pops the global
        # pseq-minimum across both, which preserves oldest-first issue
        # exactly.
        rq_fifo: List[_Inflight] = []
        rq_head = 0
        rq_heap: list = []  # heap of (pseq, _Inflight)
        completing: Dict[int, List[_Inflight]] = {}
        event_times: list = []  # heap of completion cycles (one per key)
        history: List[Optional[_Inflight]] = [None] * _HISTORY
        hist_pos = 0
        dispatch_count = 0
        lsq_count = 0
        free: List[_Inflight] = []  # recycled _Inflight records
        free_pop = free.pop
        free_append = free.append

        cycle = 0
        next_health = _HEALTH_EVERY
        fetch_block_until = 0
        episode: Optional[_Inflight] = None  # unresolved mispredicted branch
        filler_offset = 0
        exhausted = False
        pseq_counter = 0
        committed = 0

        # Accounting
        ruu_occupancy_sum = 0
        lsq_occupancy_sum = 0
        ifq_occupancy_sum = 0
        squashed_total = 0
        branches = taken_branches = redirections = mispredictions = 0
        act_fetch = act_dispatch = act_issue = act_commit = 0
        act_bpred = act_il1 = act_dl1 = act_l2 = 0

        if max_cycles is None:
            source_len = len(source) if hasattr(source, "__len__") else 0
            max_cycles = 1000 * max(source_len, 1) + 100_000

        while True:
            # ---------------------------------------------------- commit
            retired = 0
            while ruu_count and retired < commit_width:
                head = ruu_buf[ruu_head]
                if not head.completed:
                    break
                # The vacated slot is not cleared: ring entries beyond
                # ``count`` are never read, only overwritten.
                ruu_head += 1
                if ruu_head == ruu_size:
                    ruu_head = 0
                ruu_count -= 1
                if head.is_mem:
                    lsq_count -= 1
                retired += 1
                if commit_log is not None:
                    commit_log.append((cycle, head.pseq))
                # Recycle: a committed record is inert everywhere it
                # may still appear (completed=True short-circuits the
                # dependency paths), so clearing those references and
                # pooling it is behaviour-preserving.  hist_slot is
                # always valid here: commit implies dispatch, which
                # assigned it.
                slot_index = head.hist_slot
                if history[slot_index] is head:
                    history[slot_index] = None
                if head.waiters:
                    head.waiters.clear()
                if last_store is head:
                    last_store = None
                free_append(head)
            act_commit += retired
            committed += retired

            # ------------------------------------------------- writeback
            # ``event_times`` and ``completing`` move in lockstep: a
            # cycle is pushed exactly when its bucket is created and
            # popped exactly when it is drained, so the heap top tells
            # whether anything completes this cycle without touching
            # the dict.
            if event_times and event_times[0] == cycle:
                heap_pop(event_times)
                done = completing.pop(cycle)
                for inst in done:
                    if inst.squashed:
                        continue
                    inst.completed = True
                    waiters = inst.waiters
                    if waiters:
                        for waiter in waiters:
                            if waiter.squashed:
                                continue
                            waiter.pending -= 1
                            if waiter.pending == 0:
                                heap_push(rq_heap, (waiter.pseq, waiter))
                    if inst.recover:
                        # Mispredicted branch resolves: squash younger.
                        pseq_limit = inst.pseq
                        while ruu_count:
                            tail = ruu_head + ruu_count - 1
                            if tail >= ruu_size:
                                tail -= ruu_size
                            victim = ruu_buf[tail]
                            if victim.pseq <= pseq_limit:
                                break
                            ruu_buf[tail] = None
                            ruu_count -= 1
                            victim.squashed = True
                            if victim.is_mem:
                                lsq_count -= 1
                            squashed_total += 1
                        squashed_total += ifq_count
                        index = ifq_head
                        for _ in range(ifq_count):
                            junk = ifq_buf[index]
                            ifq_buf[index] = None
                            index += 1
                            if index == ifq_size:
                                index = 0
                            # Never dispatched: nothing references it.
                            free_append(junk)
                        ifq_head = 0
                        ifq_count = 0
                        episode = None
                        filler_offset = 0
                        if cycle + mispredict_penalty > fetch_block_until:
                            fetch_block_until = cycle + mispredict_penalty
                worked = True
            else:
                worked = retired > 0

            # ----------------------------------------------------- issue
            if in_order:
                # In-order issue: instructions leave for the functional
                # units strictly in program order; the first stalled
                # instruction blocks all younger ones.
                issued = 0
                fu_free = fu_caps[:]
                index = ruu_head
                for _ in range(ruu_count):
                    inst = ruu_buf[index]
                    index += 1
                    if index == ruu_size:
                        index = 0
                    if issued >= issue_width:
                        break
                    if inst.issued:
                        continue
                    slot = inst.slot
                    fi = slot.fu_index
                    if inst.pending > 0 or fu_free[fi] <= 0:
                        break
                    fu_free[fi] -= 1
                    inst.issued = True
                    issued += 1
                    fu_counts[fi] += 1
                    finish = cycle + slot.exec_latency
                    bucket = completing.get(finish)
                    if bucket is None:
                        completing[finish] = [inst]
                        heap_push(event_times, finish)
                    else:
                        bucket.append(inst)
                act_issue += issued
                if issued:
                    worked = True
            elif rq_heap or rq_head < len(rq_fifo):
                fu_free = fu_caps[:]
                issued = 0
                deferred = []
                n_deferred = 0
                rq_tail = len(rq_fifo)
                while issued < issue_width and n_deferred < 64:
                    # Pop the lowest pseq across the FIFO and the heap.
                    if rq_head < rq_tail:
                        inst = rq_fifo[rq_head]
                        if rq_heap and rq_heap[0][0] < inst.pseq:
                            inst = heap_pop(rq_heap)[1]
                        else:
                            rq_head += 1
                    elif rq_heap:
                        inst = heap_pop(rq_heap)[1]
                    else:
                        break
                    if inst.squashed:
                        continue
                    slot = inst.slot
                    fi = slot.fu_index
                    if fu_free[fi] > 0:
                        fu_free[fi] -= 1
                        inst.issued = True
                        issued += 1
                        fu_counts[fi] += 1
                        finish = cycle + slot.exec_latency
                        bucket = completing.get(finish)
                        if bucket is None:
                            completing[finish] = [inst]
                            heap_push(event_times, finish)
                        else:
                            bucket.append(inst)
                    else:
                        deferred.append((inst.pseq, inst))
                        n_deferred += 1
                # Deferred instructions re-enter via the heap after the
                # scan (never mid-scan: each blocked instruction must be
                # passed over exactly once per cycle, as the reference
                # loop does).
                for item in deferred:
                    heap_push(rq_heap, item)
                if rq_head == rq_tail and rq_head:
                    del rq_fifo[:rq_head]
                    rq_head = 0
                act_issue += issued
                if issued:
                    worked = True

            # -------------------------------------------------- dispatch
            dispatched = 0
            while (ifq_count and dispatched < decode_width
                   and ruu_count < ruu_size):
                inst = ifq_buf[ifq_head]
                if inst.decode_ready > cycle:
                    break  # still in the decode/rename front-end stages
                if inst.is_mem and lsq_count >= lsq_size:
                    break
                ifq_head += 1
                if ifq_head == ifq_size:
                    ifq_head = 0
                ifq_count -= 1
                tail = ruu_head + ruu_count
                if tail >= ruu_size:
                    tail -= ruu_size
                ruu_buf[tail] = inst
                ruu_count += 1
                if inst.is_mem:
                    lsq_count += 1
                slot = inst.slot
                if slot.is_branch and not inst.wrong_path:
                    if pre_slots is None:
                        source_on_dispatch(slot)
                    act_bpred += 1
                # Resolve RAW dependencies against dispatch history.
                distances = slot.dep_distances
                if distances:
                    for distance in distances:
                        if distance > dispatch_count or distance > _HISTORY:
                            continue
                        index = hist_pos - distance
                        if index < 0:
                            index += _HISTORY
                        producer = history[index]
                        if (producer is None or producer.completed
                                or producer.squashed):
                            continue
                        inst.pending += 1
                        producer.waiters.append(inst)
                if conservative_loads:
                    if (slot.is_load and last_store is not None
                            and not last_store.completed
                            and not last_store.squashed):
                        inst.pending += 1
                        last_store.waiters.append(inst)
                    if slot.is_store:
                        last_store = inst
                history[hist_pos] = inst
                inst.hist_slot = hist_pos
                hist_pos += 1
                if hist_pos == _HISTORY:
                    hist_pos = 0
                dispatch_count += 1
                dispatched += 1
                if inst.pending == 0:
                    rq_fifo.append(inst)
            act_dispatch += dispatched
            if dispatched:
                worked = True

            # ----------------------------------------------------- fetch
            if cycle >= fetch_block_until:
                fetched = 0
                decode_ready = cycle + frontend_depth
                while fetched < fetch_width and ifq_count < ifq_size:
                    if episode is not None:
                        if pre_slots is not None:
                            iclass = pre_slots[(pre_pos + filler_offset)
                                               % pre_len].iclass
                            slot = filler_cache_get(iclass)
                            if slot is None:
                                slot = _filler_slot(iclass)
                        else:
                            slot = source_peek_filler(filler_offset)
                            if slot is None:
                                break
                        filler_offset += 1
                        wrong_path = True
                    elif exhausted:
                        break
                    else:
                        if pre_slots is not None:
                            if pre_pos >= pre_len:
                                exhausted = True
                                break
                            slot = pre_slots[pre_pos]
                            pre_pos += 1
                        else:
                            slot = source_fetch()
                            if slot is None:
                                exhausted = True
                                break
                        wrong_path = False
                    if free:
                        # Pooled records need no pending/squashed/
                        # hist_slot reset: pending is always 0 by the
                        # time a record is recyclable, only RUU-squashed
                        # records (never recycled) carry squashed=True,
                        # and hist_slot is only read at commit, which
                        # dispatch always re-assigns first.
                        inst = free_pop()
                        inst.slot = slot
                        inst.pseq = pseq_counter
                        inst.decode_ready = decode_ready
                        inst.issued = False
                        inst.completed = False
                        inst.recover = False
                        inst.wrong_path = wrong_path
                        inst.is_mem = slot.is_mem
                    else:
                        inst = _Inflight(slot, pseq_counter, wrong_path)
                        inst.decode_ready = decode_ready
                    pseq_counter += 1
                    tail = ifq_head + ifq_count
                    if tail >= ifq_size:
                        tail -= ifq_size
                    ifq_buf[tail] = inst
                    ifq_count += 1
                    fetched += 1
                    if wrong_path:
                        # Fillers are inert by construction (see
                        # _filler_slot): no locality events, no branch
                        # outcome, no fetch stall — they only occupy
                        # fetch/window/FU resources and D-cache ports.
                        if inst.is_mem:
                            act_dl1 += 1
                        continue
                    act_l2 += slot.il1_miss
                    if inst.is_mem:
                        act_dl1 += 1
                        act_l2 += slot.dl1_miss
                    if slot.is_branch:
                        act_bpred += 1
                        branches += 1
                        outcome = slot.outcome
                        if slot.taken:
                            taken_branches += 1
                        if outcome is BranchOutcome.MISPREDICTION:
                            mispredictions += 1
                            inst.recover = True
                            episode = inst
                            filler_offset = 0
                        elif outcome is BranchOutcome.FETCH_REDIRECTION:
                            redirections += 1
                            fetch_block_until = cycle + 1 + redirect_penalty
                            break
                        if slot.taken:
                            break
                    if slot.fetch_stall:
                        fetch_block_until = cycle + 1 + slot.fetch_stall
                        break
                act_fetch += fetched
                act_il1 += fetched
                if fetched:
                    worked = True

            # ------------------------------------------------ accounting
            ruu_occupancy_sum += ruu_count
            lsq_occupancy_sum += lsq_count
            ifq_occupancy_sum += ifq_count
            cycle += 1
            if cycle >= next_health:
                next_health = cycle + _HEALTH_EVERY
                _health_checkpoint(committed)

            if exhausted and not ifq_count and not ruu_count:
                break
            if cycle >= max_cycles:
                if pre_slots is not None:
                    source._pos = pre_pos
                raise RuntimeError(
                    f"pipeline did not drain within {max_cycles} cycles "
                    f"({committed} committed)"
                )

            if not worked:
                # Event-driven fast-forward: a cycle in which every
                # stage was a no-op leaves the machine state untouched,
                # so nothing can change before the next scheduled event
                # — the earliest completion, the fetch unblock, or the
                # IFQ head leaving the decode front-end.  Skip straight
                # there and account the idle cycles analytically.
                # A candidate equal to ``cycle`` means the event is due
                # right now (it expired with the clock increment): the
                # skip clamps to zero and the loop proceeds normally.
                # Candidates in the past are stale, not constraints.
                target = max_cycles
                if event_times and event_times[0] < target:
                    target = event_times[0]
                if cycle <= fetch_block_until < target:
                    target = fetch_block_until
                if ifq_count:
                    head_ready = ifq_buf[ifq_head].decode_ready
                    if cycle <= head_ready < target:
                        target = head_ready
                skip = target - cycle
                if skip > 0:
                    ruu_occupancy_sum += ruu_count * skip
                    lsq_occupancy_sum += lsq_count * skip
                    ifq_occupancy_sum += ifq_count * skip
                    cycle = target
                    if cycle >= max_cycles:
                        if pre_slots is not None:
                            source._pos = pre_pos
                        raise RuntimeError(
                            f"pipeline did not drain within {max_cycles} "
                            f"cycles ({committed} committed)"
                        )

        if pre_slots is not None:
            source._pos = pre_pos
        activity = {
            "fetch": act_fetch, "dispatch": act_dispatch,
            "issue": act_issue, "commit": act_commit,
            "bpred": act_bpred, "il1": act_il1, "dl1": act_dl1,
            "l2": act_l2,
            "int_alu": fu_counts[FunctionalUnit.INT_ALU],
            "load_store": fu_counts[FunctionalUnit.LOAD_STORE],
            "fp_adder": fu_counts[FunctionalUnit.FP_ADDER],
            "int_mult_div": fu_counts[FunctionalUnit.INT_MULT_DIV],
            "fp_mult_div": fu_counts[FunctionalUnit.FP_MULT_DIV],
        }
        result = SimulationResult(
            cycles=cycle,
            instructions=committed,
            avg_ruu_occupancy=ruu_occupancy_sum / cycle if cycle else 0.0,
            avg_lsq_occupancy=lsq_occupancy_sum / cycle if cycle else 0.0,
            avg_ifq_occupancy=ifq_occupancy_sum / cycle if cycle else 0.0,
            activity=activity,
            branches=branches,
            taken_branches=taken_branches,
            fetch_redirections=redirections,
            branch_mispredictions=mispredictions,
            squashed_instructions=squashed_total,
        )
        record_simulation(result)
        return result


    def _run_columnar(self, max_cycles: Optional[int] = None,
                      commit_log: Optional[list] = None) -> SimulationResult:
        """The columnar twin of :meth:`run`.

        Same machine, same stage order, cycle-for-cycle identical
        results (``tests/test_columnar.py`` pins this against the
        generic loop on the same trace) — but fed from a
        :class:`ColumnarSource`'s parallel columns: per-instruction
        latency, functional unit, dependency tuple and a packed
        branch/stall control byte land directly on the pooled
        ``_Inflight`` records, so no ``FetchSlot`` or
        ``SyntheticInstruction`` ever exists on this path.  Branch and
        locality tallies that the generic fetch stage accumulates per
        instruction come precomputed from the source (they are column
        sums; only wrong-path filler D-cache accesses remain
        timing-dependent and are counted here).
        """
        from repro.cpu.source import (CTRL_MISPREDICT, CTRL_REDIRECT,
                                      CTRL_STALL, CTRL_TAKEN)
        config = self.config
        source: ColumnarSource = self.source
        fetch_width = config.fetch_width
        decode_width = config.decode_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        ifq_size = config.ifq_size
        ruu_size = config.ruu_size
        lsq_size = config.lsq_size
        mispredict_penalty = config.branch_misprediction_penalty
        redirect_penalty = config.fetch_redirect_penalty
        frontend_depth = config.frontend_depth
        conservative_loads = config.conservative_loads
        heap_push = heappush
        heap_pop = heappop
        last_store: Optional[_Inflight] = None
        fu_caps: List[int] = [0] * len(FunctionalUnit)
        fu_caps[FunctionalUnit.INT_ALU] = config.int_alus
        fu_caps[FunctionalUnit.LOAD_STORE] = config.load_store_units
        fu_caps[FunctionalUnit.FP_ADDER] = config.fp_adders
        fu_caps[FunctionalUnit.INT_MULT_DIV] = config.int_mult_divs
        fu_caps[FunctionalUnit.FP_MULT_DIV] = config.fp_mult_divs
        fu_counts: List[int] = [0] * len(FunctionalUnit)

        # The source's per-instruction columns (plain lists / tuples);
        # _FILLER_ROWS supplies wrong-path instructions (class base
        # latency, no dependencies — like _filler_slot).
        from repro.cpu.source import _FILLER_ROWS
        ic_col = source.ic
        stall_col = source.stall
        rows = source.rows
        n = len(ic_col)
        pos = source._pos
        filler_rows = _FILLER_ROWS

        ruu_buf: List[Optional[_Inflight]] = [None] * ruu_size
        ruu_head = 0
        ruu_count = 0
        ifq_buf: List[Optional[_Inflight]] = [None] * ifq_size
        ifq_head = 0
        ifq_count = 0
        rq_fifo: List[_Inflight] = []
        rq_head = 0
        rq_heap: list = []
        completing: Dict[int, List[_Inflight]] = {}
        event_times: list = []
        history: List[Optional[_Inflight]] = [None] * _HISTORY
        hist_pos = 0
        dispatch_count = 0
        lsq_count = 0
        free: List[_Inflight] = []
        free_pop = free.pop
        free_append = free.append
        inflight_new = _Inflight.__new__

        cycle = 0
        next_health = _HEALTH_EVERY
        fetch_block_until = 0
        episode: Optional[_Inflight] = None
        filler_offset = 0
        exhausted = False
        pseq_counter = 0
        committed = 0

        ruu_occupancy_sum = 0
        lsq_occupancy_sum = 0
        ifq_occupancy_sum = 0
        squashed_total = 0
        act_fetch = act_dispatch = act_issue = 0
        act_dl1_filler = 0

        if max_cycles is None:
            max_cycles = 1000 * max(n, 1) + 100_000

        while True:
            # ---------------------------------------------------- commit
            retired = 0
            while ruu_count and retired < commit_width:
                head = ruu_buf[ruu_head]
                if not head.completed:
                    break
                ruu_head += 1
                if ruu_head == ruu_size:
                    ruu_head = 0
                ruu_count -= 1
                if head.is_mem:
                    lsq_count -= 1
                retired += 1
                if commit_log is not None:
                    commit_log.append((cycle, head.pseq))
                slot_index = head.hist_slot
                if history[slot_index] is head:
                    history[slot_index] = None
                if head.waiters:
                    head.waiters.clear()
                if last_store is head:
                    last_store = None
                free_append(head)
            committed += retired

            # ------------------------------------------------- writeback
            if event_times and event_times[0] == cycle:
                heap_pop(event_times)
                done = completing.pop(cycle)
                for inst in done:
                    if inst.squashed:
                        continue
                    inst.completed = True
                    waiters = inst.waiters
                    if waiters:
                        for waiter in waiters:
                            if waiter.squashed:
                                continue
                            waiter.pending -= 1
                            if waiter.pending == 0:
                                heap_push(rq_heap, (waiter.pseq, waiter))
                    if inst.recover:
                        pseq_limit = inst.pseq
                        while ruu_count:
                            tail = ruu_head + ruu_count - 1
                            if tail >= ruu_size:
                                tail -= ruu_size
                            victim = ruu_buf[tail]
                            if victim.pseq <= pseq_limit:
                                break
                            ruu_buf[tail] = None
                            ruu_count -= 1
                            victim.squashed = True
                            if victim.is_mem:
                                lsq_count -= 1
                            squashed_total += 1
                        squashed_total += ifq_count
                        index = ifq_head
                        for _ in range(ifq_count):
                            junk = ifq_buf[index]
                            ifq_buf[index] = None
                            index += 1
                            if index == ifq_size:
                                index = 0
                            free_append(junk)
                        ifq_head = 0
                        ifq_count = 0
                        episode = None
                        filler_offset = 0
                        if cycle + mispredict_penalty > fetch_block_until:
                            fetch_block_until = cycle + mispredict_penalty
                worked = True
            else:
                worked = retired > 0

            # ----------------------------------------------------- issue
            if rq_heap or rq_head < len(rq_fifo):
                fu_free = fu_caps[:]
                issued = 0
                deferred = []
                n_deferred = 0
                rq_tail = len(rq_fifo)
                while issued < issue_width and n_deferred < 64:
                    if rq_head < rq_tail:
                        inst = rq_fifo[rq_head]
                        if rq_heap and rq_heap[0][0] < inst.pseq:
                            inst = heap_pop(rq_heap)[1]
                        else:
                            rq_head += 1
                    elif rq_heap:
                        inst = heap_pop(rq_heap)[1]
                    else:
                        break
                    if inst.squashed:
                        continue
                    row = inst.row
                    fi = row[1]
                    if fu_free[fi] > 0:
                        fu_free[fi] -= 1
                        issued += 1
                        fu_counts[fi] += 1
                        finish = cycle + row[0]
                        bucket = completing.get(finish)
                        if bucket is None:
                            completing[finish] = [inst]
                            heap_push(event_times, finish)
                        else:
                            bucket.append(inst)
                    else:
                        deferred.append((inst.pseq, inst))
                        n_deferred += 1
                for item in deferred:
                    heap_push(rq_heap, item)
                if rq_head == rq_tail and rq_head:
                    del rq_fifo[:rq_head]
                    rq_head = 0
                act_issue += issued
                if issued:
                    worked = True

            # -------------------------------------------------- dispatch
            dispatched = 0
            while (ifq_count and dispatched < decode_width
                   and ruu_count < ruu_size):
                inst = ifq_buf[ifq_head]
                if inst.decode_ready > cycle:
                    break
                if inst.is_mem and lsq_count >= lsq_size:
                    break
                ifq_head += 1
                if ifq_head == ifq_size:
                    ifq_head = 0
                ifq_count -= 1
                tail = ruu_head + ruu_count
                if tail >= ruu_size:
                    tail -= ruu_size
                ruu_buf[tail] = inst
                ruu_count += 1
                if inst.is_mem:
                    lsq_count += 1
                row = inst.row
                distances = row[2]
                if distances:
                    for distance in distances:
                        if distance > dispatch_count or distance > _HISTORY:
                            continue
                        index = hist_pos - distance
                        if index < 0:
                            index += _HISTORY
                        producer = history[index]
                        if (producer is None or producer.completed
                                or producer.squashed):
                            continue
                        inst.pending += 1
                        producer.waiters.append(inst)
                if conservative_loads:
                    if (row[3] and last_store is not None
                            and not last_store.completed
                            and not last_store.squashed):
                        inst.pending += 1
                        last_store.waiters.append(inst)
                    if row[4]:
                        last_store = inst
                history[hist_pos] = inst
                inst.hist_slot = hist_pos
                hist_pos += 1
                if hist_pos == _HISTORY:
                    hist_pos = 0
                dispatch_count += 1
                dispatched += 1
                if inst.pending == 0:
                    rq_fifo.append(inst)
            act_dispatch += dispatched
            if dispatched:
                worked = True

            # ----------------------------------------------------- fetch
            if cycle >= fetch_block_until:
                fetched = 0
                decode_ready = cycle + frontend_depth
                while fetched < fetch_width and ifq_count < ifq_size:
                    if episode is not None:
                        row = filler_rows[ic_col[(pos + filler_offset)
                                                 % n]]
                        filler_offset += 1
                        wrong_path = True
                        idx = -1
                    elif exhausted:
                        break
                    else:
                        if pos >= n:
                            exhausted = True
                            break
                        idx = pos
                        pos += 1
                        row = rows[idx]
                        wrong_path = False
                    if free:
                        inst = free_pop()
                    else:
                        inst = inflight_new(_Inflight)
                        inst.waiters = []
                        inst.pending = 0
                        inst.squashed = False
                        inst.hist_slot = -1
                    # Unlike the generic loop, wrong_path is not
                    # stored: the columnar dispatch stage never reads
                    # it (branch tallies are precomputed).
                    inst.pseq = pseq_counter
                    inst.decode_ready = decode_ready
                    inst.completed = False
                    inst.recover = False
                    inst.row = row
                    is_mem = row[5]
                    inst.is_mem = is_mem
                    pseq_counter += 1
                    tail = ifq_head + ifq_count
                    if tail >= ifq_size:
                        tail -= ifq_size
                    ifq_buf[tail] = inst
                    ifq_count += 1
                    fetched += 1
                    if wrong_path:
                        if is_mem:
                            act_dl1_filler += 1
                        continue
                    ctrl = row[6]
                    if ctrl:
                        # Packed branch/stall control byte; the bit
                        # priority reproduces the generic loop's exact
                        # break order (a correctly predicted taken
                        # branch ends the group before any I-miss
                        # stall is considered).
                        if ctrl & CTRL_MISPREDICT:
                            inst.recover = True
                            episode = inst
                            filler_offset = 0
                            if ctrl & CTRL_TAKEN:
                                break
                            if ctrl & CTRL_STALL:
                                fetch_block_until = \
                                    cycle + 1 + stall_col[idx]
                                break
                        elif ctrl & CTRL_REDIRECT:
                            fetch_block_until = \
                                cycle + 1 + redirect_penalty
                            break
                        elif ctrl & CTRL_TAKEN:
                            break
                        elif ctrl & CTRL_STALL:
                            fetch_block_until = cycle + 1 + stall_col[idx]
                            break
                act_fetch += fetched
                if fetched:
                    worked = True

            # ------------------------------------------------ accounting
            ruu_occupancy_sum += ruu_count
            lsq_occupancy_sum += lsq_count
            ifq_occupancy_sum += ifq_count
            cycle += 1
            if cycle >= next_health:
                next_health = cycle + _HEALTH_EVERY
                _health_checkpoint(committed)

            if exhausted and not ifq_count and not ruu_count:
                break
            if cycle >= max_cycles:
                source._pos = pos
                raise RuntimeError(
                    f"pipeline did not drain within {max_cycles} cycles "
                    f"({committed} committed)"
                )

            if not worked:
                target = max_cycles
                if event_times and event_times[0] < target:
                    target = event_times[0]
                if cycle <= fetch_block_until < target:
                    target = fetch_block_until
                if ifq_count:
                    head_ready = ifq_buf[ifq_head].decode_ready
                    if cycle <= head_ready < target:
                        target = head_ready
                skip = target - cycle
                if skip > 0:
                    ruu_occupancy_sum += ruu_count * skip
                    lsq_occupancy_sum += lsq_count * skip
                    ifq_occupancy_sum += ifq_count * skip
                    cycle = target
                    if cycle >= max_cycles:
                        source._pos = pos
                        raise RuntimeError(
                            f"pipeline did not drain within {max_cycles} "
                            f"cycles ({committed} committed)"
                        )

        source._pos = pos
        activity = {
            "fetch": act_fetch, "dispatch": act_dispatch,
            "issue": act_issue, "commit": committed,
            "bpred": source.act_bpred, "il1": act_fetch,
            "dl1": source.act_dl1 + act_dl1_filler,
            "l2": source.act_l2,
            "int_alu": fu_counts[FunctionalUnit.INT_ALU],
            "load_store": fu_counts[FunctionalUnit.LOAD_STORE],
            "fp_adder": fu_counts[FunctionalUnit.FP_ADDER],
            "int_mult_div": fu_counts[FunctionalUnit.INT_MULT_DIV],
            "fp_mult_div": fu_counts[FunctionalUnit.FP_MULT_DIV],
        }
        result = SimulationResult(
            cycles=cycle,
            instructions=committed,
            avg_ruu_occupancy=ruu_occupancy_sum / cycle if cycle else 0.0,
            avg_lsq_occupancy=lsq_occupancy_sum / cycle if cycle else 0.0,
            avg_ifq_occupancy=ifq_occupancy_sum / cycle if cycle else 0.0,
            activity=activity,
            branches=source.branches,
            taken_branches=source.taken_branches,
            fetch_redirections=source.redirections,
            branch_mispredictions=source.mispredictions,
            squashed_instructions=squashed_total,
        )
        record_simulation(result)
        return result


def simulate(config: MachineConfig,
             source: InstructionSource,
             max_cycles: Optional[int] = None) -> SimulationResult:
    """Convenience wrapper: build and run a pipeline."""
    return SuperscalarPipeline(config, source).run(max_cycles=max_cycles)
