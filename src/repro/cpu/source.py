"""Instruction sources: how the pipeline learns each instruction's
latencies, dependencies and branch outcome.

A :class:`FetchSlot` is the pipeline's view of one instruction — class,
execution latency, fetch stall, RAW dependency distances and branch
outcome — deliberately identical for real and synthetic instructions.
The :class:`ExecutionDrivenSource` computes slots from a dynamic trace
with live caches and a live branch predictor (the reference simulator);
the :class:`PreannotatedSource` replays slots that the synthetic trace
generator annotated in advance (the statistical simulator, which per the
paper "does not need to model branch predictors nor caches").
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.config import MachineConfig
from repro.isa.iclass import IClass, execution_latency, functional_unit
from repro.frontend.trace import Trace
from repro.branch.unit import BranchOutcome, BranchPredictorUnit
from repro.cache.hierarchy import CacheHierarchy

#: Dependency distances beyond this horizon cannot constrain any
#: realistic instruction window; the paper caps the dependency-distance
#: distribution at 512 for the same reason (section 2.1.1).
MAX_DEPENDENCY_DISTANCE = 512


class FetchSlot:
    """Everything the pipeline needs to know about one instruction."""

    __slots__ = (
        "iclass",
        "fu",
        "fu_index",
        "is_mem",
        "exec_latency",
        "fetch_stall",
        "dep_distances",
        "is_branch",
        "is_load",
        "is_store",
        "taken",
        "outcome",
        "il1_miss",
        "l2i_miss",
        "dl1_miss",
        "l2d_miss",
        "itlb_miss",
        "dtlb_miss",
        "raw",
    )

    def __init__(
        self,
        iclass: IClass,
        exec_latency: int,
        fetch_stall: int = 0,
        dep_distances: Tuple[int, ...] = (),
        taken: bool = False,
        outcome: Optional[BranchOutcome] = None,
        il1_miss: bool = False,
        l2i_miss: bool = False,
        dl1_miss: bool = False,
        l2d_miss: bool = False,
        itlb_miss: bool = False,
        dtlb_miss: bool = False,
        raw: object = None,
    ) -> None:
        self.iclass = iclass
        self.fu = functional_unit(iclass)
        self.exec_latency = exec_latency
        self.fetch_stall = fetch_stall
        self.dep_distances = dep_distances
        self.is_branch = iclass in (IClass.INT_COND_BRANCH,
                                    IClass.FP_COND_BRANCH,
                                    IClass.INDIRECT_BRANCH)
        self.is_load = iclass is IClass.LOAD
        self.is_store = iclass is IClass.STORE
        # Precomputed for the pipeline's issue/dispatch hot paths:
        # FunctionalUnit is an IntEnum, so the plain-int index lets the
        # issue stage address list-based FU pools without hashing.
        self.fu_index = int(self.fu)
        self.is_mem = self.is_load or self.is_store
        self.taken = taken
        self.outcome = outcome
        self.il1_miss = il1_miss
        self.l2i_miss = l2i_miss
        self.dl1_miss = dl1_miss
        self.l2d_miss = l2d_miss
        self.itlb_miss = itlb_miss
        self.dtlb_miss = dtlb_miss
        self.raw = raw


class InstructionSource(Protocol):
    """Protocol the pipeline's fetch engine drives."""

    def fetch(self) -> Optional[FetchSlot]:
        """Consume and resolve the next correct-path instruction, or
        return None when the stream is exhausted."""
        ...

    def peek_filler(self, offset: int) -> Optional[FetchSlot]:
        """Return a wrong-path filler slot *offset* instructions ahead
        without consuming the stream or touching locality state."""
        ...

    def on_dispatch(self, slot: FetchSlot) -> None:
        """Notification that *slot* reached dispatch (used by the
        execution-driven source for speculative predictor update)."""
        ...


#: Fillers are immutable to the pipeline (slots are only ever read), so
#: one shared instance per instruction class serves every wrong-path
#: fetch instead of constructing a fresh FetchSlot each time.
_FILLER_CACHE: dict = {}


def _filler_slot(iclass: IClass) -> FetchSlot:
    """A wrong-path filler: occupies fetch/window/FU resources with the
    class's base latency, but carries no dependencies, no locality events
    and an inert branch outcome.  Both simulators use the same rule, per
    DESIGN.md (the paper injects wrong-path instructions purely "to model
    resource contention")."""
    slot = _FILLER_CACHE.get(iclass)
    if slot is None:
        slot = FetchSlot(iclass=iclass,
                         exec_latency=execution_latency(iclass))
        _FILLER_CACHE[iclass] = slot
    return slot


class ExecutionDrivenSource:
    """Resolves a dynamic trace with live locality structures.

    Per fetched instruction it:

    * runs the I-cache/I-TLB access and converts misses to fetch stalls;
    * runs loads and stores through the D-cache hierarchy (loads get the
      resulting latency);
    * classifies branches against the live predictor *without* training
      it — training happens at dispatch via :meth:`on_dispatch`, giving
      the dispatch-time speculative update the paper assumes;
    * computes the RAW dependency distance of every source operand (the
      same definition the statistical profiler uses).
    """

    def __init__(self, trace: Trace, config: MachineConfig,
                 perfect_caches: bool = False,
                 perfect_branch_prediction: bool = False,
                 hierarchy: Optional[CacheHierarchy] = None,
                 predictor: Optional[BranchPredictorUnit] = None) -> None:
        self.trace = trace
        self.config = config
        self.perfect_caches = perfect_caches
        self.perfect_branch_prediction = perfect_branch_prediction
        # Callers may inject pre-warmed locality structures (e.g. the
        # SimPoint baseline warms them on the instructions preceding a
        # representative interval).
        self.hierarchy = hierarchy or CacheHierarchy(config)
        self.predictor = predictor or BranchPredictorUnit(config.predictor)
        self._instructions = trace.instructions
        self._pos = 0
        self._last_writer: dict = {}
        self._last_reader: dict = {}

    def __len__(self) -> int:
        return len(self._instructions)

    def fetch(self) -> Optional[FetchSlot]:
        instructions = self._instructions
        if self._pos >= len(instructions):
            return None
        inst = instructions[self._pos]
        self._pos += 1

        fetch_stall = 0
        il1_miss = l2i_miss = itlb_miss = False
        if not self.perfect_caches:
            iresult = self.hierarchy.access_instruction(inst.pc)
            fetch_stall = self.hierarchy.fetch_stall(iresult)
            il1_miss = iresult.il1_miss
            l2i_miss = iresult.l2_miss
            itlb_miss = iresult.itlb_miss

        dep_distances = []
        last_writer = self._last_writer
        last_reader = self._last_reader
        anti = self.config.enforce_anti_dependencies
        seq = inst.seq
        for reg in inst.src_regs:
            writer = last_writer.get(reg)
            if writer is not None:
                distance = seq - writer
                if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                    dep_distances.append(distance)
            if anti:
                last_reader[reg] = seq
        if inst.dst_reg is not None:
            if anti:
                # Without register renaming, a write must wait for the
                # previous writer (WAW) and previous readers (WAR) of
                # its destination register.
                for prior in (last_writer.get(inst.dst_reg),
                              last_reader.get(inst.dst_reg)):
                    if prior is not None:
                        distance = seq - prior
                        if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                            dep_distances.append(distance)
            last_writer[inst.dst_reg] = seq

        latency = execution_latency(inst.iclass)
        dl1_miss = l2d_miss = dtlb_miss = False
        if inst.mem_addr is not None and not self.perfect_caches:
            dresult = self.hierarchy.access_data(inst.mem_addr,
                                                 is_store=inst.is_store)
            if inst.is_load:
                latency = self.hierarchy.load_latency(dresult)
                dl1_miss = dresult.dl1_miss
                l2d_miss = dresult.l2_miss
                dtlb_miss = dresult.dtlb_miss
        elif inst.is_load and self.perfect_caches:
            latency = self.config.dl1.hit_latency

        taken = False
        outcome: Optional[BranchOutcome] = None
        if inst.is_branch:
            taken = inst.taken
            if self.perfect_branch_prediction:
                outcome = BranchOutcome.CORRECT
            else:
                outcome = self.predictor.classify(inst)

        return FetchSlot(
            iclass=inst.iclass,
            exec_latency=latency,
            fetch_stall=fetch_stall,
            dep_distances=tuple(dep_distances),
            taken=taken,
            outcome=outcome,
            il1_miss=il1_miss,
            l2i_miss=l2i_miss,
            dl1_miss=dl1_miss,
            l2d_miss=l2d_miss,
            itlb_miss=itlb_miss,
            dtlb_miss=dtlb_miss,
            raw=inst,
        )

    def peek_filler(self, offset: int) -> Optional[FetchSlot]:
        instructions = self._instructions
        if not instructions:
            return None
        index = (self._pos + offset) % len(instructions)
        return _filler_slot(instructions[index].iclass)

    def on_dispatch(self, slot: FetchSlot) -> None:
        if (slot.is_branch and slot.raw is not None
                and not self.perfect_branch_prediction):
            self.predictor.train(slot.raw)


#: Per-IClass lookup rows (indexed by the IClass integer code) for the
#: vectorized slot computation and for columnar wrong-path fillers.
_BASE_LAT = np.asarray([execution_latency(c) for c in IClass],
                       dtype=np.int64)
_FU_IDX = [int(functional_unit(c)) for c in IClass]
_CLASS_IS_MEM = [c in (IClass.LOAD, IClass.STORE) for c in IClass]
_CLASS_IS_BRANCH = [c in (IClass.INT_COND_BRANCH, IClass.FP_COND_BRANCH,
                          IClass.INDIRECT_BRANCH) for c in IClass]

#: Control-byte bits consumed by the pipeline's columnar fetch stage.
CTRL_TAKEN = 1
CTRL_MISPREDICT = 2
CTRL_REDIRECT = 4
CTRL_STALL = 8

#: Columnar row tuples for wrong-path fillers, indexed by IClass code:
#: class base latency, no dependencies, no control bits — the columnar
#: equivalent of the shared ``_filler_slot`` instances.
_FILLER_ROWS = [
    (int(execution_latency(c)), int(functional_unit(c)), (),
     c is IClass.LOAD, c is IClass.STORE,
     c in (IClass.LOAD, IClass.STORE), 0)
    for c in IClass
]


class ColumnarSource:
    """Batch twin of :class:`PreannotatedSource`.

    Resolves a :class:`repro.core.columnar.ColumnarTrace` into parallel
    per-instruction columns — execution latency, fetch stall,
    functional unit, memory/load/store flags, dependency tuples and a
    packed branch/stall control byte — with whole-trace numpy
    expressions instead of one ``FetchSlot`` construction per
    instruction.  ``SuperscalarPipeline.run`` detects this source and
    switches to its columnar fast path, which walks these columns
    directly; the generic :class:`InstructionSource` protocol methods
    below materialize classic ``FetchSlot`` objects lazily, so the
    source also works (more slowly) with any configuration the fast
    path does not cover (e.g. in-order issue).

    Counters the scalar fetch stage accumulates per instruction are
    precomputed here as column sums: every correct-path instruction is
    fetched, dispatched and committed exactly once (wrong-path fillers
    never commit and real instructions are never squashed — everything
    younger than a mispredicted branch is filler by construction), so
    branch/locality tallies do not depend on pipeline timing.
    """

    def __init__(self, trace, config: MachineConfig) -> None:
        self.trace = trace
        self.config = config
        iclass = trace.iclass.astype(np.int64)
        n = iclass.size
        is_load = iclass == int(IClass.LOAD)
        is_store = iclass == int(IClass.STORE)
        is_branch = np.asarray(_CLASS_IS_BRANCH)[iclass]
        memory_latency = config.memory_latency
        l2_latency = config.l2.hit_latency

        # to_fetch_slots(), columnwise: load latency from the deepest
        # missing level plus the D-TLB penalty; instruction-side misses
        # as fetch stalls plus the I-TLB penalty.
        lat = np.where(
            is_load,
            np.where(trace.l2d, memory_latency,
                     np.where(trace.dl1, l2_latency,
                              config.dl1.hit_latency))
            + trace.dtlb * config.dtlb.miss_latency,
            _BASE_LAT[iclass])
        stall = np.where(trace.l2i, memory_latency,
                         np.where(trace.il1, l2_latency, 0)) \
            + trace.itlb * config.itlb.miss_latency

        ctrl = (trace.taken * CTRL_TAKEN
                + (is_branch & (trace.outcome == 2)) * CTRL_MISPREDICT
                + (is_branch & (trace.outcome == 1)) * CTRL_REDIRECT
                + (stall > 0) * CTRL_STALL)

        deps: List[Tuple[int, ...]] = [()] * n
        dep_off = trace.dep_off.tolist()
        dep_val = trace.dep_val.tolist()
        for i in np.flatnonzero(np.diff(trace.dep_off)).tolist():
            deps[i] = tuple(dep_val[dep_off[i]:dep_off[i + 1]])

        # One prebuilt row tuple per instruction: everything the
        # pipeline's columnar loop needs lands on the inflight record
        # with a single list read and a single attribute store (plain
        # lists and tuples — numpy scalar indexing inside the cycle
        # loop would dominate it).
        self.ic: List[int] = iclass.tolist()
        self.stall: List[int] = stall.tolist()
        self.rows: List[tuple] = list(zip(
            lat.tolist(),
            np.asarray(_FU_IDX)[iclass].tolist(),
            deps,
            is_load.tolist(),
            is_store.tolist(),
            (is_load | is_store).tolist(),
            ctrl.tolist(),
        ))

        # Timing-independent fetch/dispatch tallies (see class docs).
        self.branches = int(is_branch.sum())
        self.taken_branches = int(trace.taken.sum())
        branch_outcomes = trace.outcome[is_branch]
        self.mispredictions = int((branch_outcomes == 2).sum())
        self.redirections = int((branch_outcomes == 1).sum())
        self.act_l2 = int(trace.il1.sum()) + int(trace.dl1.sum())
        self.act_dl1 = int((is_load | is_store).sum())
        # Fetch classifies each branch once and dispatch updates the
        # predictor model once per correct-path branch.
        self.act_bpred = 2 * self.branches
        self._pos = 0

    def __len__(self) -> int:
        return len(self.ic)

    # -- generic InstructionSource protocol (correctness fallback) ----

    def _slot_at(self, index: int) -> FetchSlot:
        trace = self.trace
        iclass = IClass(self.ic[index])
        is_branch = iclass in (IClass.INT_COND_BRANCH,
                               IClass.FP_COND_BRANCH,
                               IClass.INDIRECT_BRANCH)
        row = self.rows[index]
        return FetchSlot(
            iclass=iclass,
            exec_latency=row[0],
            fetch_stall=self.stall[index],
            dep_distances=row[2],
            taken=bool(trace.taken[index]),
            outcome=(BranchOutcome(int(trace.outcome[index]))
                     if is_branch else None),
            il1_miss=bool(trace.il1[index]),
            l2i_miss=bool(trace.l2i[index]),
            dl1_miss=bool(trace.dl1[index]),
            l2d_miss=bool(trace.l2d[index]),
            itlb_miss=bool(trace.itlb[index]),
            dtlb_miss=bool(trace.dtlb[index]),
        )

    def fetch(self) -> Optional[FetchSlot]:
        if self._pos >= len(self.ic):
            return None
        slot = self._slot_at(self._pos)
        self._pos += 1
        return slot

    def peek_filler(self, offset: int) -> Optional[FetchSlot]:
        if not self.ic:
            return None
        index = (self._pos + offset) % len(self.ic)
        return _filler_slot(IClass(self.ic[index]))

    def on_dispatch(self, slot: FetchSlot) -> None:
        return None


class PreannotatedSource:
    """Replays pre-resolved fetch slots (the synthetic-trace simulator).

    All locality and branch outcomes were assigned during synthetic trace
    generation (paper section 2.2, steps 5-7), so this source holds no
    caches and no predictor.
    """

    def __init__(self, slots: Sequence[FetchSlot]) -> None:
        self._slots: List[FetchSlot] = list(slots)
        self._pos = 0

    def __len__(self) -> int:
        return len(self._slots)

    def fetch(self) -> Optional[FetchSlot]:
        if self._pos >= len(self._slots):
            return None
        slot = self._slots[self._pos]
        self._pos += 1
        return slot

    def peek_filler(self, offset: int) -> Optional[FetchSlot]:
        if not self._slots:
            return None
        index = (self._pos + offset) % len(self._slots)
        return _filler_slot(self._slots[index].iclass)

    def on_dispatch(self, slot: FetchSlot) -> None:
        return None
