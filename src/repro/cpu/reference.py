"""Frozen reference implementation of the superscalar pipeline loop.

This is the original strictly cycle-by-cycle ``SuperscalarPipeline.run``
preserved verbatim (minus metrics recording) from before the
event-driven rewrite of :mod:`repro.cpu.pipeline`.  It exists for two
jobs:

* the exact-equivalence guard: ``tests/test_pipeline_equivalence.py``
  asserts the optimized pipeline produces an identical
  :class:`SimulationResult` for the same source and configuration;
* the in-process "before" baseline for the hot-path benchmark
  (``repro bench``), so speedups are measured against real code rather
  than a remembered number.

Do not optimize this module; its value is that it stays slow and
obviously correct.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.isa.iclass import FunctionalUnit
from repro.branch.unit import BranchOutcome
from repro.cpu.results import SimulationResult
from repro.cpu.source import FetchSlot, InstructionSource

#: Dependency-resolution window (matches the profile's distance cap).
_HISTORY = 512


class _Inflight:
    """Book-keeping for one instruction in the pipeline."""

    __slots__ = ("slot", "pseq", "pending", "waiters", "completed",
                 "squashed", "recover", "wrong_path", "is_mem",
                 "decode_ready", "issued")

    def __init__(self, slot: FetchSlot, pseq: int, wrong_path: bool) -> None:
        self.slot = slot
        self.pseq = pseq
        self.decode_ready = 0
        self.issued = False
        self.pending = 0
        self.waiters: List["_Inflight"] = []
        self.completed = False
        self.squashed = False
        self.recover = False
        self.wrong_path = wrong_path
        self.is_mem = slot.is_load or slot.is_store


class ReferencePipeline:
    """The pre-overhaul pipeline; call :meth:`run` once."""

    def __init__(self, config: MachineConfig,
                 source: InstructionSource) -> None:
        for knob in ("fetch_width", "ifq_size", "decode_width",
                     "issue_width", "commit_width", "ruu_size"):
            value = getattr(config, knob)
            if value < 1:
                raise SimulationError(
                    f"machine config {knob} must be >= 1, got {value!r}; "
                    f"the pipeline cannot make progress")
        self.config = config
        self.source = source

    def run(self, max_cycles: Optional[int] = None,
            commit_log: Optional[list] = None) -> SimulationResult:
        """Simulate until the source drains; return the result.

        When *commit_log* is a list, every retired instruction appends
        ``(cycle, pseq)`` in retirement order — the same hook the
        optimized pipeline exposes, so the differential fuzzing oracle
        can diff retirement schedules cycle-for-cycle.
        """
        config = self.config
        source = self.source
        fetch_width = config.fetch_width
        decode_width = config.decode_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        ifq_size = config.ifq_size
        ruu_size = config.ruu_size
        lsq_size = config.lsq_size
        mispredict_penalty = config.branch_misprediction_penalty
        redirect_penalty = config.fetch_redirect_penalty
        frontend_depth = config.frontend_depth
        in_order = config.in_order_issue
        conservative_loads = config.conservative_loads
        last_store: Optional[_Inflight] = None
        fu_capacity: Dict[FunctionalUnit, int] = {
            FunctionalUnit.INT_ALU: config.int_alus,
            FunctionalUnit.LOAD_STORE: config.load_store_units,
            FunctionalUnit.FP_ADDER: config.fp_adders,
            FunctionalUnit.INT_MULT_DIV: config.int_mult_divs,
            FunctionalUnit.FP_MULT_DIV: config.fp_mult_divs,
        }

        ifq: deque = deque()
        ruu: deque = deque()
        ready: list = []  # heap of (pseq, _Inflight)
        completing: Dict[int, List[_Inflight]] = {}
        history: List[Optional[_Inflight]] = [None] * _HISTORY
        dispatch_count = 0
        lsq_count = 0

        cycle = 0
        fetch_block_until = 0
        episode: Optional[_Inflight] = None  # unresolved mispredicted branch
        filler_offset = 0
        exhausted = False
        pseq_counter = 0
        committed = 0

        # Accounting
        ruu_occupancy_sum = 0
        lsq_occupancy_sum = 0
        ifq_occupancy_sum = 0
        squashed_total = 0
        branches = taken_branches = redirections = mispredictions = 0
        activity = {
            "fetch": 0, "dispatch": 0, "issue": 0, "commit": 0,
            "bpred": 0, "il1": 0, "dl1": 0, "l2": 0,
            "int_alu": 0, "load_store": 0, "fp_adder": 0,
            "int_mult_div": 0, "fp_mult_div": 0,
        }
        fu_activity_key = {
            FunctionalUnit.INT_ALU: "int_alu",
            FunctionalUnit.LOAD_STORE: "load_store",
            FunctionalUnit.FP_ADDER: "fp_adder",
            FunctionalUnit.INT_MULT_DIV: "int_mult_div",
            FunctionalUnit.FP_MULT_DIV: "fp_mult_div",
        }

        if max_cycles is None:
            source_len = len(source) if hasattr(source, "__len__") else 0
            max_cycles = 1000 * max(source_len, 1) + 100_000

        while True:
            # ---------------------------------------------------- commit
            retired = 0
            while ruu and retired < commit_width:
                head = ruu[0]
                if not head.completed:
                    break
                ruu.popleft()
                if head.is_mem:
                    lsq_count -= 1
                committed += 1
                retired += 1
                if commit_log is not None:
                    commit_log.append((cycle, head.pseq))
            activity["commit"] += retired

            # ------------------------------------------------- writeback
            done = completing.pop(cycle, None)
            if done:
                for inst in done:
                    if inst.squashed:
                        continue
                    inst.completed = True
                    for waiter in inst.waiters:
                        if waiter.squashed:
                            continue
                        waiter.pending -= 1
                        if waiter.pending == 0:
                            heappush(ready, (waiter.pseq, waiter))
                    if inst.recover:
                        # Mispredicted branch resolves: squash younger.
                        while ruu and ruu[-1].pseq > inst.pseq:
                            victim = ruu.pop()
                            victim.squashed = True
                            if victim.is_mem:
                                lsq_count -= 1
                            squashed_total += 1
                        squashed_total += len(ifq)
                        ifq.clear()
                        episode = None
                        filler_offset = 0
                        fetch_block_until = max(
                            fetch_block_until, cycle + mispredict_penalty)

            # ----------------------------------------------------- issue
            if in_order:
                # In-order issue: instructions leave for the functional
                # units strictly in program order; the first stalled
                # instruction blocks all younger ones.
                issued = 0
                fu_free = dict(fu_capacity)
                for inst in ruu:
                    if issued >= issue_width:
                        break
                    if inst.issued:
                        continue
                    fu = inst.slot.fu
                    if inst.pending > 0 or fu_free[fu] <= 0:
                        break
                    fu_free[fu] -= 1
                    inst.issued = True
                    issued += 1
                    activity[fu_activity_key[fu]] += 1
                    finish = cycle + inst.slot.exec_latency
                    completing.setdefault(finish, []).append(inst)
                activity["issue"] += issued
            elif ready:
                fu_free = dict(fu_capacity)
                issued = 0
                deferred = []
                while ready and issued < issue_width and len(deferred) < 64:
                    pseq, inst = heappop(ready)
                    if inst.squashed:
                        continue
                    fu = inst.slot.fu
                    if fu_free[fu] > 0:
                        fu_free[fu] -= 1
                        inst.issued = True
                        issued += 1
                        activity[fu_activity_key[fu]] += 1
                        finish = cycle + inst.slot.exec_latency
                        completing.setdefault(finish, []).append(inst)
                    else:
                        deferred.append((pseq, inst))
                for item in deferred:
                    heappush(ready, item)
                activity["issue"] += issued

            # -------------------------------------------------- dispatch
            dispatched = 0
            while (ifq and dispatched < decode_width
                   and len(ruu) < ruu_size):
                inst = ifq[0]
                if inst.decode_ready > cycle:
                    break  # still in the decode/rename front-end stages
                if inst.is_mem and lsq_count >= lsq_size:
                    break
                ifq.popleft()
                ruu.append(inst)
                if inst.is_mem:
                    lsq_count += 1
                slot = inst.slot
                if slot.is_branch and not inst.wrong_path:
                    source.on_dispatch(slot)
                    activity["bpred"] += 1
                # Resolve RAW dependencies against dispatch history.
                for distance in slot.dep_distances:
                    if distance > dispatch_count or distance > _HISTORY:
                        continue
                    producer = history[(dispatch_count - distance) % _HISTORY]
                    if (producer is None or producer.completed
                            or producer.squashed):
                        continue
                    inst.pending += 1
                    producer.waiters.append(inst)
                if conservative_loads:
                    if (slot.is_load and last_store is not None
                            and not last_store.completed
                            and not last_store.squashed):
                        inst.pending += 1
                        last_store.waiters.append(inst)
                    if slot.is_store:
                        last_store = inst
                history[dispatch_count % _HISTORY] = inst
                dispatch_count += 1
                dispatched += 1
                if inst.pending == 0:
                    heappush(ready, (inst.pseq, inst))
            activity["dispatch"] += dispatched

            # ----------------------------------------------------- fetch
            if cycle >= fetch_block_until:
                fetched = 0
                while fetched < fetch_width and len(ifq) < ifq_size:
                    if episode is not None:
                        slot = source.peek_filler(filler_offset)
                        filler_offset += 1
                        wrong_path = True
                    elif exhausted:
                        break
                    else:
                        slot = source.fetch()
                        if slot is None:
                            exhausted = True
                            break
                        wrong_path = False
                    if slot is None:
                        break
                    inst = _Inflight(slot, pseq_counter, wrong_path)
                    inst.decode_ready = cycle + frontend_depth
                    pseq_counter += 1
                    ifq.append(inst)
                    fetched += 1
                    activity["il1"] += 1
                    activity["l2"] += slot.il1_miss
                    if slot.is_load or slot.is_store:
                        activity["dl1"] += 1
                        activity["l2"] += slot.dl1_miss
                    if slot.is_branch and not wrong_path:
                        activity["bpred"] += 1
                        branches += 1
                        outcome = slot.outcome
                        if slot.taken:
                            taken_branches += 1
                        if outcome is BranchOutcome.MISPREDICTION:
                            mispredictions += 1
                            inst.recover = True
                            episode = inst
                            filler_offset = 0
                        elif outcome is BranchOutcome.FETCH_REDIRECTION:
                            redirections += 1
                            fetch_block_until = cycle + 1 + redirect_penalty
                            break
                        if slot.taken:
                            break
                    if slot.fetch_stall:
                        fetch_block_until = cycle + 1 + slot.fetch_stall
                        break
                activity["fetch"] += fetched

            # ------------------------------------------------ accounting
            ruu_occupancy_sum += len(ruu)
            lsq_occupancy_sum += lsq_count
            ifq_occupancy_sum += len(ifq)
            cycle += 1

            if exhausted and not ifq and not ruu:
                break
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"pipeline did not drain within {max_cycles} cycles "
                    f"({committed} committed)"
                )

        return SimulationResult(
            cycles=cycle,
            instructions=committed,
            avg_ruu_occupancy=ruu_occupancy_sum / cycle if cycle else 0.0,
            avg_lsq_occupancy=lsq_occupancy_sum / cycle if cycle else 0.0,
            avg_ifq_occupancy=ifq_occupancy_sum / cycle if cycle else 0.0,
            activity=activity,
            branches=branches,
            taken_branches=taken_branches,
            fetch_redirections=redirections,
            branch_mispredictions=mispredictions,
            squashed_instructions=squashed_total,
        )


def simulate_reference(config: MachineConfig,
                       source: InstructionSource,
                       max_cycles: Optional[int] = None) -> SimulationResult:
    """Run the frozen reference pipeline (equivalence/benchmark aid)."""
    return ReferencePipeline(config, source).run(max_cycles=max_cycles)
