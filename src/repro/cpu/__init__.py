"""Trace-driven superscalar out-of-order core (sim-outorder stand-in).

One cycle-accurate pipeline (:mod:`repro.cpu.pipeline`) serves as both of
the paper's simulators:

* fed by an :class:`~repro.cpu.source.ExecutionDrivenSource`, it is the
  execution-driven *reference* simulator — live caches and branch
  predictor resolve every locality event from real addresses, with
  lookups at fetch and speculative update at dispatch;
* fed by a :class:`~repro.cpu.source.PreannotatedSource`, it is the
  *synthetic-trace* simulator of paper section 2.3 — no caches or
  predictors, all outcomes pre-assigned by the trace generator.

This makes the paper's statement that the two simulators share their
cycle model literal, so accuracy comparisons measure the statistical
methodology rather than model drift.
"""

from repro.cpu.source import (
    ExecutionDrivenSource,
    FetchSlot,
    InstructionSource,
    PreannotatedSource,
)
from repro.cpu.pipeline import SuperscalarPipeline, simulate
from repro.cpu.results import SimulationResult

__all__ = [
    "FetchSlot",
    "InstructionSource",
    "ExecutionDrivenSource",
    "PreannotatedSource",
    "SuperscalarPipeline",
    "SimulationResult",
    "simulate",
]
