"""Simulation result container: the metrics the paper reports.

Besides IPC, the relative-accuracy study (Table 4) tracks RUU, LSQ and
IFQ occupancies and per-unit activity (which the Wattch-style power model
turns into per-unit energy), so the result carries all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimulationResult:
    """Outcome of one pipeline simulation."""

    cycles: int
    instructions: int
    avg_ruu_occupancy: float
    avg_lsq_occupancy: float
    avg_ifq_occupancy: float
    activity: Dict[str, int] = field(default_factory=dict)
    branches: int = 0
    taken_branches: int = 0
    fetch_redirections: int = 0
    branch_mispredictions: int = 0
    squashed_instructions: int = 0

    @property
    def ipc(self) -> float:
        """Instructions retired per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return float("inf")
        return self.cycles / self.instructions

    @property
    def execution_bandwidth(self) -> float:
        """Instructions issued to functional units per cycle (includes
        squashed wrong-path work, as real execution bandwidth does)."""
        if self.cycles == 0:
            return 0.0
        return self.activity.get("issue", 0) / self.cycles

    @property
    def mispredictions_per_kilo_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.branch_mispredictions / self.instructions

    def occupancy(self, unit: str) -> float:
        """Average occupancy of ``"ruu"``, ``"lsq"`` or ``"ifq"``."""
        try:
            return self.occupancies[unit]
        except KeyError:
            raise ValueError(f"unknown occupancy unit {unit!r}") from None

    @property
    def occupancies(self) -> Dict[str, float]:
        """All average structure occupancies, keyed by unit."""
        return {"ruu": self.avg_ruu_occupancy,
                "lsq": self.avg_lsq_occupancy,
                "ifq": self.avg_ifq_occupancy}

    def to_metrics(self) -> Dict[str, float]:
        """Flat metric view of this run — occupancy gauges, headline
        rates and per-unit activity — matching the names the metrics
        registry publishes (see ``docs/observability.md``), so
        validation and analysis read them without going through the
        power model."""
        metrics: Dict[str, float] = {
            "pipeline.cycles": float(self.cycles),
            "pipeline.instructions": float(self.instructions),
            "pipeline.ipc": self.ipc,
            "pipeline.ruu_occupancy": self.avg_ruu_occupancy,
            "pipeline.lsq_occupancy": self.avg_lsq_occupancy,
            "pipeline.ifq_occupancy": self.avg_ifq_occupancy,
            "pipeline.branch_mispredictions":
                float(self.branch_mispredictions),
            "pipeline.squashed_instructions":
                float(self.squashed_instructions),
        }
        for unit, count in self.activity.items():
            metrics[f"pipeline.activity.{unit}"] = float(count)
        return metrics
