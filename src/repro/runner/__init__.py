"""Fault-tolerant experiment execution: task runner, checkpoints,
fault injection.

See :mod:`repro.runner.runner` for semantics and ``docs/robustness.md``
for the operational guide.
"""

from repro.runner.checkpoint import (
    CheckpointStore,
    payload_checksum,
    read_json_checked,
    sanitize_unit_id,
    write_json_atomic,
)
from repro.runner.faults import FaultPlan
from repro.runner.runner import (
    FAILED,
    OK,
    SKIPPED,
    ResultRows,
    RunnerPolicy,
    RunReport,
    TaskRunner,
    UnitOutcome,
    WorkUnit,
    report_footer,
)

__all__ = [
    "CheckpointStore", "payload_checksum", "read_json_checked",
    "sanitize_unit_id", "write_json_atomic",
    "FaultPlan",
    "OK", "FAILED", "SKIPPED",
    "ResultRows", "RunnerPolicy", "RunReport", "TaskRunner",
    "UnitOutcome", "WorkUnit", "report_footer",
]
