"""Checkpoint persistence for the fault-tolerant runner.

A run directory holds one JSON file per completed work unit plus a
manifest.  Every file is written atomically (tmp file + ``os.replace``)
and carries a SHA-256 checksum over its payload, so a killed sweep can
never leave a half-written checkpoint that resumes incorrectly: a
truncated or bit-flipped file fails verification and the unit is simply
re-run.

Layout::

    <run_dir>/
        manifest.json          # experiment name, scale, creation info
        units/<unit_id>.json   # one UnitOutcome payload per unit
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import ArtifactCorruptError

_CHECKSUM_KEY = "checksum"
_UNSAFE = re.compile(r"[^A-Za-z0-9._=-]")

#: Per-process counter making concurrent temp-file names unique even
#: within one process (threaded writers share the pid);
#: ``itertools.count`` increments atomically under the GIL.
_TMP_SERIAL = itertools.count(1)


def payload_checksum(payload: Dict) -> str:
    """SHA-256 over the canonical JSON encoding of *payload*."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_json_atomic(path: Union[str, Path], payload: Dict) -> None:
    """Write *payload* (plus its checksum) to *path* atomically.

    The data lands in a uniquely named ``<path>.<pid>.<n>.tmp`` first
    and is moved into place with ``os.replace``, so readers only ever
    observe the old file or the complete new one — never a truncation
    — and two processes racing to write the same path (a shared result
    cache) cannot interleave inside one temp file; last rename wins
    with both candidates complete.
    """
    path = Path(path)
    document = dict(payload)
    document[_CHECKSUM_KEY] = payload_checksum(payload)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_SERIAL)}.tmp")
    try:
        tmp.write_text(json.dumps(document))
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def read_json_checked(path: Union[str, Path]) -> Dict:
    """Read a checksummed JSON document, verifying its integrity.

    Raises :class:`ArtifactCorruptError` on truncation (JSON decode
    failure), a missing checksum, or a checksum mismatch.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise ArtifactCorruptError(f"cannot read {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactCorruptError(
            f"{path} is not valid JSON (truncated write?): {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ArtifactCorruptError(f"{path} does not hold a JSON object")
    stored = document.pop(_CHECKSUM_KEY, None)
    if stored is None:
        raise ArtifactCorruptError(f"{path} has no checksum field")
    actual = payload_checksum(document)
    if stored != actual:
        raise ArtifactCorruptError(
            f"{path} failed its integrity check "
            f"(stored {stored[:12]}..., computed {actual[:12]}...)"
        )
    return document


def sanitize_unit_id(unit_id: str) -> str:
    """A filesystem-safe file stem for a unit id."""
    return _UNSAFE.sub("_", unit_id)


class CheckpointStore:
    """Per-unit checkpoint files under one run directory."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.units_dir = self.run_dir / "units"
        self.units_dir.mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    def write_manifest(self, manifest: Dict) -> None:
        write_json_atomic(self.manifest_path, manifest)

    def read_manifest(self) -> Optional[Dict]:
        if not self.manifest_path.exists():
            return None
        return read_json_checked(self.manifest_path)

    def _unit_path(self, unit_id: str) -> Path:
        return self.units_dir / (sanitize_unit_id(unit_id) + ".json")

    def store(self, unit_id: str, payload: Dict) -> Path:
        """Persist one completed unit's outcome."""
        path = self._unit_path(unit_id)
        write_json_atomic(path, payload)
        return path

    def load(self, unit_id: str) -> Optional[Dict]:
        """Load a unit's checkpoint, or None if absent.

        A corrupt checkpoint raises :class:`ArtifactCorruptError`; the
        runner treats that as "not checkpointed" and re-runs the unit.
        """
        path = self._unit_path(unit_id)
        if not path.exists():
            return None
        return read_json_checked(path)

    def discard(self, unit_id: str) -> None:
        path = self._unit_path(unit_id)
        if path.exists():
            path.unlink()

    def iter_units(self) -> Iterator[Tuple[Path, Optional[Dict]]]:
        """Yield ``(path, payload-or-None)`` for every checkpoint file
        (None for corrupt ones)."""
        for path in sorted(self.units_dir.glob("*.json")):
            try:
                yield path, read_json_checked(path)
            except ArtifactCorruptError:
                yield path, None
