"""Fault-tolerant task runner (the experiment execution subsystem).

The paper's economics rest on running *many* design points per profile
(Figure 1; the section 4.6 sweep evaluates 1,792 configurations), so a
multi-benchmark experiment is a batch job: one crashed benchmark must
not discard the other nine benchmarks' finished work.  This module
decomposes an experiment into :class:`WorkUnit`\\ s and executes each
with

* **exception containment** — a unit that raises is recorded as a
  structured failure instead of aborting the suite;
* **wall-clock timeouts** — a hung unit becomes a retryable
  :class:`~repro.errors.TaskTimeoutError`;
* **bounded retry with backoff** — retryable errors (timeouts,
  injected transients) are re-attempted up to ``max_retries`` times;
* **checkpoint/resume** — each completed unit is persisted atomically
  to a run directory, so a killed sweep resumes where it stopped and
  re-runs only failed or missing units.

A unit that exhausts its retries degrades gracefully: it is excluded
from aggregate tables (with an explicit warning in the rendered
output) and surfaced in the run summary as ``N ok / M failed /
K skipped`` instead of crashing the experiment.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import (
    ArtifactCorruptError,
    TaskTimeoutError,
    is_retryable,
)
from repro.obs import events as obs_events
from repro.obs.metrics import get_registry
from repro.obs.profiling import maybe_profiled
from repro.obs.tracing import trace_span
from repro.faults import plan_from_env
from repro.runner.checkpoint import CheckpointStore

#: Sentinel: "no explicit plan given, consult the environment".
_ENV_PLAN = object()

OK = "ok"
FAILED = "failed"
SKIPPED = "skipped"


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable piece of an experiment."""

    experiment: str
    benchmark: Optional[str] = None
    seed: Optional[int] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def unit_id(self) -> str:
        parts = [self.experiment]
        if self.benchmark is not None:
            parts.append(self.benchmark)
        if self.seed is not None:
            parts.append(f"seed{self.seed}")
        parts.extend(f"{key}={value}" for key, value in self.params)
        return "/".join(parts)


@dataclass(frozen=True)
class RunnerPolicy:
    """Execution policy: timeout and retry behaviour per unit."""

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before retry number *attempt* (1-based)."""
        delay = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        return min(delay, self.backoff_cap)


@dataclass
class UnitOutcome:
    """What happened to one work unit."""

    unit_id: str
    status: str  # OK | FAILED | SKIPPED
    benchmark: Optional[str] = None
    seed: Optional[int] = None
    result: Optional[Any] = None
    error: Optional[Dict[str, Any]] = None
    attempts: int = 0
    elapsed: float = 0.0

    def to_payload(self) -> Dict[str, Any]:
        status = OK if self.status == SKIPPED else self.status
        return {
            "unit_id": self.unit_id,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "status": status,
            "result": self.result,
            "error": self.error,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }


@dataclass
class RunReport:
    """Aggregate outcome of one runner invocation."""

    outcomes: List[UnitOutcome] = field(default_factory=list)

    def _with_status(self, status: str) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def ok(self) -> List[UnitOutcome]:
        return self._with_status(OK)

    @property
    def failed(self) -> List[UnitOutcome]:
        return self._with_status(FAILED)

    @property
    def skipped(self) -> List[UnitOutcome]:
        return self._with_status(SKIPPED)

    @property
    def results(self) -> List[Any]:
        """Results of successful units (fresh and resumed), in unit
        order."""
        return [o.result for o in self.outcomes if o.status != FAILED]

    def summary(self) -> str:
        return (f"{len(self.ok)} ok / {len(self.failed)} failed / "
                f"{len(self.skipped)} skipped")

    def warning_lines(self) -> List[str]:
        lines = []
        for outcome in self.failed:
            error = outcome.error or {}
            lines.append(
                f"WARNING: {outcome.unit_id} failed after "
                f"{outcome.attempts} attempt(s): "
                f"{error.get('type', 'Error')}: "
                f"{error.get('message', 'unknown error')}")
        return lines


class ResultRows(List[Dict]):
    """Experiment rows plus the run report that produced them.

    Behaves exactly like the plain ``List[Dict]`` experiments always
    returned, so existing callers are unaffected; renderers inspect
    ``.report`` to append degradation warnings and the run summary.
    """

    report: Optional[RunReport]

    def __init__(self, rows: Sequence[Dict] = (),
                 report: Optional[RunReport] = None) -> None:
        super().__init__(rows)
        self.report = report


def report_footer(rows: Sequence[Dict]) -> str:
    """Warning + summary lines for a table built from *rows*, or ""
    when every unit succeeded and nothing was resumed."""
    report = getattr(rows, "report", None)
    if report is None:
        return ""
    lines = report.warning_lines()
    if lines or report.skipped:
        lines.append(f"run summary: {report.summary()}")
    return "\n".join(lines)


def _error_info(error: BaseException) -> Dict[str, Any]:
    return {
        "type": type(error).__name__,
        "message": str(error),
        "retryable": is_retryable(error),
        # The formatted traceback makes a contained failure debuggable
        # from the checkpoint / failure record alone — essential once
        # the error crossed a process boundary and the live traceback
        # object is gone.
        "traceback": "".join(traceback.format_exception(
            type(error), error, error.__traceback__)),
    }


def call_with_timeout(fn: Callable[[], Any], timeout: Optional[float],
                      name: str) -> Any:
    """Run ``fn()`` with a wall-clock budget.

    Raises :class:`~repro.errors.TaskTimeoutError` when *timeout*
    seconds elapse first; with ``timeout=None`` the call runs inline.
    Shared by :class:`TaskRunner` and the parallel design-space engine
    (:mod:`repro.dse.engine`), so per-unit and per-design-point budgets
    behave identically.  The timed-out worker thread is abandoned
    (Python cannot kill it); being a daemon it will not block
    interpreter exit.
    """
    if timeout is None:
        return fn()
    box: Dict[str, Any] = {}

    def worker() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            box["error"] = exc

    thread = threading.Thread(target=worker, daemon=True,
                              name=f"repro-unit-{name}")
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise TaskTimeoutError(
            f"{name} exceeded its {timeout:g}s budget")
    if "error" in box:
        raise box["error"]
    return box["result"]


class TaskRunner:
    """Executes work units with containment, timeouts, retries and
    checkpointing.  See the module docstring for semantics."""

    def __init__(
        self,
        policy: Optional[RunnerPolicy] = None,
        run_dir: Optional[Union[str, "Path"]] = None,
        resume: bool = False,
        fault_plan: Any = _ENV_PLAN,
        raise_on_total_failure: bool = True,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.policy = policy or RunnerPolicy()
        self.store = CheckpointStore(run_dir) if run_dir else None
        self.resume = resume
        if fault_plan is _ENV_PLAN:
            fault_plan = plan_from_env()
        self.fault_plan: Optional[Any] = fault_plan
        self.raise_on_total_failure = raise_on_total_failure
        self.log = log or (lambda message: None)
        self.last_report: Optional[RunReport] = None

    # -- execution -----------------------------------------------------

    def _call_with_timeout(self, fn: Callable[[WorkUnit], Any],
                           unit: WorkUnit) -> Any:
        return call_with_timeout(
            maybe_profiled(lambda: fn(unit), unit.unit_id),
            self.policy.timeout, unit.unit_id)

    def _attempt_loop(self, fn: Callable[[WorkUnit], Any],
                      unit: WorkUnit) -> UnitOutcome:
        # One span per work unit, so a stitched fleet trace shows each
        # unit (with retries inside it) as a child of whatever sweep /
        # job span dispatched it.
        span_fields = {"unit": unit.unit_id}
        if unit.benchmark is not None:
            span_fields["bench"] = unit.benchmark
        if unit.seed is not None:
            span_fields["seed"] = unit.seed
        with trace_span("unit", **span_fields):
            return self._attempt_loop_inner(fn, unit)

    def _attempt_loop_inner(self, fn: Callable[[WorkUnit], Any],
                            unit: WorkUnit) -> UnitOutcome:
        policy = self.policy
        registry = get_registry()
        attempt = 0
        started = time.perf_counter()
        obs_events.emit("unit_start", level="debug",
                        unit=unit.unit_id, benchmark=unit.benchmark,
                        seed=unit.seed)
        while True:
            attempt += 1
            try:
                if self.fault_plan is not None:
                    self.fault_plan.inject(unit.unit_id, unit.benchmark,
                                           attempt)
                result = self._call_with_timeout(fn, unit)
            except Exception as exc:  # noqa: BLE001 — containment
                if isinstance(exc, TaskTimeoutError):
                    registry.counter("runner.timeouts").inc()
                    obs_events.emit("unit_timeout", level="warning",
                                    unit=unit.unit_id,
                                    benchmark=unit.benchmark,
                                    attempt=attempt,
                                    timeout=policy.timeout)
                if is_retryable(exc) and attempt <= policy.max_retries:
                    delay = policy.backoff(attempt)
                    registry.counter("runner.retries").inc()
                    message = (f"{unit.unit_id}: attempt {attempt} "
                               f"failed ({type(exc).__name__}: {exc}); "
                               f"retrying in {delay:g}s")
                    obs_events.emit("unit_retry", msg=message,
                                    level="warning",
                                    unit=unit.unit_id,
                                    benchmark=unit.benchmark,
                                    attempt=attempt,
                                    error=type(exc).__name__,
                                    backoff=delay)
                    self.log(message)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._last_error = exc
                elapsed = time.perf_counter() - started
                registry.counter("runner.units_failed").inc()
                registry.histogram("runner.unit_seconds").observe(elapsed)
                obs_events.emit("unit_failed", level="warning",
                                unit=unit.unit_id,
                                benchmark=unit.benchmark,
                                attempts=attempt,
                                error=type(exc).__name__,
                                message=str(exc),
                                traceback="".join(
                                    traceback.format_exception(
                                        type(exc), exc,
                                        exc.__traceback__)),
                                elapsed=round(elapsed, 6))
                return UnitOutcome(
                    unit_id=unit.unit_id, status=FAILED,
                    benchmark=unit.benchmark, seed=unit.seed,
                    error=_error_info(exc), attempts=attempt,
                    elapsed=elapsed)
            elapsed = time.perf_counter() - started
            registry.counter("runner.units_ok").inc()
            registry.histogram("runner.unit_seconds").observe(elapsed)
            obs_events.emit("unit_ok", level="debug",
                            unit=unit.unit_id, benchmark=unit.benchmark,
                            attempts=attempt, elapsed=round(elapsed, 6))
            return UnitOutcome(
                unit_id=unit.unit_id, status=OK,
                benchmark=unit.benchmark, seed=unit.seed,
                result=result, attempts=attempt,
                elapsed=elapsed)

    def _resume_outcome(self, unit: WorkUnit) -> Optional[UnitOutcome]:
        """A SKIPPED outcome when the unit already completed in a
        previous run, else None (run it)."""
        if self.store is None or not self.resume:
            return None
        try:
            payload = self.store.load(unit.unit_id)
        except ArtifactCorruptError as exc:
            message = (f"{unit.unit_id}: discarding corrupt checkpoint "
                       f"({exc}); re-running")
            obs_events.emit("checkpoint_corrupt", msg=message,
                            level="warning", unit=unit.unit_id,
                            benchmark=unit.benchmark)
            self.log(message)
            self.store.discard(unit.unit_id)
            return None
        if payload is None or payload.get("status") != OK:
            return None  # missing or failed units re-run
        get_registry().counter("runner.units_resumed").inc()
        obs_events.emit("unit_resumed",
                        msg=f"{unit.unit_id}: resumed from checkpoint",
                        level="info",
                        unit=unit.unit_id, benchmark=unit.benchmark)
        return UnitOutcome(
            unit_id=unit.unit_id, status=SKIPPED,
            benchmark=unit.benchmark, seed=unit.seed,
            result=payload.get("result"),
            attempts=int(payload.get("attempts", 1)),
            elapsed=float(payload.get("elapsed", 0.0)))

    def run(self, units: Sequence[WorkUnit],
            fn: Callable[[WorkUnit], Any],
            manifest: Optional[Dict[str, Any]] = None) -> RunReport:
        """Execute every unit; return the aggregate report.

        ``fn(unit)`` must return a JSON-serializable value for the
        checkpoint to round-trip.  When every unit fails (and at least
        one ran), the last exception is re-raised so a systematically
        broken experiment still fails loudly.
        """
        if self.store is not None and manifest is not None:
            self.store.write_manifest(manifest)
        self._last_error: Optional[BaseException] = None
        report = RunReport()
        for unit in units:
            outcome = self._resume_outcome(unit)
            if outcome is None:
                outcome = self._attempt_loop(fn, unit)
                if self.store is not None:
                    try:
                        self.store.store(unit.unit_id,
                                         outcome.to_payload())
                    except (TypeError, ValueError) as exc:
                        # Non-JSON-serializable result: the unit still
                        # succeeded, it just cannot be resumed.
                        self.log(f"{unit.unit_id}: result not "
                                 f"checkpointable ({exc})")
            else:
                self.log(f"{unit.unit_id}: resumed from checkpoint")
            report.outcomes.append(outcome)
        self.last_report = report
        obs_events.emit("runner_summary", level="debug",
                        units=len(report.outcomes),
                        ok=len(report.ok), failed=len(report.failed),
                        skipped=len(report.skipped))
        if self.store is not None:
            # The per-run observability manifest lives alongside the
            # checkpoints, so a crashed or resumed run keeps its
            # wall-clock breakdown and counters on disk.
            get_registry().write(self.store.run_dir / "metrics.json")
        if (self.raise_on_total_failure and report.outcomes
                and len(report.failed) == len(report.outcomes)
                and self._last_error is not None):
            raise self._last_error
        return report
