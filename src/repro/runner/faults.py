"""Backward-compatibility shim: :class:`FaultPlan` moved to
:mod:`repro.faults.legacy` when fault injection became its own
subsystem (see :mod:`repro.faults` for the unified ``REPRO_CHAOS``
harness).  Import from :mod:`repro.faults` in new code."""

from repro.faults.legacy import FaultPlan

__all__ = ["FaultPlan"]
