"""The statistical flow graph (paper section 2.1.1).

An order-k SFG characterizes control flow as sequences of basic blocks:
a *context* is a basic block together with its history of k preceding
blocks (a ``(k+1)``-gram).  Transition probabilities
``P[Bn | Bn-1 .. Bn-k]`` hang on the k-block histories; everything else —
instruction types, operand counts, per-operand dependency-distance
distributions, and the microarchitecture-dependent branch and cache
characteristics — is recorded per context, so "the same branch with a
different history is stored separately" (section 2.1.2).

For k = 0 a context is a single basic block and the graph has no edges;
the synthetic trace generator then draws blocks independently from the
occurrence distribution, as the paper specifies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.isa.iclass import IClass

#: Dependency distances are capped here, "which still allows the modeling
#: of a wide range of current and near-future microprocessors" (§2.1.1).
MAX_DEPENDENCY_DISTANCE = 512

#: History placeholder used before k blocks have executed.
START_BLOCK = -1

Context = Tuple[int, ...]
History = Tuple[int, ...]


class ContextStats:
    """All statistics for one context (basic block + history).

    Per instruction slot ``i`` of the block:

    * ``iclasses[i]`` / ``n_src[i]`` — instruction type and operand count;
    * ``dep_hists[i][p]`` — histogram of dependency distances of operand
      ``p`` (absence of a distance means the operand had no in-range
      producer, and its probability mass is ``occurrences - recorded``);
    * ``il1 / l2i / itlb`` — instruction-fetch miss counts;
    * ``dl1 / l2d / dtlb`` — load miss counts (loads only);
    * ``taken / outcome_counts`` — the terminating branch's taken count
      and its [correct, fetch-redirection, misprediction] counts.
    """

    __slots__ = ("occurrences", "iclasses", "n_src", "dep_hists",
                 "waw_hists", "war_hists",
                 "il1", "l2i", "itlb", "dl1", "l2d", "dtlb",
                 "taken", "outcome_counts")

    def __init__(self, iclasses: Sequence[IClass],
                 n_src: Sequence[int]) -> None:
        size = len(iclasses)
        if size == 0:
            raise ValueError("context must describe a non-empty block")
        self.occurrences = 0
        self.iclasses: List[IClass] = list(iclasses)
        self.n_src: List[int] = list(n_src)
        self.dep_hists: List[List[Dict[int, int]]] = [
            [dict() for _ in range(n)] for n in n_src
        ]
        # WAW/WAR distance histograms per producing slot — the paper's
        # section 2.1.1 extension for in-order execution and limited
        # physical registers.
        self.waw_hists: List[Dict[int, int]] = [dict() for _ in range(size)]
        self.war_hists: List[Dict[int, int]] = [dict() for _ in range(size)]
        self.il1 = [0] * size
        self.l2i = [0] * size
        self.itlb = [0] * size
        self.dl1 = [0] * size
        self.l2d = [0] * size
        self.dtlb = [0] * size
        self.taken = 0
        self.outcome_counts = [0, 0, 0]

    @property
    def block_size(self) -> int:
        return len(self.iclasses)

    def record_dependency(self, slot: int, operand: int,
                          distance: int) -> None:
        """Record one observed RAW distance (saturating at the cap)."""
        distance = min(distance, MAX_DEPENDENCY_DISTANCE)
        hist = self.dep_hists[slot][operand]
        hist[distance] = hist.get(distance, 0) + 1

    def record_anti_dependency(self, slot: int, kind: str,
                               distance: int) -> None:
        """Record one observed WAW (``kind="waw"``) or WAR
        (``kind="war"``) distance for a producing slot."""
        distance = min(distance, MAX_DEPENDENCY_DISTANCE)
        if kind == "waw":
            hist = self.waw_hists[slot]
        elif kind == "war":
            hist = self.war_hists[slot]
        else:
            raise ValueError(f"kind must be 'waw' or 'war', got {kind!r}")
        hist[distance] = hist.get(distance, 0) + 1


class StatisticalFlowGraph:
    """Order-k statistical flow graph.

    ``contexts`` maps each (k+1)-gram of basic block ids to its
    :class:`ContextStats`; ``transitions`` maps each k-gram history to
    next-block counts.  ``num_nodes`` (the paper's Table 3 metric) is the
    number of distinct contexts.
    """

    def __init__(self, order: int) -> None:
        if order < 0:
            raise ValueError("order must be >= 0")
        self.order = order
        self.contexts: Dict[Context, ContextStats] = {}
        self.transitions: Dict[History, Dict[int, int]] = {}
        self.total_block_executions = 0

    # ------------------------------------------------------------ build
    def context_for(self, history: Sequence[int], block: int,
                    iclasses: Sequence[IClass],
                    n_src: Sequence[int]) -> ContextStats:
        """Get or create the stats record for (history, block)."""
        key: Context = tuple(history) + (block,)
        stats = self.contexts.get(key)
        if stats is None:
            stats = ContextStats(iclasses, n_src)
            self.contexts[key] = stats
        elif stats.block_size != len(iclasses):
            raise ValueError(
                f"context {key} re-observed with a different block size"
            )
        return stats

    def record_transition(self, history: Sequence[int], block: int) -> None:
        """Count one ``history -> block`` transition."""
        key: History = tuple(history)
        counts = self.transitions.get(key)
        if counts is None:
            counts = {}
            self.transitions[key] = counts
        counts[block] = counts.get(block, 0) + 1

    # ---------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        """Number of distinct contexts (the paper's Table 3 count)."""
        return len(self.contexts)

    def occurrences(self) -> Dict[Context, int]:
        return {key: stats.occurrences
                for key, stats in self.contexts.items()}

    def transition_probability(self, history: Sequence[int],
                               block: int) -> float:
        """``P[block | history]`` as profiled."""
        counts = self.transitions.get(tuple(history))
        if not counts:
            return 0.0
        total = sum(counts.values())
        return counts.get(block, 0) / total

    def validate(self) -> None:
        """Check internal consistency (testing aid).

        * context occurrences sum to the total block executions;
        * every context's history matches its key length (order + 1);
        * recorded per-slot miss counts never exceed occurrences.
        """
        total = sum(s.occurrences for s in self.contexts.values())
        if total != self.total_block_executions:
            raise AssertionError("occurrence mass mismatch")
        for key, stats in self.contexts.items():
            if len(key) != self.order + 1:
                raise AssertionError(f"bad context arity: {key}")
            for slot in range(stats.block_size):
                for counter in (stats.il1, stats.l2i, stats.itlb,
                                stats.dl1, stats.l2d, stats.dtlb):
                    if counter[slot] > stats.occurrences:
                        raise AssertionError("miss count exceeds visits")
            if sum(stats.outcome_counts) > stats.occurrences:
                raise AssertionError("branch outcome count exceeds visits")
