"""Reduced statistical flow graph (paper section 2.2).

Before synthesis, the node occurrences are divided by the synthetic trace
reduction factor R (``Ni = floor(Mi / R)``) and nodes left with zero
occurrences are removed together with their edges.  The reduced graph is
generally no longer fully interconnected, "however, the interconnection
is still strong enough to allow for accurate performance predictions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SynthesisError
from repro.core.sfg import Context, StatisticalFlowGraph


@dataclass
class ReducedFlowGraph:
    """The surviving contexts with their reduced occurrence budgets.

    Transition probabilities stay those of the full SFG; during the walk
    an edge is only eligible while its target context has budget left
    (see DESIGN.md for this termination interpretation).
    """

    sfg: StatisticalFlowGraph
    reduction_factor: float
    occurrences: Dict[Context, int]

    @property
    def total_blocks(self) -> int:
        """Blocks the synthetic walk will emit (sum of budgets)."""
        return sum(self.occurrences.values())

    @property
    def num_nodes(self) -> int:
        return len(self.occurrences)


def reduce_flow_graph(sfg: StatisticalFlowGraph,
                      reduction_factor: float) -> ReducedFlowGraph:
    """Divide occurrences by *reduction_factor* and drop empty nodes."""
    if reduction_factor < 1:
        raise SynthesisError(
            f"reduction factor must be >= 1, got {reduction_factor!r}")
    reduced: Dict[Context, int] = {}
    for context, stats in sfg.contexts.items():
        budget = int(stats.occurrences // reduction_factor)
        if budget > 0:
            reduced[context] = budget
    return ReducedFlowGraph(sfg=sfg, reduction_factor=reduction_factor,
                            occurrences=reduced)
