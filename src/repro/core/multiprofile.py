"""Single-pass multi-configuration profiling.

The paper (section 2.1.2) notes that needing microarchitecture-
dependent cache characteristics "does not limit applicability" because
single-pass multiple-configuration tools exist (citing the cheetah
simulator).  This module provides that capability for design-space
sweeps over cache capacity: one pass over the dynamic trace feeds one
cache hierarchy per scale while the microarchitecture-independent
characteristics and branch characteristics (which do not depend on the
caches) are measured once and shared — producing one complete
:class:`~repro.core.profiler.StatisticalProfile` per cache scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig
from repro.frontend.trace import Trace
from repro.cache.hierarchy import CacheHierarchy
from repro.core.profiler import (
    BRANCH_MODES,
    StatisticalProfile,
    _branch_records,
)
from repro.core.sfg import (
    MAX_DEPENDENCY_DISTANCE,
    START_BLOCK,
    StatisticalFlowGraph,
)


def profile_trace_multi_cache(
    trace: Trace,
    config: MachineConfig,
    cache_scales: Sequence[float],
    order: int = 1,
    branch_mode: str = "delayed",
    warmup_trace: Optional[Trace] = None,
) -> Dict[float, StatisticalProfile]:
    """Profile *trace* once for several cache scalings.

    Returns one profile per scale in *cache_scales* (1.0 = the given
    config's caches).  Branch characteristics are measured once against
    *config*'s predictor; each scale gets its own cache hierarchy and
    its own per-context locality annotations.
    """
    from repro.frontend.warming import warm_locality_structures

    if order < 0:
        raise ValueError("order must be >= 0")
    if branch_mode not in BRANCH_MODES:
        raise ValueError(
            f"branch_mode must be one of {BRANCH_MODES}, got {branch_mode!r}"
        )
    if not cache_scales:
        raise ValueError("need at least one cache scale")

    configs = {scale: config.with_cache_scale(scale)
               for scale in cache_scales}
    hierarchies: Dict[float, CacheHierarchy] = {}
    for scale, scaled_config in configs.items():
        hierarchy, _ = warm_locality_structures(warmup_trace,
                                                scaled_config)
        hierarchies[scale] = hierarchy
    _, warm_unit = warm_locality_structures(warmup_trace, config)
    branch_records = _branch_records(trace, config, branch_mode,
                                     unit=warm_unit)

    sfgs = {scale: StatisticalFlowGraph(order) for scale in cache_scales}
    history: List[int] = [START_BLOCK] * order
    last_writer: Dict[int, int] = {}
    last_reader: Dict[int, int] = {}
    block_insts: list = []
    # Per scale: buffered per-slot cache events of the current block.
    block_events: Dict[float, list] = {scale: [] for scale in cache_scales}

    for inst in trace.instructions:
        for scale, hierarchy in hierarchies.items():
            iresult = hierarchy.access_instruction(inst.pc)
            dl1 = l2d = dtlb = False
            if inst.mem_addr is not None:
                dresult = hierarchy.access_data(inst.mem_addr,
                                                is_store=inst.is_store)
                if inst.is_load:
                    dl1, l2d, dtlb = (dresult.dl1_miss, dresult.l2_miss,
                                      dresult.dtlb_miss)
            block_events[scale].append(
                (iresult.il1_miss, iresult.l2_miss, iresult.itlb_miss,
                 dl1, l2d, dtlb))
        block_insts.append(inst)
        if not inst.is_branch:
            continue

        block = inst.bb_id
        iclasses = [i.iclass for i in block_insts]
        n_src = [len(i.src_regs) for i in block_insts]
        record = branch_records.get(inst.seq)

        # Dependency distances are scale-independent: compute once.
        dependencies: list = []
        for slot, binst in enumerate(block_insts):
            for operand, reg in enumerate(binst.src_regs):
                writer = last_writer.get(reg)
                if writer is not None:
                    distance = binst.seq - writer
                    if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                        dependencies.append((slot, operand, distance))
                last_reader[reg] = binst.seq
            if binst.dst_reg is not None:
                for kind, table in (("waw", last_writer),
                                    ("war", last_reader)):
                    prior = table.get(binst.dst_reg)
                    if prior is not None:
                        distance = binst.seq - prior
                        if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                            dependencies.append((slot, kind, distance))
                last_writer[binst.dst_reg] = binst.seq

        for scale, sfg in sfgs.items():
            stats = sfg.context_for(history, block, iclasses=iclasses,
                                    n_src=n_src)
            stats.occurrences += 1
            sfg.total_block_executions += 1
            sfg.record_transition(history, block)
            for slot, events in enumerate(block_events[scale]):
                il1, l2i, itlb, dl1, l2d, dtlb = events
                stats.il1[slot] += il1
                stats.l2i[slot] += l2i
                stats.itlb[slot] += itlb
                stats.dl1[slot] += dl1
                stats.l2d[slot] += l2d
                stats.dtlb[slot] += dtlb
            for slot, operand, distance in dependencies:
                if operand in ("waw", "war"):
                    stats.record_anti_dependency(slot, operand, distance)
                else:
                    stats.record_dependency(slot, operand, distance)
            if record is not None:
                stats.taken += record.taken
                stats.outcome_counts[record.outcome] += 1

        if order > 0:
            history.append(block)
            del history[0]
        block_insts = []
        block_events = {scale: [] for scale in cache_scales}

    return {
        scale: StatisticalProfile(
            name=trace.name,
            order=order,
            sfg=sfgs[scale],
            trace_instructions=len(trace),
            branch_mode=branch_mode,
            perfect_caches=False,
            config=configs[scale],
        )
        for scale in cache_scales
    }
