"""The paper's primary contribution: statistical simulation with a
statistical flow graph (SFG) and delayed-update branch profiling.

Pipeline (paper Figure 1):

1. :mod:`repro.core.profiler` measures a :class:`StatisticalProfile`
   containing an order-k :class:`StatisticalFlowGraph` annotated with
   instruction types, operand counts, dependency-distance distributions,
   and per-context branch/cache characteristics.
2. :mod:`repro.core.reduction` divides node occurrences by the synthetic
   trace reduction factor R.
3. :mod:`repro.core.synthesis` random-walks the reduced graph to emit a
   :class:`SyntheticTrace` (the nine-step algorithm of section 2.2).
4. :mod:`repro.core.framework` simulates the synthetic trace on the
   shared out-of-order pipeline and reports IPC / EPC / EDP.
"""

from repro.core.sfg import ContextStats, StatisticalFlowGraph
from repro.core.profiler import StatisticalProfile, profile_trace
from repro.core.reduction import ReducedFlowGraph, reduce_flow_graph
from repro.core.synthesis import generate_synthetic_trace
from repro.core.synthetic import SyntheticInstruction, SyntheticTrace
from repro.core.framework import (
    StatisticalSimulationReport,
    run_execution_driven,
    run_statistical_simulation,
    simulate_synthetic_trace,
)
from repro.core.metrics import (
    absolute_error,
    coefficient_of_variation,
    relative_error,
)
from repro.core.analysis import (
    hottest_contexts,
    reduced_connectivity,
    to_networkx,
    transition_entropy,
)
from repro.core.multiprofile import profile_trace_multi_cache
from repro.core.serialization import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

__all__ = [
    "StatisticalFlowGraph",
    "ContextStats",
    "StatisticalProfile",
    "profile_trace",
    "ReducedFlowGraph",
    "reduce_flow_graph",
    "generate_synthetic_trace",
    "SyntheticInstruction",
    "SyntheticTrace",
    "StatisticalSimulationReport",
    "run_statistical_simulation",
    "run_execution_driven",
    "simulate_synthetic_trace",
    "absolute_error",
    "relative_error",
    "coefficient_of_variation",
    "to_networkx",
    "transition_entropy",
    "reduced_connectivity",
    "hottest_contexts",
    "profile_trace_multi_cache",
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
]
