"""Shared-memory publication of compiled columnar sampling tables.

A DSE sweep evaluates hundreds of design points against one profile.
The per-context sampling tables (:class:`repro.core.columnar
.ColumnarTables`) depend only on the profile's SFG, yet every worker
process used to rebuild them from scratch after unpickling its copy of
the profile.  This module serializes the compiled tables into one
self-describing binary blob, publishes it as a
``multiprocessing.shared_memory`` segment (with a plain mmap'd file
under the run directory as fallback when POSIX shared memory is
unavailable), and lets workers attach the arrays zero-copy with
``np.frombuffer`` views straight into the segment.

The payload is self-describing: it carries the context list and edge
tables alongside the raw array bytes, so the attaching process maps
budgets onto table rows through the *payload's* context order — worker-
side dict ordering never matters.

Hygiene contract (tested by ``tests/test_shm_tables.py``):

* the publisher unlinks its segment on normal exit, on SIGTERM and in
  the sweep engine's ``finally`` paths;
* attachers map the segment read-only (``/dev/shm/<name>`` directly on
  Linux, so no per-attacher ``resource_tracker`` registration exists
  to unlink the publisher's segment or unbalance a fork-shared
  tracker; elsewhere they attach via ``SharedMemory`` and immediately
  deregister);
* a ``kill -9`` of the whole sweep leaves cleanup to the publisher's
  resource tracker — a separate process that survives the kill and
  unlinks every registered segment — so ``/dev/shm`` never accumulates
  orphans.
"""

from __future__ import annotations

import atexit
import pickle
import struct
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.columnar import ColumnarTables

_MAGIC = b"RPCT0001"
_HEADER = struct.Struct("<8sQ")


def serialize_tables(tables: ColumnarTables) -> bytes:
    """Pack *tables* into one self-describing binary blob."""
    arrays = tables.arrays()
    entries: List[tuple] = []
    offset = 0
    chunks: List[bytes] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        # 8-byte alignment keeps every dtype's frombuffer view legal.
        pad = (-offset) % 8
        if pad:
            chunks.append(b"\0" * pad)
            offset += pad
        data = array.tobytes()
        entries.append((name, array.dtype.str, array.shape, offset,
                        len(data)))
        chunks.append(data)
        offset += len(data)
    header = pickle.dumps({
        "meta": {
            "order": tables.order,
            "include_anti": tables.include_anti,
            "contexts": tables.contexts,
            "edges": tables.edges,
        },
        "arrays": entries,
    }, protocol=pickle.HIGHEST_PROTOCOL)
    return b"".join([_HEADER.pack(_MAGIC, len(header)), header] + chunks)


def deserialize_tables(buf) -> ColumnarTables:
    """Rebuild :class:`ColumnarTables` from a blob produced by
    :func:`serialize_tables`.

    *buf* may be a ``bytes`` object or a ``memoryview`` over a shared
    segment; array attributes become read-only views into it (zero
    copy), so the segment must stay mapped while the tables are in use
    — :class:`AttachedTables` guarantees that by holding the mapping.
    """
    view = memoryview(buf)
    magic, header_len = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError(
            f"not a columnar tables blob (magic {magic!r})")
    header = pickle.loads(view[_HEADER.size:_HEADER.size + header_len])
    data_start = _HEADER.size + header_len
    tables = ColumnarTables()
    meta = header["meta"]
    tables.order = meta["order"]
    tables.include_anti = meta["include_anti"]
    tables.contexts = meta["contexts"]
    tables.ctx_index = {context: cid
                       for cid, context in enumerate(meta["contexts"])}
    tables.edges = meta["edges"]
    for name, dtype, shape, offset, nbytes in header["arrays"]:
        start = data_start + offset
        array = np.frombuffer(view[start:start + nbytes],
                              dtype=np.dtype(dtype)).reshape(shape)
        setattr(tables, name, array)
    return tables


class PublishedTables:
    """Publisher-side handle for one shared segment (or fallback file).

    The descriptor (:attr:`descriptor`) is what travels to workers via
    pool initargs; :meth:`unlink` removes the segment and is idempotent
    — the engine calls it from ``finally``, ``atexit`` and its SIGTERM
    hook, whichever fires first wins.
    """

    def __init__(self, kind: str, name: str, size: int,
                 shm: Any = None) -> None:
        self.kind = kind
        self.name = name
        self.size = size
        self._shm = shm
        self._unlinked = False

    @property
    def descriptor(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "size": self.size}

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        elif self.kind == "file":
            import os

            try:
                os.unlink(self.name)
            except OSError:
                pass


def publish_tables(tables: ColumnarTables,
                   fallback_dir: Optional[str] = None) -> PublishedTables:
    """Publish *tables* for cross-process attachment.

    Tries POSIX shared memory first; when that fails (no /dev/shm,
    size limits) and *fallback_dir* is given, writes an mmap-able file
    there instead.
    """
    blob = serialize_tables(tables)
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        shm.buf[:len(blob)] = blob
        published = PublishedTables("shm", shm.name, len(blob), shm=shm)
    except OSError:
        if fallback_dir is None:
            raise
        import os

        os.makedirs(fallback_dir, exist_ok=True)
        path = os.path.join(fallback_dir, "columnar_tables.bin")
        with open(path, "wb") as handle:
            handle.write(blob)
        published = PublishedTables("file", path, len(blob))
    atexit.register(published.unlink)
    return published


class AttachedTables:
    """Worker-side handle: the deserialized tables plus the live
    mapping backing their zero-copy array views."""

    def __init__(self, tables: ColumnarTables, mapping: Any) -> None:
        self.tables = tables
        self._mapping = mapping

    def close(self) -> None:
        tables, self.tables = self.tables, None
        if tables is not None:
            # Drop the array views before the buffer: an exported
            # memoryview keeps SharedMemory.close() from releasing.
            for name in list(tables.arrays()):
                setattr(tables, name, None)
        mapping, self._mapping = self._mapping, None
        if mapping is not None:
            try:
                mapping.close()
            except (BufferError, OSError):
                pass


#: Worker-side attachments kept alive for the process lifetime (the
#: adopted tables hold views into the mapping).
_ATTACHED: List[AttachedTables] = []


def attach_tables(descriptor: Dict[str, Any]) -> ColumnarTables:
    """Attach a published segment and return its tables.

    The mapping is cached for the process lifetime and closed at
    interpreter exit; the segment itself is never unlinked here — that
    is the publisher's job.
    """
    kind = descriptor["kind"]
    if kind == "shm":
        import mmap
        import os

        # POSIX shared memory is a file under /dev/shm on Linux: map it
        # directly instead of via SharedMemory(name=...), whose
        # constructor registers the segment with this process's
        # resource tracker (under fork that tracker is *shared* with
        # the publisher, and the attach/unregister churn unbalances its
        # registration set).  A plain read-only mmap leaves the
        # publisher's registration as the sole cleanup record.
        path = "/dev/shm/" + descriptor["name"].lstrip("/")
        if os.path.exists(path):
            with open(path, "rb") as handle:
                mapping = mmap.mmap(handle.fileno(), 0,
                                    access=mmap.ACCESS_READ)
            tables = deserialize_tables(
                memoryview(mapping)[:descriptor["size"]])
            attachment = AttachedTables(tables, mapping)
        else:
            from multiprocessing import shared_memory, resource_tracker

            shm = shared_memory.SharedMemory(name=descriptor["name"])
            # Deregister so this worker's tracker does not unlink the
            # publisher's segment when the worker exits.
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
            tables = deserialize_tables(shm.buf[:descriptor["size"]])
            attachment = AttachedTables(tables, shm)
    elif kind == "file":
        import mmap

        with open(descriptor["name"], "rb") as handle:
            mapping = mmap.mmap(handle.fileno(), 0,
                                access=mmap.ACCESS_READ)
        tables = deserialize_tables(memoryview(mapping))
        attachment = AttachedTables(tables, mapping)
    else:
        raise ValueError(f"unknown shared-tables kind {kind!r}")
    if not _ATTACHED:
        atexit.register(_close_attachments)
    _ATTACHED.append(attachment)
    return tables


def _close_attachments() -> None:
    while _ATTACHED:
        _ATTACHED.pop().close()
