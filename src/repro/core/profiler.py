"""Statistical profiling (paper Figure 1, step 1).

One pass over a dynamic trace builds the :class:`StatisticalProfile`:

* microarchitecture-independent: the order-k SFG with instruction types,
  operand counts and per-operand dependency-distance distributions;
* microarchitecture-dependent: the six cache miss events (measured with
  a live :class:`~repro.cache.hierarchy.CacheHierarchy`) and the branch
  characteristics (measured with the immediate- or delayed-update branch
  profilers of :mod:`repro.branch.profiler`), annotated per context.

``branch_mode="delayed"`` uses the paper's FIFO profiling algorithm with
the FIFO sized to the instruction fetch queue (section 2.1.3);
``"immediate"`` is the naive pre-paper mode; ``"perfect"`` marks every
branch correctly predicted (used for the SFG-order study, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.errors import ProfileError
from repro.frontend.trace import Trace
from repro.branch.profiler import (
    profile_branches_delayed,
    profile_branches_immediate,
)
from repro.branch.unit import BranchOutcome, BranchPredictorUnit, BranchRecord
from repro.cache.hierarchy import CacheHierarchy
from repro.core.sfg import (
    MAX_DEPENDENCY_DISTANCE,
    START_BLOCK,
    StatisticalFlowGraph,
)

BRANCH_MODES = ("delayed", "immediate", "perfect")


@dataclass
class StatisticalProfile:
    """A statistical profile: the SFG plus provenance metadata.

    The cache and branch characteristics inside the SFG are specific to
    the profiled :class:`MachineConfig`'s locality structures (and to the
    FIFO size = IFQ size for delayed update), so design-space sweeps over
    caches, predictors or the IFQ re-profile — exactly the trade-off the
    paper discusses versus SimPoint in section 4.4.
    """

    name: str
    order: int
    sfg: StatisticalFlowGraph
    trace_instructions: int
    branch_mode: str
    perfect_caches: bool
    config: MachineConfig

    @property
    def num_nodes(self) -> int:
        return self.sfg.num_nodes


def _branch_records(trace: Trace, config: MachineConfig,
                    branch_mode: str,
                    unit: Optional[BranchPredictorUnit] = None
                    ) -> Dict[int, BranchRecord]:
    """Classify every dynamic branch, keyed by trace sequence number."""
    if branch_mode == "perfect":
        return {
            inst.seq: BranchRecord(inst.seq, inst.taken,
                                   BranchOutcome.CORRECT)
            for inst in trace if inst.is_branch
        }
    if unit is None:
        unit = BranchPredictorUnit(config.predictor)
    if branch_mode == "immediate":
        records = profile_branches_immediate(trace, unit)
    elif branch_mode == "delayed":
        records = profile_branches_delayed(trace, unit,
                                           fifo_size=config.ifq_size)
    else:
        raise ProfileError(
            f"branch_mode must be one of {BRANCH_MODES}, got {branch_mode!r}"
        )
    return {record.seq: record for record in records}


def profile_trace(trace: Trace, config: MachineConfig, order: int = 1,
                  branch_mode: str = "delayed",
                  perfect_caches: bool = False,
                  warmup_trace: Optional[Trace] = None
                  ) -> StatisticalProfile:
    """Build the statistical profile of *trace* (paper section 2.1).

    *warmup_trace* functionally warms the cache hierarchy and branch
    predictor before characteristics are recorded, so the profile
    describes the warm measurement window the paper's samples represent.
    """
    from repro.obs.tracing import trace_span

    with trace_span("profile", bench=trace.name, order=order):
        return _profile_trace(trace, config, order=order,
                              branch_mode=branch_mode,
                              perfect_caches=perfect_caches,
                              warmup_trace=warmup_trace)


def _profile_trace(trace: Trace, config: MachineConfig, order: int = 1,
                   branch_mode: str = "delayed",
                   perfect_caches: bool = False,
                   warmup_trace: Optional[Trace] = None
                   ) -> StatisticalProfile:
    from repro.frontend.warming import warm_locality_structures

    if order < 0:
        raise ProfileError("order must be >= 0")
    if branch_mode not in BRANCH_MODES:
        raise ProfileError(
            f"branch_mode must be one of {BRANCH_MODES}, got {branch_mode!r}"
        )

    sfg = StatisticalFlowGraph(order)
    warm_hierarchy, warm_unit = warm_locality_structures(warmup_trace,
                                                         config)
    branch_records = _branch_records(trace, config, branch_mode,
                                     unit=warm_unit)
    hierarchy: Optional[CacheHierarchy] = (
        None if perfect_caches else warm_hierarchy
    )

    history: List[int] = [START_BLOCK] * order
    last_writer: Dict[int, int] = {}
    last_reader: Dict[int, int] = {}

    # Buffered events for the block currently being executed.
    block_insts: list = []
    block_events: list = []  # per slot: (il1, l2i, itlb, dl1, l2d, dtlb)

    for inst in trace.instructions:
        il1 = l2i = itlb = dl1 = dl2 = dtlb = False
        if hierarchy is not None:
            iresult = hierarchy.access_instruction(inst.pc)
            il1, l2i, itlb = (iresult.il1_miss, iresult.l2_miss,
                              iresult.itlb_miss)
            if inst.mem_addr is not None:
                dresult = hierarchy.access_data(inst.mem_addr,
                                                is_store=inst.is_store)
                if inst.is_load:
                    dl1, dl2, dtlb = (dresult.dl1_miss, dresult.l2_miss,
                                      dresult.dtlb_miss)
        block_insts.append(inst)
        block_events.append((il1, l2i, itlb, dl1, dl2, dtlb))

        if not inst.is_branch:
            continue

        # Block complete: attribute everything to its context.
        block = inst.bb_id
        stats = sfg.context_for(
            history, block,
            iclasses=[i.iclass for i in block_insts],
            n_src=[len(i.src_regs) for i in block_insts],
        )
        stats.occurrences += 1
        sfg.total_block_executions += 1
        sfg.record_transition(history, block)

        for slot, (binst, events) in enumerate(zip(block_insts,
                                                   block_events)):
            e_il1, e_l2i, e_itlb, e_dl1, e_l2d, e_dtlb = events
            stats.il1[slot] += e_il1
            stats.l2i[slot] += e_l2i
            stats.itlb[slot] += e_itlb
            stats.dl1[slot] += e_dl1
            stats.l2d[slot] += e_l2d
            stats.dtlb[slot] += e_dtlb
            for operand, reg in enumerate(binst.src_regs):
                writer = last_writer.get(reg)
                if writer is not None:
                    distance = binst.seq - writer
                    if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                        stats.record_dependency(slot, operand, distance)
                last_reader[reg] = binst.seq
            if binst.dst_reg is not None:
                # WAW/WAR distances (section 2.1.1 extension); recorded
                # alongside RAW, consumed only when synthesis is asked
                # to model machines without full renaming.
                previous_writer = last_writer.get(binst.dst_reg)
                if previous_writer is not None:
                    distance = binst.seq - previous_writer
                    if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                        stats.record_anti_dependency(slot, "waw", distance)
                previous_reader = last_reader.get(binst.dst_reg)
                if previous_reader is not None:
                    distance = binst.seq - previous_reader
                    if 0 < distance <= MAX_DEPENDENCY_DISTANCE:
                        stats.record_anti_dependency(slot, "war", distance)
                last_writer[binst.dst_reg] = binst.seq

        record = branch_records.get(inst.seq)
        if record is not None:
            stats.taken += record.taken
            stats.outcome_counts[record.outcome] += 1

        if order > 0:
            history.append(block)
            del history[0]
        block_insts = []
        block_events = []

    # A trailing partial block (trace ended mid-block) is discarded.
    return StatisticalProfile(
        name=trace.name,
        order=order,
        sfg=sfg,
        trace_instructions=len(trace),
        branch_mode=branch_mode,
        perfect_caches=perfect_caches,
        config=config,
    )
