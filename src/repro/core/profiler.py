"""Statistical profiling (paper Figure 1, step 1).

One pass over a dynamic trace builds the :class:`StatisticalProfile`:

* microarchitecture-independent: the order-k SFG with instruction types,
  operand counts and per-operand dependency-distance distributions;
* microarchitecture-dependent: the six cache miss events (measured with
  a live :class:`~repro.cache.hierarchy.CacheHierarchy`) and the branch
  characteristics (measured with the immediate- or delayed-update branch
  profilers of :mod:`repro.branch.profiler`), annotated per context.

``branch_mode="delayed"`` uses the paper's FIFO profiling algorithm with
the FIFO sized to the instruction fetch queue (section 2.1.3);
``"immediate"`` is the naive pre-paper mode; ``"perfect"`` marks every
branch correctly predicted (used for the SFG-order study, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.errors import ProfileError
from repro.frontend.trace import Trace
from repro.branch.profiler import (
    profile_branches_delayed,
    profile_branches_immediate,
)
from repro.branch.unit import BranchOutcome, BranchPredictorUnit, BranchRecord
from repro.cache.hierarchy import CacheHierarchy
from repro.core.sfg import (
    MAX_DEPENDENCY_DISTANCE,
    START_BLOCK,
    StatisticalFlowGraph,
)

BRANCH_MODES = ("delayed", "immediate", "perfect")


@dataclass
class StatisticalProfile:
    """A statistical profile: the SFG plus provenance metadata.

    The cache and branch characteristics inside the SFG are specific to
    the profiled :class:`MachineConfig`'s locality structures (and to the
    FIFO size = IFQ size for delayed update), so design-space sweeps over
    caches, predictors or the IFQ re-profile — exactly the trade-off the
    paper discusses versus SimPoint in section 4.4.
    """

    name: str
    order: int
    sfg: StatisticalFlowGraph
    trace_instructions: int
    branch_mode: str
    perfect_caches: bool
    config: MachineConfig

    @property
    def num_nodes(self) -> int:
        return self.sfg.num_nodes


def _branch_records(trace: Trace, config: MachineConfig,
                    branch_mode: str,
                    unit: Optional[BranchPredictorUnit] = None
                    ) -> Dict[int, BranchRecord]:
    """Classify every dynamic branch, keyed by trace sequence number."""
    if branch_mode == "perfect":
        return {
            inst.seq: BranchRecord(inst.seq, inst.taken,
                                   BranchOutcome.CORRECT)
            for inst in trace if inst.is_branch
        }
    if unit is None:
        unit = BranchPredictorUnit(config.predictor)
    if branch_mode == "immediate":
        records = profile_branches_immediate(trace, unit)
    elif branch_mode == "delayed":
        records = profile_branches_delayed(trace, unit,
                                           fifo_size=config.ifq_size)
    else:
        raise ProfileError(
            f"branch_mode must be one of {BRANCH_MODES}, got {branch_mode!r}"
        )
    return {record.seq: record for record in records}


def profile_trace(trace: Trace, config: MachineConfig, order: int = 1,
                  branch_mode: str = "delayed",
                  perfect_caches: bool = False,
                  warmup_trace: Optional[Trace] = None
                  ) -> StatisticalProfile:
    """Build the statistical profile of *trace* (paper section 2.1).

    *warmup_trace* functionally warms the cache hierarchy and branch
    predictor before characteristics are recorded, so the profile
    describes the warm measurement window the paper's samples represent.
    """
    from repro.obs.tracing import trace_span

    with trace_span("profile", bench=trace.name, order=order):
        return _profile_trace(trace, config, order=order,
                              branch_mode=branch_mode,
                              perfect_caches=perfect_caches,
                              warmup_trace=warmup_trace)


def _profile_trace(trace: Trace, config: MachineConfig, order: int = 1,
                   branch_mode: str = "delayed",
                   perfect_caches: bool = False,
                   warmup_trace: Optional[Trace] = None
                   ) -> StatisticalProfile:
    from repro.frontend.warming import warm_locality_structures

    if order < 0:
        raise ProfileError("order must be >= 0")
    if branch_mode not in BRANCH_MODES:
        raise ProfileError(
            f"branch_mode must be one of {BRANCH_MODES}, got {branch_mode!r}"
        )

    sfg = StatisticalFlowGraph(order)
    warm_hierarchy, warm_unit = warm_locality_structures(warmup_trace,
                                                         config)
    branch_records = _branch_records(trace, config, branch_mode,
                                     unit=warm_unit)
    hierarchy: Optional[CacheHierarchy] = (
        None if perfect_caches else warm_hierarchy
    )

    history: List[int] = [START_BLOCK] * order
    history_key = tuple(history)
    last_writer: Dict[int, int] = {}
    last_reader: Dict[int, int] = {}
    lw_get = last_writer.get
    lr_get = last_reader.get
    records_get = branch_records.get
    sfg_transitions = sfg.transitions
    cap = MAX_DEPENDENCY_DISTANCE

    # Reusable context-key cache: one entry per k-block history holding
    # the transition counts plus, per next block, the ContextStats and
    # its array-backed distance accumulators.  The hot loop then charges
    # a block occurrence with two dict hits instead of rebuilding the
    # context tuple and per-slot iclass/operand lists every time; the
    # growable arrays turn each distance record into one list index
    # instead of a dict get+set, and are folded into the ContextStats
    # histograms once at the end.
    hist_cache: Dict[tuple, tuple] = {}

    # Buffered state for the block currently being executed: its
    # instructions, and the (sparse) slots that saw locality events.
    block_insts: list = []
    block_append = block_insts.append
    block_events: list = []  # (slot, il1, l2i, itlb, dl1, l2d, dtlb)
    events_append = block_events.append

    for inst in trace.instructions:
        if hierarchy is not None:
            iresult = hierarchy.access_instruction(inst.pc)
            il1 = iresult.il1_miss
            l2i = iresult.l2_miss
            itlb = iresult.itlb_miss
            dl1 = dl2 = dtlb = False
            if inst.mem_addr is not None:
                dresult = hierarchy.access_data(inst.mem_addr,
                                                is_store=inst.is_store)
                if inst.is_load:
                    dl1 = dresult.dl1_miss
                    dl2 = dresult.l2_miss
                    dtlb = dresult.dtlb_miss
            if il1 or l2i or itlb or dl1 or dl2 or dtlb:
                events_append((len(block_insts), il1, l2i, itlb,
                               dl1, dl2, dtlb))
        block_append(inst)

        if not inst.is_branch:
            continue

        # Block complete: attribute everything to its context.
        block = inst.bb_id
        entry = hist_cache.get(history_key)
        if entry is None:
            counts = sfg_transitions.get(history_key)
            if counts is None:
                counts = {}
                sfg_transitions[history_key] = counts
            entry = ({}, counts)
            hist_cache[history_key] = entry
        blocks, counts = entry
        cached = blocks.get(block)
        if cached is None:
            stats = sfg.context_for(
                history_key, block,
                iclasses=[i.iclass for i in block_insts],
                n_src=[len(i.src_regs) for i in block_insts],
            )
            cached = (
                stats,
                [[[] for _ in range(n)] for n in stats.n_src],
                [[] for _ in stats.n_src],  # WAW, per producing slot
                [[] for _ in stats.n_src],  # WAR
            )
            blocks[block] = cached
        elif cached[0].block_size != len(block_insts):
            raise ValueError(
                f"context {history_key + (block,)} re-observed with a "
                f"different block size"
            )
        stats, raw_arrays, waw_arrays, war_arrays = cached
        stats.occurrences += 1
        sfg.total_block_executions += 1
        counts[block] = counts.get(block, 0) + 1

        if block_events:
            for slot, e_il1, e_l2i, e_itlb, e_dl1, e_l2d, e_dtlb \
                    in block_events:
                stats.il1[slot] += e_il1
                stats.l2i[slot] += e_l2i
                stats.itlb[slot] += e_itlb
                stats.dl1[slot] += e_dl1
                stats.l2d[slot] += e_l2d
                stats.dtlb[slot] += e_dtlb
            block_events.clear()

        for slot, binst in enumerate(block_insts):
            seq = binst.seq
            src_regs = binst.src_regs
            if src_regs:
                operand_arrays = raw_arrays[slot]
                for operand, reg in enumerate(src_regs):
                    writer = lw_get(reg)
                    if writer is not None:
                        distance = seq - writer
                        if 0 < distance <= cap:
                            arr = operand_arrays[operand]
                            if distance >= len(arr):
                                arr.extend(
                                    [0] * (distance + 1 - len(arr)))
                            arr[distance] += 1
                    last_reader[reg] = seq
            dst = binst.dst_reg
            if dst is not None:
                # WAW/WAR distances (section 2.1.1 extension); recorded
                # alongside RAW, consumed only when synthesis is asked
                # to model machines without full renaming.
                previous_writer = lw_get(dst)
                if previous_writer is not None:
                    distance = seq - previous_writer
                    if 0 < distance <= cap:
                        arr = waw_arrays[slot]
                        if distance >= len(arr):
                            arr.extend([0] * (distance + 1 - len(arr)))
                        arr[distance] += 1
                previous_reader = lr_get(dst)
                if previous_reader is not None:
                    distance = seq - previous_reader
                    if 0 < distance <= cap:
                        arr = war_arrays[slot]
                        if distance >= len(arr):
                            arr.extend([0] * (distance + 1 - len(arr)))
                        arr[distance] += 1
                last_writer[dst] = seq

        record = records_get(inst.seq)
        if record is not None:
            stats.taken += record.taken
            stats.outcome_counts[record.outcome] += 1

        if order > 0:
            history.append(block)
            del history[0]
            history_key = tuple(history)
        block_insts.clear()

    # Fold the array accumulators into the per-context histograms.
    for blocks, _counts in hist_cache.values():
        for stats, raw_arrays, waw_arrays, war_arrays in blocks.values():
            dep_hists = stats.dep_hists
            for slot, operand_arrays in enumerate(raw_arrays):
                for operand, arr in enumerate(operand_arrays):
                    if arr:
                        hist = dep_hists[slot][operand]
                        for distance, count in enumerate(arr):
                            if count:
                                hist[distance] = count
            for arrays, hists in ((waw_arrays, stats.waw_hists),
                                  (war_arrays, stats.war_hists)):
                for slot, arr in enumerate(arrays):
                    if arr:
                        hist = hists[slot]
                        for distance, count in enumerate(arr):
                            if count:
                                hist[distance] = count

    # A trailing partial block (trace ended mid-block) is discarded.
    return StatisticalProfile(
        name=trace.name,
        order=order,
        sfg=sfg,
        trace_instructions=len(trace),
        branch_mode=branch_mode,
        perfect_caches=perfect_caches,
        config=config,
    )
