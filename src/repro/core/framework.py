"""End-to-end statistical simulation API (paper Figure 1).

``run_statistical_simulation`` chains profiling, reduction, synthesis and
synthetic-trace simulation; ``run_execution_driven`` runs the reference
simulator on the same trace.  Both return power along with performance,
so callers compute the paper's metrics (IPC, EPC, EDP) directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import MachineConfig
from repro.errors import ProfileError, SynthesisError
from repro.obs.tracing import trace_span
from repro.frontend.trace import Trace
from repro.cpu.pipeline import simulate
from repro.cpu.results import SimulationResult
from repro.cpu.source import ExecutionDrivenSource, PreannotatedSource
from repro.power.wattch import (
    PowerBreakdown,
    WattchPowerModel,
    energy_delay_product,
)
from repro.core.profiler import StatisticalProfile, profile_trace
from repro.core.synthesis import generate_synthetic_trace
from repro.core.synthetic import SyntheticTrace

#: The paper's typical synthetic trace reduction factors range from
#: 1,000 to 100,000; scaled to our shorter reference streams we default
#: to a modest factor.
DEFAULT_REDUCTION_FACTOR = 10.0


@dataclass
class StatisticalSimulationReport:
    """Everything produced by one statistical simulation run."""

    profile: StatisticalProfile
    synthetic_trace: SyntheticTrace
    result: SimulationResult
    power: PowerBreakdown

    @property
    def ipc(self) -> float:
        return self.result.ipc

    @property
    def epc(self) -> float:
        return self.power.total

    @property
    def edp(self) -> float:
        return energy_delay_product(self.epc, self.ipc)


def run_execution_driven(
    trace: Trace,
    config: MachineConfig,
    perfect_caches: bool = False,
    perfect_branch_prediction: bool = False,
    warmup_trace: Optional[Trace] = None,
) -> Tuple[SimulationResult, PowerBreakdown]:
    """Reference simulation: the shared pipeline with live locality
    structures resolving the real dynamic trace.  *warmup_trace*, if
    given, functionally warms caches and predictor first (the paper
    measures warm samples out of long executions)."""
    from repro.frontend.warming import warm_locality_structures

    with trace_span("simulate", bench=trace.name, mode="execution"):
        hierarchy, predictor = warm_locality_structures(warmup_trace,
                                                        config)
        source = ExecutionDrivenSource(
            trace, config,
            perfect_caches=perfect_caches,
            perfect_branch_prediction=perfect_branch_prediction,
            hierarchy=hierarchy,
            predictor=predictor,
        )
        result = simulate(config, source)
        power = WattchPowerModel(config).energy_per_cycle(result)
    return result, power


def simulate_synthetic_trace(
    synthetic: SyntheticTrace, config: MachineConfig
) -> Tuple[SimulationResult, PowerBreakdown]:
    """Synthetic-trace simulation (paper section 2.3): the shared
    pipeline consuming pre-annotated slots, no caches, no predictors."""
    with trace_span("simulate", bench=synthetic.name, mode="synthetic"):
        source = PreannotatedSource(synthetic.to_fetch_slots(config))
        result = simulate(config, source)
        power = WattchPowerModel(config).energy_per_cycle(result)
    return result, power


def simulate_columnar_trace(
    columnar, config: MachineConfig
) -> Tuple[SimulationResult, PowerBreakdown]:
    """Synthetic-trace simulation from a columnar trace: the pipeline's
    vectorized fast path consuming the trace's numpy columns directly
    (no per-instruction FetchSlot objects)."""
    from repro.cpu.source import ColumnarSource

    with trace_span("simulate", bench=columnar.name, mode="synthetic"):
        result = simulate(config, ColumnarSource(columnar, config))
        power = WattchPowerModel(config).energy_per_cycle(result)
    return result, power


def run_statistical_simulation(
    trace: Trace,
    config: MachineConfig,
    order: int = 1,
    reduction_factor: float = DEFAULT_REDUCTION_FACTOR,
    seed: int = 0,
    branch_mode: str = "delayed",
    perfect_caches: bool = False,
    profile: Optional[StatisticalProfile] = None,
    warmup_trace: Optional[Trace] = None,
    include_anti_dependencies: bool = False,
    vector: bool = False,
) -> StatisticalSimulationReport:
    """Full statistical simulation of *trace* on *config*.

    Pass a pre-computed *profile* to amortize profiling across several
    synthesis seeds or microarchitecture-independent sweeps (window,
    width and functional units do not change the profile; caches,
    predictor and IFQ size do — re-profile for those, as the paper notes
    in section 4.4).

    *vector* routes synthesis and simulation through the columnar batch
    kernels (:mod:`repro.core.columnar`): same distributions and same
    pipeline semantics, different (statistically equivalent) draw
    sequence — see docs/performance.md.  The report's
    ``synthetic_trace`` is materialized from the columns either way.
    """
    if reduction_factor <= 0:
        raise SynthesisError(
            f"reduction_factor must be positive, got "
            f"{reduction_factor!r}")
    if order < 0:
        raise ProfileError(f"order must be >= 0, got {order!r}")
    if profile is None:
        profile = profile_trace(trace, config, order=order,
                                branch_mode=branch_mode,
                                perfect_caches=perfect_caches,
                                warmup_trace=warmup_trace)
    if vector:
        from repro.core.columnar import generate_columnar_trace

        columnar = generate_columnar_trace(
            profile, reduction_factor, seed=seed,
            include_anti_dependencies=include_anti_dependencies)
        result, power = simulate_columnar_trace(columnar, config)
        synthetic = columnar.to_synthetic_trace()
    else:
        synthetic = generate_synthetic_trace(
            profile, reduction_factor, seed=seed,
            include_anti_dependencies=include_anti_dependencies)
        result, power = simulate_synthetic_trace(synthetic, config)
    return StatisticalSimulationReport(
        profile=profile,
        synthetic_trace=synthetic,
        result=result,
        power=power,
    )
