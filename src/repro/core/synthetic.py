"""Synthetic trace records (paper Figure 1, step 2 output).

A synthetic instruction carries exactly what the paper's synthetic trace
simulator consumes: an instruction type, dependency distances for its
operands, pre-assigned cache hit/miss flags and — for branches — the
taken flag and predictor outcome.  It has no PC, no registers and no
addresses: all locality behaviour was decided statistically at
generation time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.isa.iclass import (
    BRANCH_CLASSES,
    IClass,
    execution_latency,
)
from repro.branch.unit import BranchOutcome
from repro.cpu.source import FetchSlot


class SyntheticInstruction:
    """One statistically generated instruction."""

    __slots__ = ("iclass", "dep_distances", "il1_miss", "l2i_miss",
                 "itlb_miss", "dl1_miss", "l2d_miss", "dtlb_miss",
                 "taken", "outcome")

    def __init__(self, iclass: IClass,
                 dep_distances: Tuple[int, ...] = (),
                 il1_miss: bool = False, l2i_miss: bool = False,
                 itlb_miss: bool = False, dl1_miss: bool = False,
                 l2d_miss: bool = False, dtlb_miss: bool = False,
                 taken: bool = False,
                 outcome: Optional[BranchOutcome] = None) -> None:
        self.iclass = iclass
        self.dep_distances = dep_distances
        self.il1_miss = il1_miss
        self.l2i_miss = l2i_miss
        self.itlb_miss = itlb_miss
        self.dl1_miss = dl1_miss
        self.l2d_miss = l2d_miss
        self.dtlb_miss = dtlb_miss
        self.taken = taken
        self.outcome = outcome

    @property
    def is_branch(self) -> bool:
        return self.iclass in BRANCH_CLASSES

    @property
    def is_load(self) -> bool:
        return self.iclass is IClass.LOAD

    @property
    def produces_register(self) -> bool:
        return (self.iclass is not IClass.STORE
                and self.iclass not in BRANCH_CLASSES)


class SyntheticTrace:
    """A generated instruction stream plus its provenance."""

    def __init__(self, name: str,
                 instructions: List[SyntheticInstruction],
                 order: int, reduction_factor: float,
                 seed: Optional[int] = None) -> None:
        self.name = name
        self.instructions = instructions
        self.order = order
        self.reduction_factor = reduction_factor
        self.seed = seed

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    def to_fetch_slots(self, config: MachineConfig) -> List[FetchSlot]:
        """Convert annotations into pipeline fetch slots (paper §2.3):
        a load's latency comes from the deepest level it misses in, and
        instruction-side misses become fetch stalls."""
        slots: List[FetchSlot] = []
        memory_latency = config.memory_latency
        l2_latency = config.l2.hit_latency
        dl1_latency = config.dl1.hit_latency
        itlb_penalty = config.itlb.miss_latency
        dtlb_penalty = config.dtlb.miss_latency
        for inst in self.instructions:
            stall = 0
            if inst.l2i_miss:
                stall = memory_latency
            elif inst.il1_miss:
                stall = l2_latency
            if inst.itlb_miss:
                stall += itlb_penalty
            if inst.is_load:
                if inst.l2d_miss:
                    latency = memory_latency
                elif inst.dl1_miss:
                    latency = l2_latency
                else:
                    latency = dl1_latency
                if inst.dtlb_miss:
                    latency += dtlb_penalty
            else:
                latency = execution_latency(inst.iclass)
            slots.append(FetchSlot(
                iclass=inst.iclass,
                exec_latency=latency,
                fetch_stall=stall,
                dep_distances=inst.dep_distances,
                taken=inst.taken,
                outcome=inst.outcome,
                il1_miss=inst.il1_miss,
                l2i_miss=inst.l2i_miss,
                dl1_miss=inst.dl1_miss,
                l2d_miss=inst.l2d_miss,
                itlb_miss=inst.itlb_miss,
                dtlb_miss=inst.dtlb_miss,
            ))
        return slots

    def summary(self) -> dict:
        """Aggregate annotation rates (testing/reporting aid)."""
        n = max(1, len(self.instructions))
        loads = [i for i in self.instructions if i.is_load]
        branches = [i for i in self.instructions if i.is_branch]
        return {
            "instructions": len(self.instructions),
            "load_fraction": len(loads) / n,
            "branch_fraction": len(branches) / n,
            "il1_miss_rate": sum(i.il1_miss for i in self.instructions) / n,
            "dl1_miss_rate": (sum(i.dl1_miss for i in loads) / len(loads)
                              if loads else 0.0),
            "misprediction_rate": (
                sum(i.outcome is BranchOutcome.MISPREDICTION
                    for i in branches) / len(branches) if branches else 0.0),
        }


def dependency_targets(instructions: Sequence[SyntheticInstruction],
                       index: int) -> List[int]:
    """Indices this instruction depends on (testing aid)."""
    return [index - d for d in instructions[index].dep_distances
            if 0 <= index - d]
