"""Saving and loading statistical profiles.

A statistical profile is the methodology's reusable artifact: measure
once, then explore many design points (the paper's Figure 1 separates
profiling from synthesis for exactly this reason).  This module
round-trips :class:`~repro.core.profiler.StatisticalProfile` objects
through plain JSON so profiles can be archived, shared and re-used
across sessions.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    TLBConfig,
)
from repro.errors import ArtifactCorruptError, ProfileValidationError
from repro.faults import maybe_io_error
from repro.isa.iclass import IClass
from repro.core.profiler import BRANCH_MODES, StatisticalProfile
from repro.core.sfg import ContextStats, StatisticalFlowGraph

FORMAT_VERSION = 1

#: Keys every serialized profile must carry (beyond the optional
#: integrity checksum added at save time).
REQUIRED_KEYS = (
    "format", "name", "order", "branch_mode", "perfect_caches",
    "trace_instructions", "config", "total_block_executions",
    "transitions", "contexts",
)


def config_to_dict(config: MachineConfig) -> Dict:
    """Serialize a machine configuration to a JSON-compatible dict.

    The canonical encoding of this dict is also what the design-space
    subsystem (:mod:`repro.dse`) hashes to content-address results, so
    the field set must round-trip exactly through
    :func:`config_from_dict`.
    """
    return asdict(config)


def config_from_dict(data: Dict) -> MachineConfig:
    """Inverse of :func:`config_to_dict`."""
    data = dict(data)
    for key, cls in (("il1", CacheConfig), ("dl1", CacheConfig),
                     ("l2", CacheConfig), ("itlb", TLBConfig),
                     ("dtlb", TLBConfig),
                     ("predictor", BranchPredictorConfig)):
        data[key] = cls(**data[key])
    return MachineConfig(**data)


# Former private names, kept as aliases for existing internal callers.
_config_to_dict = config_to_dict
_config_from_dict = config_from_dict


def _histogram_to_list(histogram: Dict[int, int]) -> List[List[int]]:
    return [[key, count] for key, count in sorted(histogram.items())]


def _histogram_from_list(pairs: List[List[int]]) -> Dict[int, int]:
    return {int(key): int(count) for key, count in pairs}


def _context_to_dict(stats: ContextStats) -> Dict:
    return {
        "occurrences": stats.occurrences,
        "iclasses": [int(iclass) for iclass in stats.iclasses],
        "n_src": stats.n_src,
        "dep_hists": [[_histogram_to_list(hist) for hist in operands]
                      for operands in stats.dep_hists],
        "waw_hists": [_histogram_to_list(h) for h in stats.waw_hists],
        "war_hists": [_histogram_to_list(h) for h in stats.war_hists],
        "il1": stats.il1, "l2i": stats.l2i, "itlb": stats.itlb,
        "dl1": stats.dl1, "l2d": stats.l2d, "dtlb": stats.dtlb,
        "taken": stats.taken,
        "outcome_counts": stats.outcome_counts,
    }


def _context_from_dict(data: Dict) -> ContextStats:
    stats = ContextStats([IClass(i) for i in data["iclasses"]],
                         data["n_src"])
    stats.occurrences = data["occurrences"]
    stats.dep_hists = [[_histogram_from_list(hist) for hist in operands]
                       for operands in data["dep_hists"]]
    stats.waw_hists = [_histogram_from_list(h) for h in data["waw_hists"]]
    stats.war_hists = [_histogram_from_list(h) for h in data["war_hists"]]
    stats.il1 = list(data["il1"])
    stats.l2i = list(data["l2i"])
    stats.itlb = list(data["itlb"])
    stats.dl1 = list(data["dl1"])
    stats.l2d = list(data["l2d"])
    stats.dtlb = list(data["dtlb"])
    stats.taken = data["taken"]
    stats.outcome_counts = list(data["outcome_counts"])
    return stats


def profile_to_dict(profile: StatisticalProfile) -> Dict:
    """Serialize *profile* to a JSON-compatible dictionary."""
    sfg = profile.sfg
    return {
        "format": FORMAT_VERSION,
        "name": profile.name,
        "order": profile.order,
        "branch_mode": profile.branch_mode,
        "perfect_caches": profile.perfect_caches,
        "trace_instructions": profile.trace_instructions,
        "config": _config_to_dict(profile.config),
        "total_block_executions": sfg.total_block_executions,
        "transitions": [
            [list(history), {str(block): count
                             for block, count in counts.items()}]
            for history, counts in sfg.transitions.items()
        ],
        "contexts": [
            [list(context), _context_to_dict(stats)]
            for context, stats in sfg.contexts.items()
        ],
    }


def _validate_profile_dict(data: Dict) -> None:
    """Structural validation of an untrusted profile dictionary.

    Raises :class:`ArtifactCorruptError` (a :class:`ValueError`
    subclass) with a message naming exactly what is wrong, instead of
    letting a bad artifact surface as a ``KeyError`` deep inside graph
    reconstruction.
    """
    if not isinstance(data, dict):
        raise ArtifactCorruptError(
            f"profile must be a JSON object, got {type(data).__name__}")
    missing = [key for key in REQUIRED_KEYS if key not in data]
    if missing:
        raise ArtifactCorruptError(
            f"profile is missing required keys: {', '.join(missing)}")
    if data["format"] != FORMAT_VERSION:
        raise ArtifactCorruptError(
            f"unsupported profile format {data['format']!r}; "
            f"expected {FORMAT_VERSION}"
        )
    order = data["order"]
    if not isinstance(order, int) or isinstance(order, bool) or order < 0:
        raise ArtifactCorruptError(
            f"profile order must be a non-negative integer, "
            f"got {order!r}")
    if data["branch_mode"] not in BRANCH_MODES:
        raise ArtifactCorruptError(
            f"profile branch_mode must be one of {BRANCH_MODES}, "
            f"got {data['branch_mode']!r}")
    for history, _counts in data["transitions"]:
        if len(history) != order:
            raise ArtifactCorruptError(
                f"transition history {history!r} has length "
                f"{len(history)}; an order-{order} profile requires "
                f"{order}")
    for context, _stats in data["contexts"]:
        if len(context) != order + 1:
            raise ArtifactCorruptError(
                f"context {context!r} has length {len(context)}; an "
                f"order-{order} profile requires {order + 1}")


def _payload_checksum(data: Dict) -> str:
    from repro.runner.checkpoint import payload_checksum

    return payload_checksum(data)


def profile_from_dict(data: Dict) -> StatisticalProfile:
    """Reconstruct a profile from :func:`profile_to_dict` output.

    The input is untrusted (it usually comes off disk): structure,
    order, branch mode and — when present — the embedded ``checksum``
    are all verified, and any inconsistency raises
    :class:`ArtifactCorruptError`.
    """
    if isinstance(data, dict) and "checksum" in data:
        data = dict(data)
        stored = data.pop("checksum")
        actual = _payload_checksum(data)
        if stored != actual:
            raise ArtifactCorruptError(
                f"profile failed its integrity check (stored "
                f"{str(stored)[:12]}..., computed {actual[:12]}...)")
    _validate_profile_dict(data)
    try:
        sfg = StatisticalFlowGraph(order=data["order"])
        sfg.total_block_executions = data["total_block_executions"]
        for history, counts in data["transitions"]:
            sfg.transitions[tuple(history)] = {
                int(block): count for block, count in counts.items()
            }
        for context, stats in data["contexts"]:
            sfg.contexts[tuple(context)] = _context_from_dict(stats)
        return StatisticalProfile(
            name=data["name"],
            order=data["order"],
            sfg=sfg,
            trace_instructions=data["trace_instructions"],
            branch_mode=data["branch_mode"],
            perfect_caches=data["perfect_caches"],
            config=_config_from_dict(data["config"]),
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise ArtifactCorruptError(
            f"profile payload is malformed: {exc!r}") from exc


def validate_profile_invariants(profile: StatisticalProfile) -> None:
    """Check the statistical invariants of a (typically just-loaded)
    profile, raising :class:`ProfileValidationError` naming the first
    violation.

    A structurally valid JSON document can still describe an
    impossible profile — negative histogram mass, transition counts
    whose per-history probabilities cannot sum to 1, more cache misses
    than block visits.  Synthesis would only trip over these deep
    inside sampler-table construction (or worse, silently draw from a
    nonsense distribution), so the artifact boundary rejects them with
    a message naming the offending context instead.
    """
    sfg = profile.sfg

    def bad(message: str) -> ProfileValidationError:
        return ProfileValidationError(
            f"profile {profile.name!r}: {message}")

    total = 0
    for context, stats in sfg.contexts.items():
        where = f"context {context}"
        if stats.occurrences < 0:
            raise bad(f"{where} has negative occurrences "
                      f"({stats.occurrences})")
        total += stats.occurrences
        for slot in range(stats.block_size):
            for name, counter in (("il1", stats.il1), ("l2i", stats.l2i),
                                  ("itlb", stats.itlb),
                                  ("dl1", stats.dl1), ("l2d", stats.l2d),
                                  ("dtlb", stats.dtlb)):
                if not 0 <= counter[slot] <= stats.occurrences:
                    raise bad(
                        f"{where} slot {slot}: {name} miss count "
                        f"{counter[slot]} outside [0, occurrences="
                        f"{stats.occurrences}]")
            named_hists = [
                (f"dep_hists[operand={operand}]", hist)
                for operand, hist in enumerate(stats.dep_hists[slot])
            ]
            named_hists.append(("waw_hists", stats.waw_hists[slot]))
            named_hists.append(("war_hists", stats.war_hists[slot]))
            for statistic, hist in named_hists:
                for distance, count in hist.items():
                    if distance < 0:
                        raise bad(
                            f"{where} slot {slot}: statistic "
                            f"{statistic} histogram entry has negative "
                            f"distance {distance} (count {count})")
                    if count < 0:
                        raise bad(
                            f"{where} slot {slot}: statistic "
                            f"{statistic} histogram entry for distance "
                            f"{distance} has negative count {count}")
        if not 0 <= stats.taken <= stats.occurrences:
            raise bad(f"{where}: taken count {stats.taken} outside "
                      f"[0, occurrences={stats.occurrences}]")
        if any(count < 0 for count in stats.outcome_counts):
            raise bad(f"{where}: negative branch outcome count "
                      f"{stats.outcome_counts}")
        if sum(stats.outcome_counts) > stats.occurrences:
            raise bad(f"{where}: branch outcome counts "
                      f"{stats.outcome_counts} sum past occurrences "
                      f"{stats.occurrences}")
    if total != sfg.total_block_executions:
        raise bad(f"context occurrences sum to {total}, not the "
                  f"recorded total_block_executions "
                  f"{sfg.total_block_executions}")
    for history, counts in sfg.transitions.items():
        edge_total = 0
        for block, count in counts.items():
            if count < 0:
                raise bad(f"transition {history} -> {block} has a "
                          f"negative count ({count})")
            edge_total += count
        if counts and edge_total <= 0:
            # All-zero counts: P[block | history] cannot sum to 1.
            raise bad(f"history {history}: transition counts sum to "
                      f"{edge_total}; edge probabilities cannot "
                      f"normalize")


def save_profile(profile: StatisticalProfile,
                 path: Union[str, Path]) -> None:
    """Write *profile* to *path* as JSON, atomically.

    The document is first written to ``<path>.tmp`` and moved into
    place with ``os.replace``, and it embeds a SHA-256 ``checksum``
    over the payload — an interrupted save can never leave a partial
    profile where a complete one is expected, and any later truncation
    or corruption is detected at load time.
    """
    path = Path(path)
    # io-error chaos site: a failed save raises a retryable
    # InjectedIOError before any bytes land, like a full disk would.
    maybe_io_error("save_profile", str(path))
    data = profile_to_dict(profile)
    data["checksum"] = _payload_checksum(data)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data))
    os.replace(tmp, path)


def load_profile(path: Union[str, Path]) -> StatisticalProfile:
    """Load a profile previously written by :func:`save_profile`.

    Raises :class:`ArtifactCorruptError` when the file is unreadable,
    truncated (invalid JSON), fails its checksum, or is structurally
    invalid — never a bare ``JSONDecodeError`` — and its
    :class:`ProfileValidationError` subclass when the decoded profile
    violates a statistical invariant
    (:func:`validate_profile_invariants`).
    """
    path = Path(path)
    try:
        # io-error chaos site: injected inside the try so it flows
        # through exactly the path a real read failure takes.
        maybe_io_error("load_profile", str(path))
        text = path.read_text()
    except OSError as exc:
        raise ArtifactCorruptError(
            f"cannot read profile {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactCorruptError(
            f"profile {path} is not valid JSON (truncated write?): "
            f"{exc}") from exc
    profile = profile_from_dict(data)
    validate_profile_invariants(profile)
    return profile
