"""Columnar batch synthesis: the nine-step algorithm, vectorized.

The scalar generator (:mod:`repro.core.synthesis`) emits one
``SyntheticInstruction`` object per instruction and consumes one uniform
per decision.  That object model caps throughput at Python interpreter
speed, so this module provides the batch twin: the random walk over the
reduced SFG stays scalar (it is inherently sequential and cheap — one
node per *basic block*), but everything per *instruction* is emitted in
whole-trace numpy columns:

* per-context slot statistics are compiled once per SFG into flat
  per-slot arrays (:class:`ColumnarTables`) — event probabilities,
  branch-outcome thresholds, produces-register flags, and every
  operand's dependency-distance distribution as a CSR table whose
  cumulative weights live in one global array offset by table id, so a
  single ``np.searchsorted`` samples thousands of per-slot
  distributions at once;
* the walk fixes the context sequence first, which fixes the whole
  trace's produces-register column up front — the paper's step 4
  rejection (redraw a distance whose producer is a branch or store)
  then runs as a shrinking-mask redraw loop over arrays instead of a
  per-operand retry loop;
* locality events, taken flags and branch outcomes are drawn as whole
  columns with one RNG call each.

The price is draw-sequence divergence: the columnar generator consumes
uniforms from ``numpy.random.Generator(PCG64(seed))`` in column order,
not from ``random.Random(seed)`` in instruction order, so the same seed
produces a *different* (but identically distributed) trace than the
scalar path.  The scalar generator remains the accuracy oracle; the
statistical-equivalence suite (``repro.fuzz.acceptance`` tolerances)
pins the columnar draws to the scalar distributions, and
``tests/test_columnar.py`` pins end-to-end IPC agreement.

Tables are plain numpy arrays, so they also serialize into a single
shared-memory segment (:mod:`repro.core.shm_tables`) that DSE workers
attach instead of rebuilding per process.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.errors import SynthesisError
from repro.health.budget import checkpoint as _health_checkpoint
from repro.obs.metrics import get_registry
from repro.obs.tracing import trace_span
from repro.isa.iclass import (
    BRANCH_CLASSES,
    IClass,
    PRODUCING_CLASSES,
)
from repro.branch.unit import BranchOutcome
from repro.core.profiler import StatisticalProfile
from repro.core.reduction import ReducedFlowGraph, reduce_flow_graph
from repro.core.sampling import FenwickSampler
from repro.core.sfg import Context, StatisticalFlowGraph
from repro.core.synthesis import MAX_DEPENDENCY_RETRIES
from repro.core.synthesis import _HEALTH_EVERY
from repro.core.synthetic import SyntheticInstruction, SyntheticTrace

_OUTCOMES = (BranchOutcome(0), BranchOutcome(1), BranchOutcome(2))


class ColumnarTables:
    """Per-SFG compiled sampling tables in flat numpy form.

    One row per (context, slot) pair, contexts in ``sfg.contexts``
    iteration order; ``block_off``/``block_len`` map a context id to
    its row range.  Operand tables (RAW operands first, then any
    WAW/WAR tables when built with anti-dependencies) hang off the rows
    through the ``op_off`` CSR; each table's distance values and
    cumulative probabilities live in the ``dist_*`` arrays, with the
    cumulative of table ``t`` shifted into ``(t, t+1]`` so sampling is
    one global ``searchsorted`` regardless of which table each draw
    belongs to.
    """

    __slots__ = (
        "order", "include_anti", "contexts", "ctx_index",
        "block_off", "block_len",
        "iclass", "produces", "is_load", "is_branch",
        "p_il1", "p_l2i", "p_itlb", "p_dl1", "p_l2d", "p_dtlb",
        "p_taken", "oc0", "oc1", "ototal",
        "op_off", "row_ops", "p_dep", "rejectable",
        "dist_off", "dist_val", "dist_cum",
        "edges",
    )

    def arrays(self) -> Dict[str, np.ndarray]:
        """The numpy payload (everything shareable byte-for-byte)."""
        return {name: getattr(self, name) for name in (
            "block_off", "block_len", "iclass", "produces", "is_load",
            "is_branch", "p_il1", "p_l2i", "p_itlb", "p_dl1", "p_l2d",
            "p_dtlb", "p_taken", "oc0", "oc1", "ototal", "op_off",
            "row_ops", "p_dep", "rejectable", "dist_off", "dist_val",
            "dist_cum")}


def _append_table(hist: Dict[int, int], occurrences: int,
                  rejectable: bool, p_dep: List[float],
                  reject_flags: List[bool], dist_off: List[int],
                  dist_val: List[int], dist_cum: List[float]) -> None:
    """Flatten one distance histogram into the global CSR arrays."""
    distances = sorted(hist)
    weights = [hist[d] for d in distances]
    total = sum(weights)
    table_id = len(p_dep)
    p_dep.append(total / occurrences if occurrences else 0.0)
    reject_flags.append(rejectable)
    running = 0
    for distance, weight in zip(distances, weights):
        running += weight
        dist_val.append(distance)
        dist_cum.append(table_id + running / total)
    # The final cumulative must be exactly table_id + 1.0 so a draw of
    # u -> 1 can never fall through into the next table's range.
    dist_cum[-1] = table_id + 1.0
    dist_off.append(len(dist_val))


def build_columnar_tables(sfg: StatisticalFlowGraph,
                          include_anti_dependencies: bool = False
                          ) -> ColumnarTables:
    """Compile *sfg*'s context statistics into flat batch tables."""
    tables = ColumnarTables()
    tables.order = sfg.order
    tables.include_anti = include_anti_dependencies
    contexts: List[Context] = list(sfg.contexts)
    tables.contexts = contexts
    ctx_index = {context: cid for cid, context in enumerate(contexts)}
    tables.ctx_index = ctx_index

    block_off = [0]
    iclass_col: List[int] = []
    produces: List[int] = []
    is_load: List[bool] = []
    is_branch: List[bool] = []
    p_il1: List[float] = []
    p_l2i: List[float] = []
    p_itlb: List[float] = []
    p_dl1: List[float] = []
    p_l2d: List[float] = []
    p_dtlb: List[float] = []
    p_taken: List[float] = []
    oc0: List[float] = []
    oc1: List[float] = []
    ototal: List[float] = []
    op_off = [0]
    p_dep: List[float] = []
    reject_flags: List[bool] = []
    dist_off = [0]
    dist_val: List[int] = []
    dist_cum: List[float] = []

    for context in contexts:
        stats = sfg.contexts[context]
        occurrences = stats.occurrences
        counts = stats.outcome_counts
        for slot in range(stats.block_size):
            iclass = stats.iclasses[slot]
            branch = iclass in BRANCH_CLASSES
            iclass_col.append(int(iclass))
            produces.append(int(iclass in PRODUCING_CLASSES))
            is_load.append(iclass is IClass.LOAD)
            is_branch.append(branch)
            il1_count = stats.il1[slot]
            dl1_count = stats.dl1[slot]
            p_il1.append(il1_count / occurrences if occurrences else 0.0)
            p_l2i.append(stats.l2i[slot] / il1_count if il1_count
                         else 0.0)
            p_itlb.append(stats.itlb[slot] / occurrences
                          if occurrences else 0.0)
            p_dl1.append(dl1_count / occurrences if occurrences else 0.0)
            p_l2d.append(stats.l2d[slot] / dl1_count if dl1_count
                         else 0.0)
            p_dtlb.append(stats.dtlb[slot] / occurrences
                          if occurrences else 0.0)
            p_taken.append(stats.taken / occurrences
                           if branch and occurrences else 0.0)
            if branch:
                oc0.append(float(counts[0]))
                oc1.append(float(counts[0] + counts[1]))
                ototal.append(float(counts[0] + counts[1] + counts[2]))
            else:
                oc0.append(0.0)
                oc1.append(0.0)
                ototal.append(0.0)
            # Zero-total operand tables are omitted entirely, exactly
            # like the scalar emitter (they can never produce a dep).
            for op in range(stats.n_src[slot]):
                hist = stats.dep_hists[slot][op]
                if hist and sum(hist.values()):
                    _append_table(hist, occurrences, True, p_dep,
                                  reject_flags, dist_off, dist_val,
                                  dist_cum)
            if include_anti_dependencies:
                for hist in (stats.waw_hists[slot],
                             stats.war_hists[slot]):
                    if hist:
                        _append_table(hist, occurrences, False, p_dep,
                                      reject_flags, dist_off, dist_val,
                                      dist_cum)
            op_off.append(len(p_dep))
        block_off.append(len(iclass_col))

    tables.block_off = np.asarray(block_off, dtype=np.int64)
    tables.block_len = np.diff(tables.block_off)
    tables.iclass = np.asarray(iclass_col, dtype=np.uint8)
    tables.produces = np.asarray(produces, dtype=np.uint8)
    tables.is_load = np.asarray(is_load, dtype=bool)
    tables.is_branch = np.asarray(is_branch, dtype=bool)
    tables.p_il1 = np.asarray(p_il1)
    tables.p_l2i = np.asarray(p_l2i)
    tables.p_itlb = np.asarray(p_itlb)
    tables.p_dl1 = np.asarray(p_dl1)
    tables.p_l2d = np.asarray(p_l2d)
    tables.p_dtlb = np.asarray(p_dtlb)
    tables.p_taken = np.asarray(p_taken)
    tables.oc0 = np.asarray(oc0)
    tables.oc1 = np.asarray(oc1)
    tables.ototal = np.asarray(ototal)
    tables.op_off = np.asarray(op_off, dtype=np.int64)
    tables.row_ops = np.diff(tables.op_off)
    tables.p_dep = np.asarray(p_dep)
    tables.rejectable = np.asarray(reject_flags, dtype=bool)
    tables.dist_off = np.asarray(dist_off, dtype=np.int64)
    tables.dist_val = np.asarray(dist_val, dtype=np.int64)
    tables.dist_cum = np.asarray(dist_cum)

    # Step 9 walk tables: per context, its history's outgoing edges as
    # (weight, target context id); targets outside the graph can never
    # hold budget, so they are dropped here once instead of checked in
    # the walk.
    edges: List[Tuple[Tuple[int, int], ...]] = []
    for context in contexts:
        counts = sfg.transitions.get(context[1:])
        if counts:
            edges.append(tuple(
                (weight, ctx_index[context[1:] + (block,)])
                for block, weight in counts.items()
                if context[1:] + (block,) in ctx_index))
        else:
            edges.append(())
    tables.edges = edges
    return tables


# -- per-SFG table cache ------------------------------------------------
#
# Same lifetime rule as the scalar recipe tables: columnar tables depend
# only on the SFG's statistics, never on R or the seed, so one build (or
# one shared-memory attach) serves every synthesis call for the profile.

_COLUMNAR_CACHE: "WeakKeyDictionary[StatisticalFlowGraph, Dict[bool, ColumnarTables]]" = \
    WeakKeyDictionary()


def columnar_tables_for(sfg: StatisticalFlowGraph,
                        include_anti_dependencies: bool = False
                        ) -> ColumnarTables:
    """The cached (or freshly built) batch tables for *sfg*."""
    per_sfg = _COLUMNAR_CACHE.get(sfg)
    if per_sfg is None:
        per_sfg = {}
        _COLUMNAR_CACHE[sfg] = per_sfg
    tables = per_sfg.get(include_anti_dependencies)
    if tables is None:
        tables = build_columnar_tables(sfg, include_anti_dependencies)
        per_sfg[include_anti_dependencies] = tables
        get_registry().counter("synthesis.columnar_tables_built").inc()
    else:
        get_registry().counter("synthesis.table_reuse").inc()
    return tables


def columnar_tables_cached(sfg: StatisticalFlowGraph,
                           include_anti_dependencies: bool = False
                           ) -> bool:
    """Whether *sfg* already has warm columnar tables (metrics aid)."""
    per_sfg = _COLUMNAR_CACHE.get(sfg)
    return bool(per_sfg) and include_anti_dependencies in per_sfg


def adopt_columnar_tables(sfg: StatisticalFlowGraph,
                          tables: ColumnarTables) -> None:
    """Install externally built tables (e.g. attached from shared
    memory) as *sfg*'s cached tables."""
    per_sfg = _COLUMNAR_CACHE.get(sfg)
    if per_sfg is None:
        per_sfg = {}
        _COLUMNAR_CACHE[sfg] = per_sfg
    per_sfg[tables.include_anti] = tables


# -- the columnar trace -------------------------------------------------


class ColumnarTrace:
    """A synthetic trace as parallel numpy columns.

    Dependencies are CSR: instruction ``i`` carries distances
    ``dep_val[dep_off[i]:dep_off[i+1]]``.  ``outcome`` holds
    :class:`BranchOutcome` codes (0 correct / 1 redirection /
    2 misprediction) and is only meaningful where the class is a
    branch.
    """

    __slots__ = ("name", "order", "reduction_factor", "seed",
                 "iclass", "dep_off", "dep_val", "il1", "l2i", "itlb",
                 "dl1", "l2d", "dtlb", "taken", "outcome")

    def __len__(self) -> int:
        return int(self.iclass.size)

    def to_synthetic_trace(self) -> SyntheticTrace:
        """Materialize per-instruction objects (tests, reports and the
        fuzz oracle; the pipeline consumes the columns directly)."""
        iclasses = [IClass(code) for code in self.iclass.tolist()]
        dep_off = self.dep_off.tolist()
        dep_val = self.dep_val.tolist()
        il1 = self.il1.tolist()
        l2i = self.l2i.tolist()
        itlb = self.itlb.tolist()
        dl1 = self.dl1.tolist()
        l2d = self.l2d.tolist()
        dtlb = self.dtlb.tolist()
        taken = self.taken.tolist()
        outcome = self.outcome.tolist()
        new = SyntheticInstruction.__new__
        out: List[SyntheticInstruction] = []
        append = out.append
        for i, iclass in enumerate(iclasses):
            inst = new(SyntheticInstruction)
            inst.iclass = iclass
            lo, hi = dep_off[i], dep_off[i + 1]
            inst.dep_distances = tuple(dep_val[lo:hi]) if hi > lo else ()
            inst.il1_miss = il1[i]
            inst.l2i_miss = l2i[i]
            inst.itlb_miss = itlb[i]
            inst.dl1_miss = dl1[i]
            inst.l2d_miss = l2d[i]
            inst.dtlb_miss = dtlb[i]
            inst.taken = taken[i]
            inst.outcome = (_OUTCOMES[outcome[i]]
                            if iclass in BRANCH_CLASSES else None)
            append(inst)
        return SyntheticTrace(
            name=self.name, instructions=out, order=self.order,
            reduction_factor=self.reduction_factor, seed=self.seed)

    def summary(self) -> dict:
        """Aggregate annotation rates (vectorized twin of
        :meth:`SyntheticTrace.summary`)."""
        n = max(1, len(self))
        is_branch = np.isin(self.iclass,
                            [int(c) for c in BRANCH_CLASSES])
        loads = int((self.iclass == int(IClass.LOAD)).sum())
        branches = int(is_branch.sum())
        return {
            "instructions": len(self),
            "load_fraction": loads / n,
            "branch_fraction": branches / n,
            "il1_miss_rate": float(self.il1.sum()) / n,
            "dl1_miss_rate": (float(self.dl1.sum()) / loads
                              if loads else 0.0),
            "misprediction_rate": (
                float((self.outcome[is_branch] == 2).sum()) / branches
                if branches else 0.0),
        }


# -- generation ---------------------------------------------------------


def _walk_context_sequence(tables: ColumnarTables,
                           reduced: ReducedFlowGraph,
                           rng: random.Random,
                           limit: float) -> List[int]:
    """Steps 1, 2 and 9: the scalar random walk, emitting context ids.

    Structurally identical to the scalar generator's walk (Fenwick
    restarts with batched budget drains, eligible-edge scan per block);
    only the per-block emission is deferred to the batch pass.
    """
    rand = rng.random
    ctx_index = tables.ctx_index
    order = tables.order
    block_len = tables.block_len.tolist()
    edges_list = tables.edges

    remaining: Dict[int, int] = {
        ctx_index[context]: budget
        for context, budget in reduced.occurrences.items()}
    remaining_get = remaining.get
    cids_by_index = list(remaining)
    index_of = {cid: index for index, cid in enumerate(cids_by_index)}
    start = FenwickSampler(list(remaining.values()))
    start_sample = start.sample
    start_add = start.add
    total_remaining = start.total
    pending: Dict[int, int] = {}
    pending_get = pending.get

    sequence: List[int] = []
    seq_append = sequence.append
    total_len = 0
    eligible_weights: List[int] = []
    eligible_targets: List[int] = []
    next_health = _HEALTH_EVERY

    while total_remaining > 0:
        if pending:
            for drained, count in pending.items():
                start_add(index_of[drained], -count)
            pending.clear()
        cid = cids_by_index[start_sample(rand())]
        while True:
            remaining[cid] -= 1
            pending[cid] = pending_get(cid, 0) + 1
            total_remaining -= 1
            seq_append(cid)
            total_len += block_len[cid]
            if total_len >= next_health:
                next_health = total_len + _HEALTH_EVERY
                _health_checkpoint(total_len)
            if total_len >= limit:
                total_remaining = 0
                break
            if order == 0:
                break
            entries = edges_list[cid]
            if not entries:
                break
            eligible_weights.clear()
            eligible_targets.clear()
            total = 0
            for weight, target in entries:
                if remaining_get(target, 0) > 0:
                    eligible_weights.append(weight)
                    eligible_targets.append(target)
                    total += weight
            if not total:
                break
            draw = rand() * total
            running = 0
            chosen = 0
            for index, weight in enumerate(eligible_weights):
                running += weight
                if running > draw:
                    chosen = index
                    break
            cid = eligible_targets[chosen]
    return sequence


def generate_columnar_trace(
    profile: StatisticalProfile,
    reduction_factor: float,
    seed: int = 0,
    reduced: Optional[ReducedFlowGraph] = None,
    max_instructions: Optional[int] = None,
    include_anti_dependencies: bool = False,
) -> ColumnarTrace:
    """Batch twin of :func:`repro.core.synthesis.generate_synthetic_trace`.

    Same parameters, same reduced-graph semantics, same step 4
    rejection rule — but the emitted trace is columnar and the draw
    sequence differs from the scalar generator's (statistically
    equivalent, not bit-compatible; see the module docstring).
    """
    sfg = profile.sfg
    if not sfg.contexts:
        raise SynthesisError(
            f"profile {profile.name!r} holds no contexts; nothing to "
            f"synthesize (was the trace shorter than one basic block?)")
    with trace_span("synthesize", bench=profile.name, seed=seed,
                    mode="columnar"):
        if reduced is None:
            with trace_span("reduce", bench=profile.name):
                reduced = reduce_flow_graph(sfg, reduction_factor)
        elif reduced.sfg is not sfg:
            raise SynthesisError(
                "reduced graph does not belong to this profile")
        tables = columnar_tables_for(sfg, include_anti_dependencies)
        limit = (max_instructions if max_instructions is not None
                 else float("inf"))
        sequence = _walk_context_sequence(
            tables, reduced, random.Random(seed), limit)
        trace = _emit_columns(tables, sequence,
                              np.random.Generator(np.random.PCG64(seed)))
    trace.name = f"{profile.name}/synthetic"
    trace.order = profile.order
    trace.reduction_factor = reduction_factor
    trace.seed = seed
    return trace


def _emit_columns(tables: ColumnarTables, sequence: List[int],
                  rng: np.random.Generator) -> ColumnarTrace:
    """Steps 3-8 for the whole walk at once."""
    cids = np.asarray(sequence, dtype=np.int64)
    lens = tables.block_len[cids]
    n = int(lens.sum())
    # Row index per instruction: each block contributes the contiguous
    # row range of its context (the standard CSR expansion).
    block_pos = np.zeros(cids.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=block_pos[1:])
    rows = np.repeat(tables.block_off[cids] - block_pos, lens) \
        + np.arange(n, dtype=np.int64)

    trace = ColumnarTrace.__new__(ColumnarTrace)
    trace.iclass = tables.iclass[rows]
    produces = tables.produces[rows]
    is_load = tables.is_load[rows]
    is_branch = tables.is_branch[rows]

    # Steps 5-7: locality events.  The second-level draws keep the
    # scalar conditional structure (L2 given L1 miss); masking by the
    # first-level outcome is distribution-identical to the scalar
    # path's conditional draw.
    trace.il1 = rng.random(n) < tables.p_il1[rows]
    trace.l2i = trace.il1 & (rng.random(n) < tables.p_l2i[rows])
    trace.itlb = rng.random(n) < tables.p_itlb[rows]
    trace.dl1 = is_load & (rng.random(n) < tables.p_dl1[rows])
    trace.l2d = trace.dl1 & (rng.random(n) < tables.p_l2d[rows])
    trace.dtlb = is_load & (rng.random(n) < tables.p_dtlb[rows])

    # Step 6: branch characteristics.  Contexts that never observed an
    # outcome classify as CORRECT, like the scalar emitter.
    trace.taken = is_branch & (rng.random(n) < tables.p_taken[rows])
    ototal = tables.ototal[rows]
    draw = rng.random(n) * ototal
    code = (tables.oc0[rows] <= draw).view(np.int8) \
        + (tables.oc1[rows] <= draw)
    trace.outcome = np.where(is_branch & (ototal > 0.0),
                             code, 0).astype(np.uint8)

    # Steps 3-4: dependency distances with branch/store-producer
    # rejection against the full-trace produces column.
    ops_per_inst = tables.row_ops[rows]
    total_ops = int(ops_per_inst.sum())
    if total_ops:
        ops_pos = np.zeros(n, dtype=np.int64)
        np.cumsum(ops_per_inst[:-1], out=ops_pos[1:])
        table_ids = np.repeat(tables.op_off[rows] - ops_pos,
                              ops_per_inst) \
            + np.arange(total_ops, dtype=np.int64)
        inst_ids = np.repeat(np.arange(n, dtype=np.int64), ops_per_inst)
        gate = rng.random(total_ops) < tables.p_dep[table_ids]
        table_ids = table_ids[gate]
        inst_ids = inst_ids[gate]
        active = int(table_ids.size)
        dist_cum = tables.dist_cum
        dist_val = tables.dist_val
        idx = np.searchsorted(dist_cum, table_ids + rng.random(active),
                              side="right")
        dist = dist_val[idx]
        producer = inst_ids - dist
        rejected = tables.rejectable[table_ids] & (producer >= 0) \
            & (produces[np.maximum(producer, 0)] == 0)
        pending = np.flatnonzero(rejected)
        keep = np.ones(active, dtype=bool)
        tries = 0
        while pending.size and tries < MAX_DEPENDENCY_RETRIES:
            tries += 1
            redraw = np.searchsorted(
                dist_cum, table_ids[pending] + rng.random(pending.size),
                side="right")
            new_dist = dist_val[redraw]
            dist[pending] = new_dist
            producer = inst_ids[pending] - new_dist
            still = (producer >= 0) \
                & (produces[np.maximum(producer, 0)] == 0)
            pending = pending[still]
        if pending.size:
            # Retries exhausted: the dependency is squashed (step 4).
            keep[pending] = False
        inst_ids = inst_ids[keep]
        dep_counts = np.bincount(inst_ids, minlength=n)
        trace.dep_val = dist[keep]
    else:
        dep_counts = np.zeros(n, dtype=np.int64)
        trace.dep_val = np.zeros(0, dtype=np.int64)
    dep_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(dep_counts, out=dep_off[1:])
    trace.dep_off = dep_off
    return trace
