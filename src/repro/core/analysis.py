"""Analysis utilities for statistical flow graphs.

The paper asserts qualitative properties of the SFG — that it stays
"both simpler and smaller" than SMART's fully-qualified graphs, and
that after reduction "the interconnection is still strong enough" for
accurate prediction.  These helpers quantify such properties: graph
export for inspection (networkx), transition entropy (how much control
flow is actually conditioned by history), and connectivity of reduced
graphs.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import networkx as nx

from repro.core.reduction import ReducedFlowGraph
from repro.core.sfg import StatisticalFlowGraph


def to_networkx(sfg: StatisticalFlowGraph,
                reduced: Optional[ReducedFlowGraph] = None) -> nx.DiGraph:
    """Export an SFG (optionally restricted to a reduced graph's
    surviving nodes) as a networkx DiGraph.

    Nodes are contexts (``(k+1)``-gram tuples) with ``occurrences``
    attributes; edges carry the profiled transition ``probability`` and
    ``count``.
    """
    keep = None if reduced is None else set(reduced.occurrences)
    graph = nx.DiGraph(order=sfg.order)
    for context, stats in sfg.contexts.items():
        if keep is not None and context not in keep:
            continue
        occurrences = (reduced.occurrences[context] if reduced is not None
                       else stats.occurrences)
        graph.add_node(context, occurrences=occurrences,
                       block=context[-1], block_size=stats.block_size)
    for context in list(graph.nodes):
        history = context[1:] if sfg.order > 0 else ()
        counts = sfg.transitions.get(history)
        if not counts:
            continue
        total = sum(counts.values())
        for block, count in counts.items():
            successor = history + (block,)
            if successor in graph:
                graph.add_edge(context, successor, count=count,
                               probability=count / total)
    return graph


def transition_entropy(sfg: StatisticalFlowGraph) -> float:
    """Occurrence-weighted mean entropy (bits) of the next-block
    distributions.

    Zero means control flow is fully determined by the history (every
    history has a single successor); high values mean the order-k
    history leaves successor choice mostly random — the regime where
    higher k (or any k at all) pays off least.
    """
    weighted = 0.0
    total = 0
    for history, counts in sfg.transitions.items():
        mass = sum(counts.values())
        entropy = 0.0
        for count in counts.values():
            p = count / mass
            entropy -= p * math.log2(p)
        weighted += mass * entropy
        total += mass
    return weighted / total if total else 0.0


def reduced_connectivity(sfg: StatisticalFlowGraph,
                         reduced: ReducedFlowGraph) -> Dict[str, float]:
    """Quantify the paper's "interconnection is still strong enough"
    claim for a reduced graph.

    Returns the fraction of surviving nodes in the largest weakly
    connected component, the number of components, and the fraction of
    the surviving occurrence mass that the largest component holds.
    """
    graph = to_networkx(sfg, reduced=reduced)
    if graph.number_of_nodes() == 0:
        return {"largest_component_fraction": 0.0, "components": 0,
                "largest_component_mass": 0.0}
    components = list(nx.weakly_connected_components(graph))
    largest = max(components, key=len)
    total_mass = sum(reduced.occurrences.values())
    largest_mass = sum(reduced.occurrences[c] for c in largest)
    return {
        "largest_component_fraction": len(largest) / graph.number_of_nodes(),
        "components": len(components),
        "largest_component_mass": (largest_mass / total_mass
                                   if total_mass else 0.0),
    }


def hottest_contexts(sfg: StatisticalFlowGraph, top: int = 10):
    """The *top* contexts by occurrence, with their share of all block
    executions (inspection aid used by the CLI and examples)."""
    ranked = sorted(sfg.contexts.items(),
                    key=lambda item: -item[1].occurrences)[:top]
    total = max(1, sfg.total_block_executions)
    return [(context, stats.occurrences, stats.occurrences / total)
            for context, stats in ranked]
