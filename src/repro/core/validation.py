"""Consistency diagnostics between profile, synthetic trace and
reference.

When a statistical simulation misses, the question is always *which
characteristic* drifted: the block mix, the dependency structure, the
branch characteristics or the cache events.  This module compares the
same quantities at three stages — as profiled (expectation), as
realized in a synthetic trace (sample), and as observed by the
execution-driven reference — and reports the drifts, making accuracy
debugging systematic instead of ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.branch.unit import BranchOutcome
from repro.isa.iclass import IClass
from repro.core.profiler import StatisticalProfile
from repro.core.synthetic import SyntheticTrace


@dataclass(frozen=True)
class CharacteristicRates:
    """The comparable characteristic set at one stage."""

    load_fraction: float
    branch_fraction: float
    taken_rate: float
    misprediction_rate: float
    redirection_rate: float
    dl1_miss_rate: float
    l2d_miss_rate: float
    il1_miss_rate: float
    dependencies_per_instruction: float
    mean_dependency_distance: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "load_fraction": self.load_fraction,
            "branch_fraction": self.branch_fraction,
            "taken_rate": self.taken_rate,
            "misprediction_rate": self.misprediction_rate,
            "redirection_rate": self.redirection_rate,
            "dl1_miss_rate": self.dl1_miss_rate,
            "l2d_miss_rate": self.l2d_miss_rate,
            "il1_miss_rate": self.il1_miss_rate,
            "dependencies_per_instruction":
                self.dependencies_per_instruction,
            "mean_dependency_distance": self.mean_dependency_distance,
        }


def profile_rates(profile: StatisticalProfile) -> CharacteristicRates:
    """Expected characteristic rates implied by the profile
    (occurrence-weighted over all contexts)."""
    instructions = loads = branches = 0
    taken = mispredicted = redirected = 0
    dl1 = l2d = il1 = 0.0
    dependencies = 0
    distance_mass = 0
    for stats in profile.sfg.contexts.values():
        occurrences = stats.occurrences
        instructions += occurrences * stats.block_size
        branches += occurrences
        taken += stats.taken
        redirected += stats.outcome_counts[
            BranchOutcome.FETCH_REDIRECTION]
        mispredicted += stats.outcome_counts[BranchOutcome.MISPREDICTION]
        for slot, iclass in enumerate(stats.iclasses):
            il1 += stats.il1[slot]
            if iclass is IClass.LOAD:
                loads += occurrences
                dl1 += stats.dl1[slot]
                l2d += stats.l2d[slot]
            for hist in stats.dep_hists[slot]:
                for distance, count in hist.items():
                    dependencies += count
                    distance_mass += distance * count
    return CharacteristicRates(
        load_fraction=loads / max(1, instructions),
        branch_fraction=branches / max(1, instructions),
        taken_rate=taken / max(1, branches),
        misprediction_rate=mispredicted / max(1, branches),
        redirection_rate=redirected / max(1, branches),
        dl1_miss_rate=dl1 / max(1, loads),
        l2d_miss_rate=l2d / max(1.0, dl1),
        il1_miss_rate=il1 / max(1, instructions),
        dependencies_per_instruction=dependencies / max(1, instructions),
        mean_dependency_distance=(distance_mass / dependencies
                                  if dependencies else 0.0),
    )


def synthetic_rates(synthetic: SyntheticTrace) -> CharacteristicRates:
    """Characteristic rates realized in a synthetic trace."""
    instructions = len(synthetic.instructions)
    loads = branches = taken = mispredicted = redirected = 0
    dl1 = l2d = il1 = 0
    dependencies = distance_mass = 0
    for inst in synthetic.instructions:
        il1 += inst.il1_miss
        if inst.is_load:
            loads += 1
            dl1 += inst.dl1_miss
            l2d += inst.l2d_miss
        if inst.is_branch:
            branches += 1
            taken += inst.taken
            mispredicted += (inst.outcome
                             is BranchOutcome.MISPREDICTION)
            redirected += (inst.outcome
                           is BranchOutcome.FETCH_REDIRECTION)
        for distance in inst.dep_distances:
            dependencies += 1
            distance_mass += distance
    return CharacteristicRates(
        load_fraction=loads / max(1, instructions),
        branch_fraction=branches / max(1, instructions),
        taken_rate=taken / max(1, branches),
        misprediction_rate=mispredicted / max(1, branches),
        redirection_rate=redirected / max(1, branches),
        dl1_miss_rate=dl1 / max(1, loads),
        l2d_miss_rate=l2d / max(1, dl1),
        il1_miss_rate=il1 / max(1, instructions),
        dependencies_per_instruction=dependencies / max(1, instructions),
        mean_dependency_distance=(distance_mass / dependencies
                                  if dependencies else 0.0),
    )


def drift_report(profile: StatisticalProfile,
                 synthetic: SyntheticTrace,
                 threshold: float = 0.05) -> Dict[str, Dict[str, float]]:
    """Compare expected vs realized rates.

    Returns, per characteristic, the expected value, the realized value
    and the absolute drift; entries whose drift exceeds *threshold*
    carry ``"flagged": 1.0``.  A flagged drift usually means the
    reduction factor is too aggressive for this characteristic's
    carrier contexts (see DESIGN.md) or the synthetic trace is too
    short for its rare events.
    """
    expected = profile_rates(profile).as_dict()
    realized = synthetic_rates(synthetic).as_dict()
    # Probabilities compare absolutely; instruction-scaled quantities
    # (dependency counts and distances) compare relatively.
    relative_keys = {"dependencies_per_instruction",
                     "mean_dependency_distance"}
    report: Dict[str, Dict[str, float]] = {}
    for key in expected:
        drift = abs(expected[key] - realized[key])
        if key in relative_keys and expected[key] > 0:
            drift /= expected[key]
        entry = {"expected": expected[key], "realized": realized[key],
                 "drift": drift}
        if drift > threshold:
            entry["flagged"] = 1.0
        report[key] = entry
    # Note: a drift on dependencies_per_instruction is expected at any
    # R: step 4's rejection rule squashes a dependency whenever its
    # sampled distance keeps landing on a branch/store in the synthetic
    # layout (the paper's algorithm does the same).
    return report


def format_drift_report(report: Dict[str, Dict[str, float]]) -> str:
    """Render a drift report as a fixed-width table."""
    lines = [f"{'characteristic':30} {'expected':>10} {'realized':>10} "
             f"{'drift':>8}"]
    for key, entry in report.items():
        flag = "  <-- drift" if "flagged" in entry else ""
        lines.append(f"{key:30} {entry['expected']:>10.4f} "
                     f"{entry['realized']:>10.4f} "
                     f"{entry['drift']:>8.4f}{flag}")
    return "\n".join(lines)
