"""Fast categorical samplers for the synthesis hot path.

The nine-step random walk (section 2.2) draws millions of categorical
samples — dependency distances, start nodes, branch outcomes, outgoing
edges.  The original implementation paid ``O(n)`` per start-node draw
(rebuilding a cumulative table over every context) and ``O(log n)`` per
distance draw (``bisect_right``).  This module provides three
constant-or-log-time samplers:

* :class:`GuideTableSampler` — O(1) expected draws over a *fixed*
  integer-weight distribution.  **Draw-stable**: for the same uniform
  ``u`` it returns exactly ``bisect_right(cumulative, u * total)``, so
  replacing a cumulative-list sampler with a guide table cannot change
  a single sampled value for a given seed (the determinism goldens in
  ``tests/golden/`` rely on this).
* :class:`FenwickSampler` — O(log n) draws and O(log n) weight updates
  over a *mutable* integer-weight distribution (the draining start-node
  budgets).  Also draw-stable: it selects the same element as a
  ``bisect_right`` over the cumulative weights of the currently
  positive entries, because zero-weight entries can never absorb a
  draw and all arithmetic is exact (integer partial sums, and
  float-minus-int stays exact below 2**53).
* :class:`AliasSampler` — Vose's alias method, O(1) worst-case with a
  single uniform per draw.  It samples the same *distribution* but maps
  a given ``u`` to a different outcome than inverse-CDF sampling, so it
  is **not** draw-stable; use it where raw throughput matters and no
  legacy seed-compatibility contract exists (see
  ``docs/performance.md`` for the trade-off).

All samplers take the uniform draw as an argument (``sample(u)``)
instead of an RNG so callers can hoist the ``rng.random`` bound method
out of their hot loops and so the draw count per sample is explicit:
exactly one.
"""

from __future__ import annotations

from itertools import accumulate
from typing import List, Sequence


class GuideTableSampler:
    """Indexed inverse-CDF sampling over fixed non-negative int weights.

    A guide table of ``len(weights)`` buckets stores, per bucket, a
    lower bound on the answer index; a draw lands in its bucket in O(1)
    and walks at most a couple of entries forward (expected O(1) for
    any distribution, by the classic guide-table argument).

    ``sample(u)`` returns ``bisect_right(cumulative, u * total)`` —
    bit-for-bit, because the bucket of every cumulative entry is
    computed with the same float expression used at draw time.
    """

    __slots__ = ("cumulative", "total", "n", "guide", "buckets", "inv")

    def __init__(self, weights: Sequence[int]) -> None:
        cumulative = list(accumulate(weights))
        self.cumulative = cumulative
        self.total = cumulative[-1] if cumulative else 0
        self.n = len(cumulative)
        buckets = max(1, self.n)
        self.buckets = buckets
        self.inv = buckets / self.total if self.total else 0.0
        # guide[j] counts the cumulative entries whose bucket < j — a
        # provable lower bound on the answer for every draw in bucket j
        # (monotonicity of x -> int(x * inv) makes the bound exact-safe
        # under float rounding; no epsilon fudging needed).
        histogram = [0] * (buckets + 1)
        if self.total:
            inv = self.inv
            for value in cumulative:
                bucket = int(value * inv)
                if bucket > buckets:
                    bucket = buckets
                histogram[bucket] += 1
        guide: List[int] = [0] * (buckets + 1)
        running = 0
        for j in range(1, buckets + 1):
            running += histogram[j - 1]
            guide[j] = running
        self.guide = guide

    def sample(self, u: float) -> int:
        """Index drawn by uniform ``u`` in [0, 1); clamped to ``n - 1``
        like the legacy operand sampler."""
        draw = u * self.total
        bucket = int(draw * self.inv)
        if bucket >= self.buckets:
            bucket = self.buckets - 1
        index = self.guide[bucket]
        cumulative = self.cumulative
        n = self.n
        while index < n and cumulative[index] <= draw:
            index += 1
        return index if index < n else n - 1


class FenwickSampler:
    """Dynamic categorical sampler over mutable integer weights.

    Backed by a Fenwick (binary-indexed) tree: ``add`` adjusts one
    weight in O(log n); ``sample`` finds, for a uniform draw, the first
    index whose running prefix sum exceeds ``u * total`` in O(log n).
    Zero-weight entries are transparent (they cannot absorb a draw), so
    the selected index always matches a ``bisect_right`` over the
    cumulative weights of the entries that are still positive — the
    exact behaviour of the per-restart rebuild it replaces.
    """

    __slots__ = ("tree", "n", "total", "_top")

    def __init__(self, weights: Sequence[int]) -> None:
        n = len(weights)
        self.n = n
        self.total = 0
        tree = [0] * (n + 1)
        for index, weight in enumerate(weights):
            if weight < 0:
                raise ValueError(f"negative weight {weight} at "
                                 f"index {index}")
            self.total += weight
            position = index + 1
            tree[position] += weight
            parent = position + (position & -position)
            if parent <= n:
                tree[parent] += tree[position]
        self.tree = tree
        top = 1
        while top * 2 <= n:
            top *= 2
        self._top = top if n else 0

    def add(self, index: int, delta: int) -> None:
        """Adjust ``weights[index]`` by *delta* (commonly -1 as a
        start-node budget drains)."""
        self.total += delta
        position = index + 1
        tree = self.tree
        n = self.n
        while position <= n:
            tree[position] += delta
            position += position & -position

    def sample(self, u: float) -> int:
        """Index of the entry selected by uniform ``u`` in [0, 1).

        Requires ``total > 0``.  Descends the implicit tree: at each
        step the candidate prefix sum is an exact integer, and
        ``draw - prefix`` stays exact in float64, so the comparison
        sequence is identical to scanning an explicit cumulative list.
        """
        draw = u * self.total
        position = 0
        span = self._top
        tree = self.tree
        n = self.n
        while span:
            probe = position + span
            if probe <= n and tree[probe] <= draw:
                position = probe
                draw -= tree[probe]
            span >>= 1
        return position

    def weight(self, index: int) -> int:
        """Current weight of one entry (testing aid)."""
        position = index + 1
        tree = self.tree
        value = tree[position]
        stop = position - (position & -position)
        position -= 1
        while position > stop:
            value -= tree[position]
            position -= position & -position
        return value


class AliasSampler:
    """Vose's alias method: O(1) worst-case categorical sampling.

    Builds, in O(n), a table of n columns each holding a primary index,
    a cutoff probability and an alias index; a draw splits one uniform
    into a column pick and a coin flip.  Samples the same distribution
    as inverse-CDF sampling but maps a given uniform to a different
    outcome — see the module docstring before using it anywhere a seed
    reproducibility contract applies.
    """

    __slots__ = ("n", "prob", "alias", "total")

    def __init__(self, weights: Sequence[int]) -> None:
        n = len(weights)
        if n == 0:
            raise ValueError("alias table needs at least one weight")
        total = 0
        for index, weight in enumerate(weights):
            if weight < 0:
                raise ValueError(f"negative weight {weight} at "
                                 f"index {index}")
            total += weight
        if total <= 0:
            raise ValueError("alias table needs positive total weight")
        self.n = n
        self.total = total
        scaled = [weight * n / total for weight in weights]
        prob = [0.0] * n
        alias = list(range(n))
        small = [i for i, p in enumerate(scaled) if p < 1.0]
        large = [i for i, p in enumerate(scaled) if p >= 1.0]
        while small and large:
            light = small.pop()
            heavy = large.pop()
            prob[light] = scaled[light]
            alias[light] = heavy
            scaled[heavy] = (scaled[heavy] + scaled[light]) - 1.0
            if scaled[heavy] < 1.0:
                small.append(heavy)
            else:
                large.append(heavy)
        for index in large:
            prob[index] = 1.0
        for index in small:  # float residue: treat as full columns
            prob[index] = 1.0
        self.prob = prob
        self.alias = alias

    def sample(self, u: float) -> int:
        """Draw one index from a single uniform ``u`` in [0, 1)."""
        scaled = u * self.n
        column = int(scaled)
        if column >= self.n:
            column = self.n - 1
        if (scaled - column) < self.prob[column]:
            return column
        return self.alias[column]
