"""Accuracy metrics used throughout the paper's evaluation.

* Absolute error (section 4.2):
  ``AE = |M_SS - M_EDS| / M_EDS``.
* Relative error between design points A and B (section 4.5):
  ``RE = |(M_B,SS / M_A,SS) - (M_B,EDS / M_A,EDS)| / (M_B,EDS / M_A,EDS)``.
* Coefficient of variation over seeds (section 4.1):
  ``CoV = stdev / mean``.
"""

from __future__ import annotations

import math
from typing import Sequence


def absolute_error(predicted: float, reference: float) -> float:
    """The paper's absolute prediction error AE_M (section 4.2)."""
    if reference == 0:
        raise ValueError("reference metric is zero")
    return abs(predicted - reference) / abs(reference)


def relative_error(predicted_a: float, predicted_b: float,
                   reference_a: float, reference_b: float) -> float:
    """The paper's relative prediction error RE_M when moving from
    design point A to design point B (section 4.5)."""
    if 0 in (predicted_a, reference_a, reference_b):
        raise ValueError("metrics must be non-zero")
    predicted_trend = predicted_b / predicted_a
    reference_trend = reference_b / reference_a
    return abs(predicted_trend - reference_trend) / abs(reference_trend)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Sample standard deviation divided by the mean (section 4.1)."""
    if len(values) < 2:
        raise ValueError("need at least two values")
    mean = sum(values) / len(values)
    if mean == 0:
        raise ValueError("mean is zero")
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance) / abs(mean)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (convenience for experiment tables)."""
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)
