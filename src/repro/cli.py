"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``benchmarks`` — list the workload suite and its static shape;
* ``simulate`` — compare execution-driven and statistical simulation
  on one benchmark (the quickstart, scriptable);
* ``profile`` — measure a statistical profile and save it to JSON;
* ``synthesize`` — generate a synthetic trace from a saved profile and
  report its composition;
* ``experiment`` — regenerate one of the paper's tables/figures;
* ``dse`` — run a parallel, cached design-space sweep (the section 4.6
  protocol as a first-class subsystem; see ``docs/design_space.md``);
* ``bench`` — time the hot paths before/after the performance overhaul
  and write ``BENCH_hotpath.json`` (see ``docs/performance.md``);
* ``fuzz`` — differential fuzzing and statistical acceptance: seeded
  random programs through both pipeline implementations plus the
  profile → synthesize loop, with failure minimization and a replayable
  regression corpus (see ``docs/fuzzing.md``);
* ``serve`` / ``submit`` / ``jobs`` / ``tail`` / ``cancel`` — the
  durable simulation service: a crash-safe job daemon over a
  write-ahead journaled store, with idempotent content-addressed
  submissions and admission control (see ``docs/service.md``).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.errors import ReproError

#: Experiments whose ``run`` accepts a fault-tolerant ``runner=``
#: (multi-benchmark batch jobs with checkpoint/resume support).
RUNNER_AWARE_EXPERIMENTS = frozenset(
    {"table1", "fig6", "table4", "sec46", "speedup"})

EXPERIMENTS = {
    "table1": "table1_baseline",
    "fig3": "fig3_branch_profiling",
    "fig4": "fig4_sfg_order",
    "table3": "table3_sfg_size",
    "fig5": "fig5_delayed_update",
    "fig6": "fig6_absolute",
    "sec41": "sec41_convergence",
    "fig7": "fig7_hls",
    "fig8": "fig8_phases",
    "table4": "table4_relative",
    "sec46": "sec46_design_space",
    "ablation-models": "ablation_workload_models",
    "ablation-fifo": "ablation_fifo_size",
    "ablation-reduction": "ablation_reduction",
    "extension-inorder": "extension_inorder",
    "speedup": "speedup",
}


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}")
    return value


def _obs_parent() -> argparse.ArgumentParser:
    """Observability flags, accepted both before and after the
    subcommand (defaults are SUPPRESSed so a subparser never clobbers a
    value given at the top level)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_mutually_exclusive_group()
    group.add_argument(
        "-q", "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="console shows only warnings and errors")
    group.add_argument(
        "-v", "--verbose", action="store_true",
        default=argparse.SUPPRESS,
        help="console shows debug events (spans, unit lifecycle)")
    parent.add_argument(
        "--log-json", default=argparse.SUPPRESS, metavar="PATH",
        help="write every event as one JSON object per line to PATH "
             "(schema: docs/observability.md); also writes a "
             "metrics.json snapshot next to it")
    parent.add_argument(
        "--metrics", default=argparse.SUPPRESS, metavar="PATH",
        help="write the end-of-run metrics registry snapshot to PATH")
    # dest is namespaced: several subcommands have a positional
    # ``profile`` (the saved-profile path) that would share the dest.
    parent.add_argument(
        "--profile", dest="obs_profile", default=argparse.SUPPRESS,
        choices=("cprofile",),
        help="dump a pstats profile per work unit for hot-path "
             "analysis")
    parent.add_argument(
        "--profile-dir", dest="obs_profile_dir",
        default=argparse.SUPPRESS, metavar="DIR",
        help="where --profile dumps land (default: profiles/)")
    parent.add_argument(
        "--trace-dir", dest="trace_dir", default=argparse.SUPPRESS,
        metavar="DIR",
        help="activate fleet telemetry: every process of this run "
             "appends spans to DIR/trace-<pid>.jsonl and metrics to "
             "DIR/metrics-<pid>.json, and keeps a crash flight "
             "recorder; stitch with 'repro trace DIR'")
    return parent


def _build_parser() -> argparse.ArgumentParser:
    obs_parent = _obs_parent()
    parser = argparse.ArgumentParser(
        prog="repro",
        parents=[obs_parent],
        description="Statistical simulation with control-flow modeling "
                    "(Eeckhout et al., ISCA 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("benchmarks", help="list the workload suite",
                   parents=[obs_parent])

    simulate = sub.add_parser(
        "simulate", parents=[obs_parent],
        help="execution-driven vs statistical simulation")
    simulate.add_argument("benchmark")
    simulate.add_argument("--instructions", type=_positive_int,
                          default=60_000)
    simulate.add_argument("--warmup", type=_non_negative_int,
                          default=40_000)
    simulate.add_argument("-R", "--reduction-factor",
                          type=_positive_float, default=6.0)
    simulate.add_argument("-k", "--order", type=_positive_int, default=1)
    simulate.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser(
        "profile", parents=[obs_parent],
        help="measure and save a statistical profile")
    profile.add_argument("benchmark")
    profile.add_argument("-o", "--output", required=True)
    profile.add_argument("--instructions", type=_positive_int,
                         default=60_000)
    profile.add_argument("--warmup", type=_non_negative_int,
                         default=40_000)
    profile.add_argument("-k", "--order", type=_positive_int, default=1)
    profile.add_argument("--branch-mode", default="delayed",
                         choices=("delayed", "immediate", "perfect"))

    synthesize = sub.add_parser(
        "synthesize", parents=[obs_parent],
        help="generate a synthetic trace from a profile")
    synthesize.add_argument("profile")
    synthesize.add_argument("-R", "--reduction-factor",
                            type=_positive_float, default=6.0)
    synthesize.add_argument("--seed", type=int, default=0)
    synth_mode = synthesize.add_mutually_exclusive_group()
    synth_mode.add_argument(
        "--vector", action="store_true",
        help="synthesize with the columnar batch kernels "
             "(statistically equivalent draws, see "
             "docs/performance.md)")
    synth_mode.add_argument(
        "--scalar", action="store_true",
        help="synthesize with the scalar generator (the default)")
    synthesize.add_argument("--simulate", action="store_true",
                            help="also simulate the synthetic trace")

    experiment = sub.add_parser(
        "experiment", parents=[obs_parent],
        help="regenerate a table/figure of the paper")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", default="quick",
                            choices=("quick", "default"))
    experiment.add_argument(
        "--benchmarks", default=None, metavar="NAME[,NAME...]",
        help="restrict the run to a comma-separated benchmark subset")
    experiment.add_argument(
        "--run-dir", default=None,
        help="checkpoint directory: each finished work unit is saved "
             "there, enabling --resume after a crash or kill")
    experiment.add_argument(
        "--resume", action="store_true",
        help="skip work units already checkpointed ok in --run-dir; "
             "failed or missing units are re-run")
    experiment.add_argument(
        "--timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="wall-clock budget per work unit (exceeded units are "
             "retried, then recorded as failures)")
    experiment.add_argument(
        "--retries", type=_non_negative_int, default=2,
        help="retry budget for retryable failures (default: 2)")
    experiment.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault-injection spec (same grammar as "
             "REPRO_CHAOS, e.g. 'seed=1;task-fail:rate=0.2'); "
             "overrides the environment")

    dse = sub.add_parser(
        "dse", parents=[obs_parent],
        help="parallel, cached design-space sweep "
             "(the section 4.6 protocol as a subsystem)")
    dse.add_argument(
        "--sweep", default=None, metavar="SPEC.json",
        help="sweep specification file (see docs/design_space.md); "
             "defaults to the reduced section 4.6 RUU/LSQ/width grid")
    dse.add_argument("--benchmark", default="twolf",
                     help="workload to profile and sweep (default: "
                          "twolf)")
    dse.add_argument("-j", "--jobs", type=_positive_int, default=1,
                     help="worker processes for the sweep (default: 1 "
                          "= serial in-process)")
    dse.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache: evaluations are stored "
             "by (profile, config, seed) hash and re-used across "
             "sweeps that share design points")
    dse.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep from --cache-dir (cache "
             "reuse is automatic whenever --cache-dir is given; this "
             "flag only asserts a cache directory is present)")
    dse.add_argument("--scale", default="quick",
                     choices=("quick", "default"))
    dse.add_argument(
        "--seeds", default=None, metavar="N[,N...]",
        help="synthesis seeds to average per design point (default: "
             "the scale's seeds)")
    dse.add_argument("-R", "--reduction-factor", type=_positive_float,
                     default=None,
                     help="synthetic trace reduction factor (default: "
                          "the scale's)")
    dse.add_argument("--verify-margin", type=_positive_float,
                     default=0.03,
                     help="EDS-verify every point within this margin "
                          "of the SS optimum (default: 0.03, as the "
                          "paper)")
    dse.add_argument("--no-verify", action="store_true",
                     help="skip the execution-driven verification "
                          "pass")
    dse.add_argument("--timeout", type=_positive_float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget per design-point "
                          "evaluation")
    dse.add_argument("--retries", type=_non_negative_int, default=2,
                     help="retry budget per design-point evaluation "
                          "(default: 2)")
    dse.add_argument(
        "--max-point-retries", type=_non_negative_int, default=2,
        metavar="N",
        help="worker crashes attributed to one design point before it "
             "is quarantined as a poison point (default: 2)")
    dse.add_argument(
        "--quarantine", default=None, metavar="MANIFEST.json",
        help="write the poison-point quarantine manifest (config + "
             "last error per quarantined task) to this path")
    dse.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault-injection spec (same grammar as "
             "REPRO_CHAOS, e.g. 'seed=1;worker-kill:rate=0.3'); "
             "overrides the environment")
    dse.add_argument(
        "--deadline", type=_positive_float, default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole sweep; evaluations "
             "past the cutoff fail fast with DeadlineExceededError "
             "at their next cooperative checkpoint (overrides the "
             "REPRO_HEALTH deadline)")
    dse.add_argument(
        "--bench", default=None, metavar="BENCH_dse.json",
        help="instead of one sweep, time serial vs --jobs parallel vs "
             "warm-cache re-run and write the machine-readable "
             "benchmark to this path")
    dse_mode = dse.add_mutually_exclusive_group()
    dse_mode.add_argument(
        "--vector", action="store_true",
        help="evaluate through the columnar batch kernels (shared "
             "sampling tables published to workers; statistically "
             "equivalent draws, cached under distinct keys — see "
             "docs/performance.md)")
    dse_mode.add_argument(
        "--scalar", action="store_true",
        help="evaluate through the scalar object path (the default; "
             "named so scripts can say what they mean)")

    bench = sub.add_parser(
        "bench", parents=[obs_parent],
        help="hot-path micro-benchmark: before/after timings of "
             "profiling, synthesis and superscalar simulation")
    bench.add_argument("--benchmark", default="gzip",
                       help="workload to time (default: gzip, the "
                            "determinism-golden workload)")
    mode = bench.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="CI-sized repeat counts (the default; named "
                           "so scripts can say what they mean)")
    mode.add_argument("--full", action="store_true",
                      help="longer repeat counts for stable "
                           "single-percent numbers (default: quick, "
                           "CI-sized)")
    bench.add_argument("-o", "--output", default="BENCH_hotpath.json",
                       help="where the payload lands (default: "
                            "BENCH_hotpath.json)")
    bench.add_argument("--baseline", default=None,
                       metavar="BASELINE.json",
                       help="pinned speedups to compare against "
                            "(benchmarks/perf/BASELINE_hotpath.json)")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero when the payload fails "
                            "schema validation or a phase's speedup "
                            "falls more than --tolerance below the "
                            "baseline")
    bench.add_argument("--tolerance", type=_positive_float, default=0.15,
                       help="allowed fractional slack below the pinned "
                            "baseline speedups (default: 0.15)")
    bench.add_argument("--trajectory", default=None,
                       metavar="TRAJECTORY.jsonl",
                       help="perf history file each run appends to "
                            "(default: benchmarks/perf/"
                            "TRAJECTORY.jsonl)")
    bench.add_argument("--no-trajectory", action="store_true",
                       help="skip the trajectory append (exploratory "
                            "runs that should leave no history)")

    fuzz = sub.add_parser(
        "fuzz", parents=[obs_parent],
        help="differential fuzzing + statistical acceptance "
             "(see docs/fuzzing.md)")
    fuzz.add_argument("--cases", type=_positive_int, default=25,
                      help="number of seeded cases to run "
                           "(default: 25)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="fuzz stream seed; identical (seed, cases) "
                           "invocations produce identical verdicts "
                           "(default: 0)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="corpus directory: failing cases are "
                           "minimized and written here; required "
                           "with --replay")
    fuzz.add_argument("--replay", action="store_true",
                      help="instead of generating cases, replay every "
                           "entry in --corpus and fail if a pinned "
                           "bug regressed")
    fuzz.add_argument("--stats-only", default=None, metavar="STATS.json",
                      help="write the deterministic JSON summary "
                           "(verdict counts, acceptance margins per "
                           "statistic) to this path")
    fuzz.add_argument("--timeout", type=_positive_float, default=None,
                      metavar="SECONDS",
                      help="wall-clock budget per fuzz case")
    fuzz.add_argument("--retries", type=_non_negative_int, default=0,
                      help="retry budget per case (default: 0; a fuzz "
                           "failure is deterministic, retries only "
                           "matter under chaos)")
    fuzz.add_argument("--max-shrink-trials", type=_positive_int,
                      default=200,
                      help="predicate evaluations the minimizer may "
                           "spend per failing case (default: 200)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="file failing cases unshrunk (faster triage "
                           "of a broad breakage)")
    fuzz.add_argument("--vector", action="store_true",
                      help="add the vector layer: the columnar batch "
                           "generator's draws must pass the same "
                           "statistical acceptance as the scalar "
                           "generator's (failures filed as kind "
                           "'vector')")
    fuzz.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault-injection spec (same grammar as "
             "REPRO_CHAOS; the pipeline-skew site plants a one-cycle "
             "discrepancy the oracle must catch); overrides the "
             "environment")

    analyze = sub.add_parser(
        "analyze", parents=[obs_parent],
        help="analyze a saved profile's flow graph")
    analyze.add_argument("profile")
    analyze.add_argument("-R", "--reduction-factor", type=float,
                         default=None,
                         help="also report the reduced graph at this R")
    analyze.add_argument("--top", type=int, default=8)

    validate = sub.add_parser(
        "validate", parents=[obs_parent],
        help="drift report: profile vs synthetic trace")
    validate.add_argument("profile")
    validate.add_argument("-R", "--reduction-factor", type=float,
                          default=6.0)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--threshold", type=float, default=0.05)

    trace = sub.add_parser(
        "trace", parents=[obs_parent],
        help="record a workload's dynamic trace to a file, OR — given "
             "a run directory — stitch its per-process telemetry "
             "into one critical-path tree")
    trace.add_argument("benchmark",
                       help="workload name to record, or a directory "
                            "of trace-<pid>.jsonl files to stitch")
    trace.add_argument("-o", "--output", default=None,
                       help="output trace file (required when "
                            "recording a workload)")
    trace.add_argument("--instructions", type=_positive_int,
                       default=60_000)
    trace.add_argument("--warmup", type=_non_negative_int, default=0)
    trace.add_argument("--trace-id", default=None,
                       help="stitch this trace id (default: the one "
                            "with the most spans)")
    trace.add_argument("--export", default=None, metavar="PERFETTO.json",
                       help="also write the stitched trace as "
                            "Chrome/Perfetto trace-event JSON")
    trace.add_argument("--openmetrics", default=None,
                       metavar="METRICS.txt",
                       help="also aggregate the run dir's "
                            "metrics-<pid>.json files and write them "
                            "as OpenMetrics text")

    report = sub.add_parser(
        "report", parents=[obs_parent],
        help="run every experiment and write a Markdown report")
    report.add_argument("-o", "--output", required=True)
    report.add_argument("--scale", default="quick",
                        choices=("quick", "default"))

    service_parent = argparse.ArgumentParser(add_help=False)
    service_parent.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="the daemon's durable state directory (journal, "
             "checkpoint, leases, default socket)")
    service_parent.add_argument(
        "--socket", default=None, metavar="PATH",
        help="the daemon's Unix socket (default: "
             "STATE_DIR/service.sock)")

    serve = sub.add_parser(
        "serve", parents=[obs_parent, service_parent],
        help="run the durable simulation-job daemon "
             "(see docs/service.md)")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="concurrent job slots (default: 1)")
    serve.add_argument("--queue-depth", type=_positive_int, default=32,
                       help="admission cap on queued jobs "
                            "(default: 32)")
    serve.add_argument("--client-cap", type=_positive_int, default=4,
                       help="per-client in-flight job cap "
                            "(default: 4)")
    serve.add_argument("--lease-ttl", type=_positive_float,
                       default=15.0, metavar="SECONDS",
                       help="running jobs whose heartbeat is older "
                            "than this are requeued on restart "
                            "(default: 15)")
    serve.add_argument("--heartbeat", type=_positive_float,
                       default=2.0, metavar="SECONDS",
                       help="lease heartbeat interval (default: 2)")
    serve.add_argument("--checkpoint-every", type=_positive_int,
                       default=64, metavar="N",
                       help="absorb the journal into a checkpoint "
                            "every N mutations (default: 64)")
    serve.add_argument("--drain-deadline", type=_positive_float,
                       default=10.0, metavar="SECONDS",
                       help="on SIGTERM, running jobs get this long "
                            "to finish before being requeued "
                            "(default: 10)")
    serve.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault-injection spec (same grammar as "
             "REPRO_CHAOS, e.g. 'seed=1;journal-corrupt:rate=0.2'); "
             "overrides the environment")

    submit = sub.add_parser(
        "submit", parents=[obs_parent, service_parent],
        help="submit a job to a running daemon (idempotent: "
             "identical submissions dedup onto one job)")
    submit.add_argument("--benchmark", default="twolf",
                        help="workload for a sweep job (default: "
                             "twolf)")
    submit.add_argument("--sweep", default=None, metavar="SPEC.json",
                        help="sweep specification file (default: the "
                             "reduced section 4.6 grid)")
    submit.add_argument("--scale", default="quick",
                        choices=("quick", "default"))
    submit.add_argument("--sweep-jobs", type=_positive_int, default=1,
                        help="worker processes the sweep itself uses "
                             "(default: 1)")
    submit.add_argument("--cache-dir", default=None,
                        help="shared result cache for the sweep "
                             "(multi-process safe; overlapping "
                             "sweeps skip duplicate evaluations)")
    submit.add_argument("--seeds", default=None, metavar="N[,N...]",
                        help="synthesis seeds (default: the scale's)")
    submit.add_argument("--deadline", type=_positive_float,
                        default=None, metavar="SECONDS",
                        help="wall-clock budget for the sweep job; "
                             "evaluations past the cutoff fail fast "
                             "at their next cooperative checkpoint")
    submit.add_argument("--sleep", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="instead of a sweep, submit a no-op job "
                             "that sleeps (testing/ops)")
    submit.add_argument("--client", default=None,
                        help="client identity for the per-client "
                             "in-flight cap (default: pid-<pid>)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes; exit "
                             "non-zero when it failed")
    submit.add_argument("--timeout", type=_positive_float,
                        default=None, metavar="SECONDS",
                        help="give up on --wait after this long")

    jobs = sub.add_parser(
        "jobs", parents=[obs_parent, service_parent],
        help="list the daemon's jobs")
    jobs.add_argument("--state", default=None,
                      choices=("queued", "running", "done", "failed",
                               "cancelled"),
                      help="show only jobs in this state")

    tail = sub.add_parser(
        "tail", parents=[obs_parent, service_parent],
        help="stream job lifecycle events from the daemon")
    tail.add_argument("--job", default=None, metavar="ID",
                      help="follow one job until it finishes "
                           "(default: all jobs, until Ctrl-C)")

    cancel = sub.add_parser(
        "cancel", parents=[obs_parent, service_parent],
        help="cancel a queued job (running jobs finish their "
             "current attempt, then land in 'cancelled')")
    cancel.add_argument("job", metavar="ID")

    top = sub.add_parser(
        "top", parents=[obs_parent, service_parent],
        help="live fleet view: queue depth, in-flight jobs, cache "
             "hit rate, points/sec and per-phase latency percentiles")
    top.add_argument("--interval", type=_positive_float, default=2.0,
                     metavar="SECONDS",
                     help="refresh interval (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="print a single frame and exit (scripting)")
    return parser


def _cmd_benchmarks() -> int:
    from repro.workloads.spec import SPEC_INT_2000, build_benchmark

    print(f"{'benchmark':10} {'blocks':>7} {'static insns':>13} "
          f"{'code KB':>8} {'data KB':>8}")
    for name, config in SPEC_INT_2000.items():
        program = build_benchmark(name)
        print(f"{name:10} {program.num_blocks:>7} "
              f"{program.static_instruction_count:>13} "
              f"{config.code_footprint_kb:>8} "
              f"{config.working_set_kb:>8}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.config import baseline_config
    from repro.core.framework import (run_execution_driven,
                                      run_statistical_simulation)
    from repro.core.metrics import absolute_error
    from repro.frontend.warming import run_program_with_warmup
    from repro.workloads.spec import build_benchmark

    config = baseline_config()
    warm, trace = run_program_with_warmup(
        build_benchmark(args.benchmark), warmup=args.warmup,
        n_instructions=args.instructions)
    reference, power = run_execution_driven(trace, config,
                                            warmup_trace=warm)
    report = run_statistical_simulation(
        trace, config, order=args.order,
        reduction_factor=args.reduction_factor, seed=args.seed,
        warmup_trace=warm)
    print(f"execution-driven: IPC {reference.ipc:.3f}  "
          f"EPC {power.total:.1f} W")
    print(f"statistical:      IPC {report.ipc:.3f}  "
          f"EPC {report.epc:.1f} W  "
          f"({len(report.synthetic_trace):,} synthetic instructions, "
          f"{report.profile.num_nodes} SFG nodes)")
    print(f"IPC error {absolute_error(report.ipc, reference.ipc) * 100:.1f}%  "
          f"EPC error "
          f"{absolute_error(report.epc, power.total) * 100:.1f}%")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.config import baseline_config
    from repro.core.profiler import profile_trace
    from repro.core.serialization import save_profile
    from repro.frontend.warming import run_program_with_warmup
    from repro.workloads.spec import build_benchmark

    config = baseline_config()
    warm, trace = run_program_with_warmup(
        build_benchmark(args.benchmark), warmup=args.warmup,
        n_instructions=args.instructions)
    profile = profile_trace(trace, config, order=args.order,
                            branch_mode=args.branch_mode,
                            warmup_trace=warm)
    save_profile(profile, args.output)
    print(f"profiled {profile.trace_instructions:,} instructions into "
          f"{profile.num_nodes} order-{profile.order} SFG nodes "
          f"-> {args.output}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_profile
    from repro.core.synthesis import generate_synthetic_trace

    profile = load_profile(args.profile)
    columnar = None
    if args.vector:
        from repro.core.columnar import generate_columnar_trace

        columnar = generate_columnar_trace(
            profile, args.reduction_factor, seed=args.seed)
        summary = columnar.summary()
    else:
        synthetic = generate_synthetic_trace(
            profile, args.reduction_factor, seed=args.seed)
        summary = synthetic.summary()
    mode = " [vector]" if args.vector else ""
    print(f"synthetic trace: {summary['instructions']:,} instructions "
          f"(R = {args.reduction_factor:g}){mode}")
    for key in ("load_fraction", "branch_fraction", "il1_miss_rate",
                "dl1_miss_rate", "misprediction_rate"):
        print(f"  {key}: {summary[key]:.4f}")
    if args.simulate:
        if columnar is not None:
            from repro.core.framework import simulate_columnar_trace

            result, power = simulate_columnar_trace(columnar,
                                                    profile.config)
        else:
            from repro.core.framework import simulate_synthetic_trace

            result, power = simulate_synthetic_trace(synthetic,
                                                     profile.config)
        print(f"  simulated: IPC {result.ipc:.3f}  "
              f"EPC {power.total:.1f} W")
    return 0


#: Exit status for a run cut short by Ctrl-C (128 + SIGINT), distinct
#: from 1 (error) and 2 (bad arguments) so scripts can tell an
#: interrupted sweep — whose partial report and quarantine manifest
#: were still written — from a failed one.
EXIT_INTERRUPTED = 130

#: Sentinel distinguishing "--chaos not given" (consult the
#: environment) from "--chaos explicitly parsed" (including errors).
_NO_CHAOS = object()


def _parse_chaos_arg(args: argparse.Namespace):
    """Parse ``--chaos`` up front, before any expensive work.

    Returns the parsed :class:`~repro.faults.ChaosPlan`, or the
    ``_NO_CHAOS`` sentinel when the flag was absent, or ``None`` after
    reporting a spec error (caller exits 2).
    """
    spec = getattr(args, "chaos", None)
    if not spec:
        return _NO_CHAOS
    from repro.errors import ChaosSpecError
    from repro.faults import ChaosPlan

    try:
        return ChaosPlan.parse(spec)
    except ChaosSpecError as exc:
        obs.error(f"--chaos: {exc}", event="cli_error")
        return None


def _health_policy(deadline):
    """The sweep's health policy: REPRO_HEALTH from the environment,
    with ``--deadline`` (when given) overriding the spec's deadline.

    Returns the :class:`~repro.health.HealthPolicy`, or ``None`` after
    reporting a bad REPRO_HEALTH spec (caller exits 2).
    """
    from repro.errors import HealthSpecError
    from repro.health import HealthPolicy

    try:
        policy = HealthPolicy.from_env()
    except HealthSpecError as exc:
        obs.error(f"REPRO_HEALTH: {exc}", event="cli_error")
        return None
    if deadline is not None:
        policy = policy.with_deadline(deadline)
    return policy


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.common import DEFAULT_SCALE, QUICK_SCALE
    from repro.runner import RunnerPolicy, TaskRunner
    from repro.workloads.spec import benchmark_names

    chaos = _parse_chaos_arg(args)
    if chaos is None:
        return 2
    scale = QUICK_SCALE if args.scale == "quick" else DEFAULT_SCALE
    if args.benchmarks:
        chosen = tuple(name.strip()
                       for name in args.benchmarks.split(",")
                       if name.strip())
        unknown = sorted(set(chosen) - set(benchmark_names()))
        if unknown:
            obs.error(f"unknown benchmark(s): {', '.join(unknown)}; "
                      f"run 'repro benchmarks' for the suite",
                      event="cli_error")
            return 2
        scale = scale.with_benchmarks(chosen)
    if args.resume and not args.run_dir:
        obs.error("--resume requires --run-dir (there is nothing "
                  "to resume from without a checkpoint directory)",
                  event="cli_error")
        return 2

    runner = None
    if args.name in RUNNER_AWARE_EXPERIMENTS:
        runner_kwargs = {}
        if chaos is not _NO_CHAOS:
            runner_kwargs["fault_plan"] = chaos
        runner = TaskRunner(
            policy=RunnerPolicy(timeout=args.timeout,
                                max_retries=args.retries),
            run_dir=args.run_dir,
            resume=args.resume,
            **runner_kwargs,
        )
    elif args.run_dir or args.timeout is not None or args.chaos:
        obs.info(f"note: experiment {args.name!r} does not run through "
                 f"the fault-tolerant runner; --run-dir/--resume/"
                 f"--timeout/--chaos are ignored")

    print(_run_experiment(args.name, scale, runner=runner))
    if runner is not None and runner.last_report is not None:
        summary = runner.last_report.summary()
        if args.run_dir:
            obs.info(f"checkpoints: {args.run_dir} ({summary})",
                     event="checkpoint_summary",
                     run_dir=str(args.run_dir))
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.dse import SupervisorPolicy, SweepSpec, \
        reduced_sec46_spec, run_dse_bench, run_study, write_bench
    from repro.experiments.common import DEFAULT_SCALE, QUICK_SCALE
    from repro.runner import RunnerPolicy
    from repro.workloads.spec import benchmark_names

    if args.benchmark not in benchmark_names():
        obs.error(f"unknown benchmark {args.benchmark!r}; run "
                  f"'repro benchmarks' for the suite", event="cli_error")
        return 2
    if args.resume and not args.cache_dir:
        obs.error("--resume requires --cache-dir (the cache is the "
                  "sweep's resume state)", event="cli_error")
        return 2
    chaos = _parse_chaos_arg(args)
    if chaos is None:
        return 2

    spec = (SweepSpec.from_file(args.sweep) if args.sweep
            else reduced_sec46_spec())
    scale = QUICK_SCALE if args.scale == "quick" else DEFAULT_SCALE
    if args.reduction_factor is not None:
        scale = replace(scale, reduction_factor=args.reduction_factor)
    seeds = None
    if args.seeds:
        try:
            seeds = tuple(int(part) for part in args.seeds.split(",")
                          if part.strip())
        except ValueError:
            obs.error(f"--seeds must be comma-separated integers, "
                      f"got {args.seeds!r}", event="cli_error")
            return 2
        if not seeds:
            obs.error("--seeds must name at least one seed",
                      event="cli_error")
            return 2
    log = obs.info

    if args.bench:
        payload = run_dse_bench(spec, args.benchmark, scale,
                                jobs=args.jobs,
                                cache_root=args.cache_dir,
                                seeds=seeds, log=log)
        write_bench(payload, args.bench)
        print(f"{payload['grid_points']} points x "
              f"{len(payload['seeds'])} seeds on {payload['benchmark']}: "
              f"serial {payload['serial_seconds']:.2f}s, "
              f"jobs={payload['jobs']} "
              f"{payload['parallel_seconds']:.2f}s "
              f"({payload['parallel_speedup']:.2f}x), metrics identical: "
              f"{payload['metrics_identical']}")
        print(f"warm-cache re-run: {payload['warm_rerun_seconds']:.2f}s, "
              f"skipped {payload['warm_rerun_skipped']} of "
              f"{payload['evaluations']} evaluations "
              f"({payload['warm_rerun_skipped_fraction'] * 100:.0f}%)")
        print(f"benchmark written to {args.bench}")
        return 0

    study_kwargs = {}
    if chaos is not _NO_CHAOS:
        study_kwargs["fault_plan"] = chaos
    health = _health_policy(args.deadline)
    if health is None:
        return 2
    study_kwargs["health"] = health
    study = run_study(
        spec, args.benchmark, scale, jobs=args.jobs,
        cache_dir=args.cache_dir,
        policy=RunnerPolicy(timeout=args.timeout,
                            max_retries=args.retries),
        verify=not args.no_verify, verify_margin=args.verify_margin,
        seeds=seeds,
        supervisor_policy=SupervisorPolicy(
            max_point_retries=args.max_point_retries),
        quarantine_path=args.quarantine,
        log=log, vector=args.vector, **study_kwargs)
    print(study.render(margin=args.verify_margin))
    if study.sweep.interrupted:
        obs.warn(
            f"sweep interrupted: {study.sweep.unstarted} "
            f"evaluation(s) never started; the report above covers "
            f"only finished work"
            + (f"; quarantine manifest: {args.quarantine}"
               if args.quarantine else ""),
            event="sweep_interrupted_summary",
            unstarted=study.sweep.unstarted)
        return EXIT_INTERRUPTED
    row = study.to_row()
    if row["quarantined"]:
        obs.warn(
            f"{row['quarantined']} evaluation(s) quarantined as "
            f"poison points"
            + (f"; manifest: {args.quarantine}" if args.quarantine
               else " (pass --quarantine PATH to keep the manifest)"),
            event="quarantine_summary",
            quarantined=row["quarantined"])
    if not args.no_verify and row["ss_optimal"] is not None:
        verdict = ("is the verified optimum" if row["found_optimal"]
                   else f"is {row['edp_gap'] * 100:.2f}% above the "
                        f"verified optimum "
                        f"{row['eds_optimal_in_region']}")
        print(f"\nSS optimum {row['ss_optimal']} {verdict} "
              f"({row['candidates_verified']} candidate(s) re-checked "
              f"execution-driven)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (append_trajectory, check_regression,
                             run_hotpath_bench, validate_payload,
                             write_bench)
    from repro.workloads.spec import benchmark_names

    if args.benchmark not in benchmark_names():
        obs.error(f"unknown benchmark {args.benchmark!r}; run "
                  f"'repro benchmarks' for the suite", event="cli_error")
        return 2

    payload = run_hotpath_bench(benchmark=args.benchmark,
                                quick=not args.full, log=obs.info)
    write_bench(payload, args.output)
    if not args.no_trajectory:
        kwargs = ({"path": Path(args.trajectory)}
                  if args.trajectory else {})
        trajectory_path = append_trajectory(payload, **kwargs)
        print(f"trajectory appended to {trajectory_path}")
    speedups = payload["speedups"]
    print(f"{args.benchmark}: profile {speedups['profile']:.2f}x, "
          f"synthesis {speedups['synthesis']:.2f}x (R=1000) / "
          f"{speedups['synthesis_low_r']:.2f}x (low R), "
          f"pipeline {speedups['pipeline']:.2f}x; "
          f"draw-stable: {payload['draw_stable']}")
    vector = payload["phases"]["vector"]
    print(f"columnar: end-to-end {speedups['vector']:.2f}x, "
          f"synthesis-only {speedups['vector_synthesis']:.2f}x; "
          f"IPC scalar {vector['ipc_scalar']:.3f} vs vector "
          f"{vector['ipc_vector']:.3f} "
          f"({vector['ipc_relative_error'] * 100:.1f}% apart, "
          f"different draw streams)")
    print(f"benchmark written to {args.output}")

    report = obs.error if args.check else obs.warn
    problems = validate_payload(payload)
    for problem in problems:
        report(f"schema: {problem}", event="bench_schema")
    failures = []
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failures = check_regression(payload, baseline,
                                    tolerance=args.tolerance)
        for failure in failures:
            report(f"regression: {failure}", event="bench_regression")
        if not failures:
            print(f"no regression against {args.baseline} "
                  f"(tolerance {args.tolerance:.0%})")
    if args.check and (problems or failures):
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz import FuzzPolicy, replay_corpus, run_fuzz

    chaos = _parse_chaos_arg(args)
    if chaos is None:
        return 2

    if args.replay:
        if not args.corpus:
            obs.error("--replay requires --corpus (the directory of "
                      "entries to replay)", event="cli_error")
            return 2
        results = replay_corpus(args.corpus)
        failures = [result for result in results if not result.passed]
        for result in results:
            status = "ok" if result.passed else "REGRESSED"
            print(f"{result.case_id} [{result.kind}]: {status}"
                  + (f" ({result.detail})" if result.detail else ""))
        print(f"{len(results)} corpus entr"
              f"{'y' if len(results) == 1 else 'ies'} replayed, "
              f"{len(failures)} regressed")
        return 1 if failures else 0

    policy = FuzzPolicy(
        cases=args.cases,
        seed=args.seed,
        timeout=args.timeout,
        retries=args.retries,
        corpus_dir=args.corpus,
        max_trials=args.max_shrink_trials,
        minimize=not args.no_minimize,
        vector=args.vector,
    )
    kwargs = {}
    if chaos is not _NO_CHAOS:
        kwargs["chaos"] = chaos
    report = run_fuzz(policy, log=obs.debug, **kwargs)

    for verdict in report.verdicts:
        if verdict.status == "ok":
            continue
        line = f"{verdict.case_id}: {verdict.status} — {verdict.detail}"
        if verdict.minimization:
            line += (f" (minimized "
                     f"{verdict.minimization['original_size']} -> "
                     f"{verdict.minimization['minimized_size']} static "
                     f"instructions)")
        if verdict.corpus_path:
            line += f" [{verdict.corpus_path}]"
        print(line)
    print(report.summary())

    if args.stats_only:
        payload = report.stats_payload()
        stats_path = Path(args.stats_only)
        if stats_path.parent != Path(""):
            stats_path.parent.mkdir(parents=True, exist_ok=True)
        stats_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"stats written to {args.stats_only}")
    return 0 if report.passed else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.analysis import (hottest_contexts,
                                     reduced_connectivity,
                                     transition_entropy)
    from repro.core.reduction import reduce_flow_graph
    from repro.core.serialization import load_profile

    profile = load_profile(args.profile)
    sfg = profile.sfg
    print(f"{profile.name}: order-{profile.order} SFG, "
          f"{sfg.num_nodes} nodes, "
          f"{sfg.total_block_executions:,} block executions")
    print(f"transition entropy: {transition_entropy(sfg):.3f} bits")
    print(f"\nhottest contexts (top {args.top}):")
    for context, count, share in hottest_contexts(sfg, top=args.top):
        print(f"  {context}: {count} ({share * 100:.1f}%)")
    if args.reduction_factor is not None:
        reduced = reduce_flow_graph(sfg, args.reduction_factor)
        stats = reduced_connectivity(sfg, reduced)
        print(f"\nreduced at R={args.reduction_factor:g}: "
              f"{reduced.num_nodes} nodes, "
              f"{stats['components']} weakly connected components, "
              f"largest holds "
              f"{stats['largest_component_mass'] * 100:.1f}% of mass")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_profile
    from repro.core.synthesis import generate_synthetic_trace
    from repro.core.validation import drift_report, format_drift_report

    profile = load_profile(args.profile)
    synthetic = generate_synthetic_trace(
        profile, args.reduction_factor, seed=args.seed)
    report = drift_report(profile, synthetic, threshold=args.threshold)
    print(f"{profile.name}: profile expectation vs synthetic trace "
          f"(R = {args.reduction_factor:g}, seed {args.seed})")
    print(format_drift_report(report))
    flagged = sum(1 for entry in report.values() if "flagged" in entry)
    print(f"\n{flagged} characteristic(s) drift beyond "
          f"{args.threshold:g}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    # Dual personality: a directory argument means "stitch this run's
    # telemetry"; anything else is the original workload recorder.
    if Path(args.benchmark).is_dir():
        return _cmd_trace_stitch(args)

    from repro.frontend.functional import run_program
    from repro.frontend.tracefile import save_trace
    from repro.workloads.spec import build_benchmark

    if not args.output:
        obs.error("recording a workload trace needs -o/--output",
                  event="cli_error")
        return 2
    trace = run_program(build_benchmark(args.benchmark),
                        n_instructions=args.instructions,
                        warmup=args.warmup)
    save_trace(trace, args.output)
    print(f"recorded {len(trace):,} instructions of {args.benchmark} "
          f"-> {args.output}")
    return 0


def _cmd_trace_stitch(args: argparse.Namespace) -> int:
    import json

    from repro.obs.exposition import (aggregate_run_dir,
                                      render_openmetrics)
    from repro.obs.traceview import (build_tree, load_spans,
                                     to_chrome_trace)

    run_dir = Path(args.benchmark)
    spans = load_spans(run_dir)
    if not spans:
        obs.error(f"no trace-<pid>.jsonl files under {run_dir} "
                  f"(run with --trace-dir to record telemetry)",
                  event="cli_error")
        return 2
    tree = build_tree(spans, trace_id=args.trace_id)
    print(tree.render())
    if args.export:
        export_path = Path(args.export)
        export_path.parent.mkdir(parents=True, exist_ok=True)
        export_path.write_text(
            json.dumps(to_chrome_trace(tree), sort_keys=True),
            encoding="utf-8")
        print(f"perfetto trace written to {export_path} "
              f"(open at https://ui.perfetto.dev)")
    if args.openmetrics:
        snapshot = aggregate_run_dir(run_dir)
        metrics_path = Path(args.openmetrics)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(render_openmetrics(snapshot),
                                encoding="utf-8")
        print(f"openmetrics written to {metrics_path} "
              f"({snapshot.get('processes', 1)} process(es) "
              f"aggregated)")
    return 0 if tree.single_rooted() and tree.acyclic() else 1


#: Experiments whose ``run`` takes a benchmark name first.
_PER_BENCHMARK_EXPERIMENTS = ("sec41", "ablation-reduction")


def _run_experiment(name: str, scale, runner=None) -> str:
    module = importlib.import_module(
        f"repro.experiments.{EXPERIMENTS[name]}")
    if name == "sec46":
        rows = module.run_suite(benchmarks=scale.benchmarks[:3],
                                scale=scale, runner=runner)
    elif name in _PER_BENCHMARK_EXPERIMENTS:
        rows = module.run(scale.benchmarks[0], scale)
    elif name in RUNNER_AWARE_EXPERIMENTS:
        rows = module.run(scale, runner=runner)
    else:
        rows = module.run(scale)
    return module.format_rows(rows)


def _cmd_report(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.common import DEFAULT_SCALE, QUICK_SCALE

    scale = QUICK_SCALE if args.scale == "quick" else DEFAULT_SCALE
    sections = []
    for name in sorted(EXPERIMENTS):
        started = time.perf_counter()
        table = _run_experiment(name, scale)
        elapsed = time.perf_counter() - started
        obs.info(f"{name}: done in {elapsed:.1f}s",
                 event="experiment_done", experiment=name,
                 elapsed=round(elapsed, 3))
        sections.append(f"## {name}\n\n```\n{table}\n```\n")
    body = (f"# repro experiment report ({args.scale} scale)\n\n"
            + "\n".join(sections))
    with open(args.output, "w") as handle:
        handle.write(body)
    print(f"report written to {args.output}")
    return 0


def _service_socket(args: argparse.Namespace) -> Optional[Path]:
    """The daemon socket the service commands talk to, or None after
    reporting the missing flag (caller exits 2)."""
    if getattr(args, "socket", None):
        return Path(args.socket)
    if getattr(args, "state_dir", None):
        from repro.service import default_socket_path

        return default_socket_path(args.state_dir)
    obs.error("service commands need --state-dir (or --socket) to "
              "find the daemon", event="cli_error")
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig
    from repro.service.daemon import serve as serve_daemon

    if not args.state_dir:
        obs.error("serve needs --state-dir for its durable state",
                  event="cli_error")
        return 2
    chaos = _parse_chaos_arg(args)
    if chaos is None:
        return 2
    config = ServiceConfig(
        state_dir=Path(args.state_dir),
        socket_path=Path(args.socket) if args.socket else None,
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        max_client_inflight=args.client_cap,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat,
        checkpoint_every=args.checkpoint_every,
        drain_deadline=args.drain_deadline,
    )
    serve_kwargs = {}
    if chaos is not _NO_CHAOS:
        serve_kwargs["fault_plan"] = chaos
    return serve_daemon(config, **serve_kwargs)


def _submit_payload(args: argparse.Namespace) -> Optional[dict]:
    if args.sleep is not None:
        return {"kind": "sleep", "seconds": args.sleep}
    payload = {
        "kind": "sweep",
        "benchmark": args.benchmark,
        "scale": args.scale,
        "jobs": args.sweep_jobs,
        "cache_dir": args.cache_dir,
        "spec": None,
    }
    if args.sweep:
        from repro.dse import SweepSpec

        payload["spec"] = SweepSpec.from_file(args.sweep).to_dict()
    if args.seeds:
        try:
            seeds = [int(part) for part in args.seeds.split(",")
                     if part.strip()]
        except ValueError:
            obs.error(f"--seeds must be comma-separated integers, "
                      f"got {args.seeds!r}", event="cli_error")
            return None
        payload["seeds"] = seeds
    if getattr(args, "deadline", None) is not None:
        payload["deadline"] = args.deadline
    return payload


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient
    from repro.workloads.spec import benchmark_names

    socket_path = _service_socket(args)
    if socket_path is None:
        return 2
    if args.sleep is None and args.benchmark not in benchmark_names():
        obs.error(f"unknown benchmark {args.benchmark!r}; run "
                  f"'repro benchmarks' for the suite",
                  event="cli_error")
        return 2
    payload = _submit_payload(args)
    if payload is None:
        return 2
    client = ServiceClient(socket_path, client_id=args.client)
    response = client.submit(payload)
    job = response["job"]
    print(f"job {job['job_id']} "
          f"{'submitted' if response.get('created') else 'already known'} "
          f"({job['state']})")
    if not args.wait:
        return 0
    final = client.wait(job["job_id"], timeout=args.timeout)
    print(f"job {final['job_id']} finished: {final['state']}"
          + (f" ({final['error']})" if final.get("error") else ""))
    return 0 if final["state"] == "done" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    socket_path = _service_socket(args)
    if socket_path is None:
        return 2
    listing = ServiceClient(socket_path).jobs(state=args.state)
    if not listing:
        print("no jobs")
        return 0
    print(f"{'job':12} {'state':10} {'kind':6} {'client':14} "
          f"{'attempts':>8} {'requeues':>8}")
    for job in listing:
        print(f"{job['job_id']:12} {job['state']:10} "
              f"{(job.get('kind') or '-'):6} "
              f"{(job.get('client') or '-'):14} "
              f"{job.get('attempts', 0):>8} "
              f"{job.get('requeues', 0):>8}"
              + (f"  {job['error']}" if job.get("error") else ""))
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    socket_path = _service_socket(args)
    if socket_path is None:
        return 2
    for event in ServiceClient(socket_path).tail(job_id=args.job):
        name = event.get("event", "?")
        job = event.get("job", "-")
        message = event.get("msg") or ""
        print(f"{name:26} {job:12} {message}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    socket_path = _service_socket(args)
    if socket_path is None:
        return 2
    response = ServiceClient(socket_path).cancel(args.job)
    print(f"job {args.job}: {response['disposition']}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, run_top

    socket_path = _service_socket(args)
    if socket_path is None:
        return 2
    try:
        return run_top(ServiceClient(socket_path),
                       interval=args.interval, once=args.once)
    except KeyboardInterrupt:
        return 0


#: Commands whose work units are profiled individually by the runner;
#: the CLI-level profile wrapper skips them so one thread never hosts
#: two active profilers.
_UNIT_PROFILED_COMMANDS = frozenset({"experiment", "dse"})


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "benchmarks":
        return _cmd_benchmarks()
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "synthesize":
        return _cmd_synthesize(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "dse":
        return _cmd_dse(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "tail":
        return _cmd_tail(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    if args.command == "top":
        return _cmd_top(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _metrics_path(args: argparse.Namespace) -> Optional[Path]:
    """Where this run's metrics.json goes: an explicit ``--metrics``
    wins; with ``--log-json`` the snapshot lands next to the event log
    (the acceptance contract: a log always comes with its metrics)."""
    explicit = getattr(args, "metrics", None)
    if explicit:
        return Path(explicit)
    log_json = getattr(args, "log_json", None)
    if log_json:
        return Path(log_json).parent / "metrics.json"
    return None


def _traced(fn, trace_span, command: str) -> int:
    with trace_span("cli", command=command):
        return fn()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    quiet = getattr(args, "quiet", False)
    verbose = getattr(args, "verbose", False)
    console_level = ("warning" if quiet
                     else "debug" if verbose else "info")
    obs.reset_registry()
    obs.configure(
        console_level=console_level,
        log_json=getattr(args, "log_json", None),
        profile=getattr(args, "obs_profile", None),
        profile_dir=getattr(args, "obs_profile_dir", None),
    )
    from repro.obs import flightrec, telemetry
    from repro.obs.tracing import trace_span

    telemetry.reset()
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir:
        telemetry.start(trace_dir=Path(trace_dir))
        flightrec.install(Path(trace_dir))
    obs.emit("run_start", level="debug", command=args.command,
             argv=list(argv) if argv is not None else sys.argv[1:])
    status = 1
    try:
        fn = lambda: _dispatch(args)  # noqa: E731
        if args.command not in _UNIT_PROFILED_COMMANDS:
            fn = obs.maybe_profiled(fn, f"cli.{args.command}")
        if trace_dir:
            # The root span every other process's spans stitch under.
            inner = fn
            fn = lambda: _traced(inner, trace_span,  # noqa: E731
                                 args.command)
        status = fn()
        return status
    except ReproError as exc:
        obs.error(str(exc), event="cli_error",
                  error=type(exc).__name__)
        return 1
    except KeyboardInterrupt:
        # An interrupt not already converted into a partial report by
        # a lower layer (e.g. Ctrl-C during profiling) still exits
        # cleanly with the distinct status instead of a raw traceback.
        obs.warn("interrupted", event="interrupted")
        status = EXIT_INTERRUPTED
        return status
    finally:
        obs.emit("run_end", level="debug", command=args.command,
                 status=status)
        metrics_path = _metrics_path(args)
        if metrics_path is not None:
            obs.get_registry().write(metrics_path)
        if trace_dir:
            telemetry.flush_metrics(force=True)
            flightrec.uninstall()
            telemetry.reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
