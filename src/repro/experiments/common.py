"""Shared experiment plumbing: scales, prepared workloads, formatting.

The paper simulates 100M-instruction SimPoint samples of SPEC binaries;
our substrate is a pure-Python simulator, so experiments run on scaled
windows (tens of thousands of instructions, see DESIGN.md).  An
:class:`ExperimentScale` bundles the scaling knobs so every experiment
can be run quick (CI-sized) or full (paper-shaped).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from repro.config import MachineConfig, baseline_config
from repro.frontend.trace import Trace
from repro.frontend.warming import run_program_with_warmup
from repro.workloads.spec import benchmark_names, build_benchmark


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs for one experiment run.

    ``warmup`` instructions bring each workload's behaviour and the
    locality structures to steady state (the paper skips 1B
    instructions); ``reference`` instructions form the measurement
    window (the paper's 100M samples); ``reduction_factor`` is the
    synthetic trace reduction factor R; ``seeds`` are the synthesis
    seeds averaged per estimate.
    """

    warmup: int = 40_000
    reference: int = 60_000
    reduction_factor: float = 6.0
    seeds: Tuple[int, ...] = (0, 1, 2)
    benchmarks: Tuple[str, ...] = field(
        default_factory=lambda: tuple(benchmark_names()))

    def with_benchmarks(self, names: Sequence[str]) -> "ExperimentScale":
        return replace(self, benchmarks=tuple(names))


DEFAULT_SCALE = ExperimentScale()

#: A CI-sized scale: one third the window, two seeds, five benchmarks
#: spanning the suite's personality range.
QUICK_SCALE = ExperimentScale(
    warmup=20_000,
    reference=20_000,
    reduction_factor=4.0,
    seeds=(0, 1),
    benchmarks=("bzip2", "eon", "gzip", "parser", "twolf"),
)


def bench_scale() -> ExperimentScale:
    """Scale used by the benchmark harness: QUICK by default, DEFAULT
    when the environment sets ``REPRO_BENCH_SCALE=full``."""
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full":
        return DEFAULT_SCALE
    return QUICK_SCALE


def prepare_benchmark(name: str,
                      scale: ExperimentScale) -> Tuple[Trace, Trace]:
    """Return ``(warmup_trace, reference_trace)`` for one workload."""
    program = build_benchmark(name)
    return run_program_with_warmup(program, warmup=scale.warmup,
                                   n_instructions=scale.reference)


def prepare_suite(scale: ExperimentScale
                  ) -> Dict[str, Tuple[Trace, Trace]]:
    """Prepared (warmup, reference) windows for every scale benchmark."""
    return {name: prepare_benchmark(name, scale)
            for name in scale.benchmarks}


def suite_config() -> MachineConfig:
    """The Table 2 baseline configuration."""
    return baseline_config()


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table for bench output."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def geometric_spread(values: Sequence[float]) -> float:
    """max/min ratio (used to sanity-check IPC spread in tests)."""
    lo, hi = min(values), max(values)
    if lo <= 0:
        raise ValueError("values must be positive")
    return hi / lo


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)
