"""Shared experiment plumbing: scales, prepared workloads, formatting.

The paper simulates 100M-instruction SimPoint samples of SPEC binaries;
our substrate is a pure-Python simulator, so experiments run on scaled
windows (tens of thousands of instructions, see DESIGN.md).  An
:class:`ExperimentScale` bundles the scaling knobs so every experiment
can be run quick (CI-sized) or full (paper-shaped).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig, baseline_config
from repro.obs.tracing import trace_span
from repro.frontend.trace import Trace
from repro.frontend.warming import run_program_with_warmup
from repro.runner import (
    ResultRows,
    TaskRunner,
    WorkUnit,
    report_footer,
)
from repro.workloads.spec import benchmark_names, build_benchmark


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs for one experiment run.

    ``warmup`` instructions bring each workload's behaviour and the
    locality structures to steady state (the paper skips 1B
    instructions); ``reference`` instructions form the measurement
    window (the paper's 100M samples); ``reduction_factor`` is the
    synthetic trace reduction factor R; ``seeds`` are the synthesis
    seeds averaged per estimate.
    """

    warmup: int = 40_000
    reference: int = 60_000
    reduction_factor: float = 6.0
    seeds: Tuple[int, ...] = (0, 1, 2)
    benchmarks: Tuple[str, ...] = field(
        default_factory=lambda: tuple(benchmark_names()))

    def with_benchmarks(self, names: Sequence[str]) -> "ExperimentScale":
        return replace(self, benchmarks=tuple(names))


DEFAULT_SCALE = ExperimentScale()

#: A CI-sized scale: one third the window, two seeds, five benchmarks
#: spanning the suite's personality range.
QUICK_SCALE = ExperimentScale(
    warmup=20_000,
    reference=20_000,
    reduction_factor=4.0,
    seeds=(0, 1),
    benchmarks=("bzip2", "eon", "gzip", "parser", "twolf"),
)


def bench_scale() -> ExperimentScale:
    """Scale used by the benchmark harness: QUICK by default, DEFAULT
    when the environment sets ``REPRO_BENCH_SCALE=full``."""
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full":
        return DEFAULT_SCALE
    return QUICK_SCALE


def prepare_benchmark(name: str,
                      scale: ExperimentScale) -> Tuple[Trace, Trace]:
    """Return ``(warmup_trace, reference_trace)`` for one workload."""
    with trace_span("prepare", bench=name):
        program = build_benchmark(name)
        return run_program_with_warmup(program, warmup=scale.warmup,
                                       n_instructions=scale.reference)


class PreparedSuite(Dict[str, Tuple[Trace, Trace]]):
    """Benchmark name -> (warmup, reference) windows, plus the
    :class:`~repro.runner.RunReport` of the preparation pass."""

    report = None


def prepare_suite(scale: ExperimentScale,
                  runner: Optional[TaskRunner] = None) -> PreparedSuite:
    """Prepared (warmup, reference) windows for every scale benchmark.

    Preparation runs through the fault-tolerant runner (without
    checkpointing — traces are not persisted): a workload that fails to
    build or execute is dropped from the suite with its failure
    recorded on ``suite.report`` instead of aborting every experiment
    that shares the suite.
    """
    runner = runner if runner is not None else TaskRunner()
    units = [WorkUnit(experiment="prepare", benchmark=name)
             for name in scale.benchmarks]
    report = runner.run(
        units, lambda unit: prepare_benchmark(unit.benchmark, scale))
    suite = PreparedSuite()
    for outcome in report.outcomes:
        if outcome.status != "failed" and outcome.result is not None:
            suite[outcome.benchmark] = outcome.result
    suite.report = report
    return suite


def suite_config() -> MachineConfig:
    """The Table 2 baseline configuration."""
    return baseline_config()


def run_per_benchmark(experiment: str,
                      scale: ExperimentScale,
                      unit_fn: Callable[[str, ExperimentScale], object],
                      runner: Optional[TaskRunner] = None,
                      benchmarks: Optional[Sequence[str]] = None
                      ) -> ResultRows:
    """Execute ``unit_fn(benchmark, scale)`` per benchmark through the
    fault-tolerant runner.

    Each benchmark is one :class:`~repro.runner.WorkUnit`: an exception
    in one benchmark no longer aborts the suite — the unit is retried
    (when retryable), then recorded as a structured failure and dropped
    from the returned rows, with the :class:`~repro.runner.RunReport`
    attached as ``rows.report`` so renderers can surface warnings and
    the ``N ok / M failed / K skipped`` summary.  Pass a *runner* with
    a run directory to get checkpoint/resume.

    ``unit_fn`` may return one row dict or a list of row dicts; the
    value must be JSON-serializable for checkpoints to round-trip.
    """
    runner = runner if runner is not None else TaskRunner()
    names = tuple(benchmarks) if benchmarks is not None \
        else scale.benchmarks
    units = [WorkUnit(experiment=experiment, benchmark=name)
             for name in names]
    report = runner.run(
        units, lambda unit: unit_fn(unit.benchmark, scale),
        manifest={"experiment": experiment,
                  "benchmarks": list(names),
                  "warmup": scale.warmup,
                  "reference": scale.reference,
                  "reduction_factor": scale.reduction_factor,
                  "seeds": list(scale.seeds)})
    rows: List[Dict] = []
    for result in report.results:
        if isinstance(result, list):
            rows.extend(result)
        elif result is not None:
            rows.append(result)
    return ResultRows(rows, report=report)


def with_report_footer(table: str, rows: Sequence[Dict]) -> str:
    """Append degradation warnings / run summary to a rendered table."""
    footer = report_footer(rows)
    return table + "\n" + footer if footer else table


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table for bench output."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def geometric_spread(values: Sequence[float]) -> float:
    """max/min ratio (used to sanity-check IPC spread in tests)."""
    lo, hi = min(values), max(values)
    if lo <= 0:
        raise ValueError("values must be positive")
    return hi / lo


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)
