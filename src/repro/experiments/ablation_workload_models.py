"""Ablation: how much workload-model structure does accuracy need?

The paper positions the SFG against a spectrum of statistical workload
models (section 5).  This experiment runs the whole spectrum on the
same synthetic-trace simulator:

1. **independent** — all characteristics independent (refs [5,8,9,10]);
2. **HLS** — 100 random blocks, global mix (Oskin et al.);
3. **size-correlated** — characteristics keyed by basic block size
   (Nussbaum & Smith);
4. **SFG k=0** — per-block statistics, no control-flow correlation;
5. **SFG k=1** — the paper's model.

Expected shape: IPC error decreases as workload structure increases,
with the step to per-block/per-context modeling (SFG) the largest —
the paper's core argument.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.hls import generate_hls_trace, hls_profile
from repro.baselines.related import IndependentModel, SizeCorrelatedModel
from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
    simulate_synthetic_trace,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_suite,
    suite_config,
)

MODELS = ("independent", "hls", "size_correlated", "sfg_k0", "sfg_k1")


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Dict]:
    """One row per benchmark: IPC error per workload model."""
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        reference, _ = run_execution_driven(trace, config,
                                            warmup_trace=warm)
        length = int(len(trace) / scale.reduction_factor)
        errors: Dict[str, float] = {}

        def record(key: str, ipcs: List[float]) -> None:
            errors[key] = absolute_error(mean(ipcs), reference.ipc)

        independent = IndependentModel(trace, config)
        record("independent", [
            simulate_synthetic_trace(independent.generate(length, seed),
                                     config)[0].ipc
            for seed in scale.seeds])

        profile = hls_profile(trace, config)
        record("hls", [
            simulate_synthetic_trace(
                generate_hls_trace(profile, length, seed), config)[0].ipc
            for seed in scale.seeds])

        size_model = SizeCorrelatedModel(trace, config)
        record("size_correlated", [
            simulate_synthetic_trace(size_model.generate(length, seed),
                                     config)[0].ipc
            for seed in scale.seeds])

        for order, key in ((0, "sfg_k0"), (1, "sfg_k1")):
            sfg_profile = profile_trace(trace, config, order=order,
                                        branch_mode="delayed",
                                        warmup_trace=warm)
            record(key, [
                run_statistical_simulation(
                    trace, config, profile=sfg_profile,
                    reduction_factor=scale.reduction_factor,
                    seed=seed).ipc
                for seed in scale.seeds])

        rows.append({"benchmark": name, "eds_ipc": reference.ipc,
                     "errors": errors})
    return rows


def average_errors(rows: List[Dict]) -> Dict[str, float]:
    return {model: mean([row["errors"][model] for row in rows])
            for model in MODELS}


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark"] + list(MODELS),
        [[row["benchmark"]] + [f"{row['errors'][m] * 100:.1f}%"
                               for m in MODELS] for row in rows],
    )
    averages = average_errors(rows)
    footer = "average: " + "  ".join(
        f"{model} {value * 100:.1f}%" for model, value in averages.items())
    return table + "\n" + footer


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
