"""Figure 6 (and section 4.2.3) — absolute accuracy of statistical
simulation for IPC, EPC and EDP on the baseline configuration.

Reproduction target: per-benchmark IPC bars for statistical simulation
track execution-driven simulation with a modest average error (paper:
6.6% IPC, 4% EPC, 11% EDP; worst case parser at 14.2% IPC).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.power.wattch import energy_delay_product
from repro.runner import TaskRunner
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_benchmark,
    run_per_benchmark,
    suite_config,
    with_report_footer,
)


def _measure_benchmark(name: str, scale: ExperimentScale) -> Dict:
    config = suite_config()
    warm, trace = prepare_benchmark(name, scale)
    reference, ref_power = run_execution_driven(trace, config,
                                                warmup_trace=warm)
    profile = profile_trace(trace, config, order=1,
                            branch_mode="delayed", warmup_trace=warm)
    reports = [
        run_statistical_simulation(
            trace, config, profile=profile,
            reduction_factor=scale.reduction_factor, seed=seed)
        for seed in scale.seeds
    ]
    ss_ipc = mean([r.ipc for r in reports])
    ss_epc = mean([r.epc for r in reports])
    eds_edp = energy_delay_product(ref_power.total, reference.ipc)
    ss_edp = energy_delay_product(ss_epc, ss_ipc)
    return {
        "benchmark": name,
        "eds_ipc": reference.ipc,
        "ss_ipc": ss_ipc,
        "ipc_error": absolute_error(ss_ipc, reference.ipc),
        "eds_epc": ref_power.total,
        "ss_epc": ss_epc,
        "epc_error": absolute_error(ss_epc, ref_power.total),
        "eds_edp": eds_edp,
        "ss_edp": ss_edp,
        "edp_error": absolute_error(ss_edp, eds_edp),
    }


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[TaskRunner] = None) -> List[Dict]:
    """One row per benchmark: EDS and SS estimates of IPC/EPC/EDP and
    the corresponding absolute errors."""
    return run_per_benchmark("fig6", scale, _measure_benchmark,
                             runner=runner)


def average_errors(rows: List[Dict]) -> Dict[str, float]:
    return {metric: mean([row[f"{metric}_error"] for row in rows])
            for metric in ("ipc", "epc", "edp")}


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "EDS IPC", "SS IPC", "err",
         "EDS EPC", "SS EPC", "err", "EDP err"],
        [(r["benchmark"], r["eds_ipc"], r["ss_ipc"],
          f"{r['ipc_error'] * 100:.1f}%",
          r["eds_epc"], r["ss_epc"], f"{r['epc_error'] * 100:.1f}%",
          f"{r['edp_error'] * 100:.1f}%") for r in rows],
    )
    averages = average_errors(rows)
    footer = ("average errors: "
              + "  ".join(f"{k.upper()} {v * 100:.1f}%"
                          for k, v in averages.items()))
    return with_report_footer(table + "\n" + footer, rows)


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
