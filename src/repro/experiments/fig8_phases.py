"""Figure 8 — modeling program phases and comparison with SimPoint.

The paper takes long reference streams and compares (i) one statistical
profile over the whole stream, (ii) per-sample profiles whose synthetic
traces are simulated separately and averaged, and (iii) SimPoint
sampling simulated execution-driven.

Reproduction targets: per-sample profiling only slightly improves over
one whole-stream profile, and SimPoint is more accurate than statistical
simulation — at the cost of simulating more instructions and needing no
re-profiling per cache/predictor change (section 4.4's trade-off).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.simpoint import run_simpoint
from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.frontend.trace import Trace, split_intervals
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_suite,
    suite_config,
)

#: Number of sub-samples for the per-sample profiling scenario (the
#: paper uses ten 1B-instruction samples of a 10B stream).
NUM_SAMPLES = 4


def _per_sample_ipc(trace: Trace, warm: Trace, config, scale) -> float:
    """Scenario (ii): profile each sample separately, simulate each
    synthetic trace, combine per-instruction (weighted CPI)."""
    samples = split_intervals(trace, len(trace) // NUM_SAMPLES)
    prefix = list(warm.instructions)
    total_cpi = 0.0
    for sample in samples:
        warm_trace = Trace(name="warm", instructions=list(prefix))
        profile = profile_trace(sample, config, order=1,
                                branch_mode="delayed",
                                warmup_trace=warm_trace)
        cpis = []
        for seed in scale.seeds:
            report = run_statistical_simulation(
                sample, config, profile=profile,
                reduction_factor=scale.reduction_factor, seed=seed)
            cpis.append(report.result.cpi)
        total_cpi += mean(cpis) / len(samples)
        prefix.extend(sample.instructions)
    return 1.0 / total_cpi


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Dict]:
    """One row per benchmark: IPC errors of whole-stream statistical
    simulation, per-sample statistical simulation, and SimPoint."""
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        reference, _ = run_execution_driven(trace, config,
                                            warmup_trace=warm)
        profile = profile_trace(trace, config, order=1,
                                branch_mode="delayed", warmup_trace=warm)
        whole_ipcs = [
            run_statistical_simulation(
                trace, config, profile=profile,
                reduction_factor=scale.reduction_factor, seed=seed).ipc
            for seed in scale.seeds
        ]
        per_sample = _per_sample_ipc(trace, warm, config, scale)
        interval = max(500, len(trace) // 12)
        simpoint = run_simpoint(trace, config, interval=interval,
                                max_k=5, seed=0, warmup_trace=warm)
        rows.append({
            "benchmark": name,
            "eds_ipc": reference.ipc,
            "whole_error": absolute_error(mean(whole_ipcs), reference.ipc),
            "per_sample_error": absolute_error(per_sample, reference.ipc),
            "simpoint_error": absolute_error(simpoint["ipc"],
                                             reference.ipc),
            "simpoint_instructions": simpoint["simulated_instructions"],
        })
    return rows


def average_errors(rows: List[Dict]) -> Dict[str, float]:
    return {
        "whole": mean([r["whole_error"] for r in rows]),
        "per_sample": mean([r["per_sample_error"] for r in rows]),
        "simpoint": mean([r["simpoint_error"] for r in rows]),
    }


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "1 profile", f"{NUM_SAMPLES} profiles", "SimPoint",
         "SimPoint insns"],
        [(r["benchmark"], f"{r['whole_error'] * 100:.1f}%",
          f"{r['per_sample_error'] * 100:.1f}%",
          f"{r['simpoint_error'] * 100:.1f}%",
          r["simpoint_instructions"]) for r in rows],
    )
    averages = average_errors(rows)
    footer = ("average: "
              + "  ".join(f"{k} {v * 100:.1f}%"
                          for k, v in averages.items()))
    return table + "\n" + footer


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
