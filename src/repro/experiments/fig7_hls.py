"""Figure 7 — comparing HLS to SMART-HLS (this paper's framework).

As in the paper's section 4.3, the comparison runs on SimpleScalar's
default configuration (the configuration HLS was calibrated for), not
the Table 2 baseline.  Reproduction target: SMART-HLS is substantially
more accurate than HLS (paper: 1.8% vs 10.1% average IPC error).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.hls import generate_hls_trace, hls_profile
from repro.config import simplescalar_default_config
from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
    simulate_synthetic_trace,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_suite,
)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Dict]:
    """One row per benchmark: IPC error of HLS and of SMART-HLS."""
    config = simplescalar_default_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        reference, _ = run_execution_driven(trace, config,
                                            warmup_trace=warm)
        synthetic_length = int(len(trace) / scale.reduction_factor)

        profile = hls_profile(trace, config)
        hls_ipcs = []
        for seed in scale.seeds:
            synthetic = generate_hls_trace(profile, synthetic_length,
                                           seed=seed)
            result, _ = simulate_synthetic_trace(synthetic, config)
            hls_ipcs.append(result.ipc)

        smart_profile = profile_trace(trace, config, order=1,
                                      branch_mode="delayed",
                                      warmup_trace=warm)
        smart_ipcs = [
            run_statistical_simulation(
                trace, config, profile=smart_profile,
                reduction_factor=scale.reduction_factor, seed=seed).ipc
            for seed in scale.seeds
        ]
        rows.append({
            "benchmark": name,
            "eds_ipc": reference.ipc,
            "hls_error": absolute_error(mean(hls_ipcs), reference.ipc),
            "smart_error": absolute_error(mean(smart_ipcs), reference.ipc),
        })
    return rows


def average_errors(rows: List[Dict]) -> Dict[str, float]:
    return {
        "hls": mean([r["hls_error"] for r in rows]),
        "smart": mean([r["smart_error"] for r in rows]),
    }


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "HLS error", "SMART-HLS error"],
        [(r["benchmark"], f"{r['hls_error'] * 100:.1f}%",
          f"{r['smart_error'] * 100:.1f}%") for r in rows],
    )
    averages = average_errors(rows)
    footer = (f"average: HLS {averages['hls'] * 100:.1f}%  "
              f"SMART-HLS {averages['smart'] * 100:.1f}%")
    return table + "\n" + footer


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
