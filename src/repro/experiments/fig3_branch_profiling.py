"""Figure 3 — branch mispredictions per 1,000 instructions under three
scenarios: (i) execution-driven simulation, (ii) branch profiling with
immediate update, (iii) branch profiling with delayed update.

Reproduction target (paper section 2.1.3): immediate-update profiling
*underestimates* the misprediction rate a pipelined machine sees, while
the delayed-update FIFO closely tracks execution-driven simulation; the
largest discrepancies belong to eon and perlbmk.
"""

from __future__ import annotations

from typing import Dict, List

from repro.branch.profiler import (
    mispredictions_per_kilo_instruction,
    profile_branches_delayed,
    profile_branches_immediate,
)
from repro.branch.unit import BranchPredictorUnit
from repro.core.framework import run_execution_driven
from repro.frontend.warming import warm_locality_structures
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    prepare_suite,
    suite_config,
)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Dict]:
    """One row per benchmark with the three mispredict/1K counts."""
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        eds, _ = run_execution_driven(trace, config, warmup_trace=warm)

        _, unit = warm_locality_structures(warm, config)
        immediate = profile_branches_immediate(trace, unit)
        _, unit = warm_locality_structures(warm, config)
        delayed = profile_branches_delayed(trace, unit,
                                           fifo_size=config.ifq_size)
        n = len(trace)
        rows.append({
            "benchmark": name,
            "execution_driven": eds.mispredictions_per_kilo_instruction,
            "immediate_update": mispredictions_per_kilo_instruction(
                immediate, n),
            "delayed_update": mispredictions_per_kilo_instruction(
                delayed, n),
        })
    return rows


def format_rows(rows: List[Dict]) -> str:
    return format_table(
        ["benchmark", "execution-driven", "immediate update",
         "delayed update"],
        [(r["benchmark"], r["execution_driven"], r["immediate_update"],
          r["delayed_update"]) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
