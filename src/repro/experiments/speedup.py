"""Section 4.1 — simulation speed: how much faster is statistical
simulation?

The paper reports 100x–1,000x speedups for 100M-instruction samples
(and 10,000x–100,000x for 10B), because the synthetic trace is a
factor R shorter and its simulator models no caches or predictors.
Here both simulators are Python, so the wall-clock ratio directly
reflects the work ratio.

The per-design-point cost is measured through exactly the evaluation
function the design-space engine runs (:func:`repro.dse.engine.
evaluate_metrics` with a derived seed), so these numbers predict real
sweep behaviour: profiling is the one-time cost amortized over a
design-space exploration, and every point pays synthesis plus
synthetic-trace simulation.  The report includes the break-even
design-point count after which SS beats repeating EDS per point.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.framework import run_execution_driven
from repro.core.profiler import profile_trace
from repro.core.synthesis import generate_synthetic_trace
from repro.runner import TaskRunner
from repro.dse.engine import derive_point_seed, evaluate_metrics
from repro.dse.space import config_hash
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_benchmark,
    run_per_benchmark,
    suite_config,
    with_report_footer,
)


def _measure_benchmark(name: str, scale: ExperimentScale) -> Dict:
    config = suite_config()
    warm, trace = prepare_benchmark(name, scale)
    started = time.perf_counter()
    run_execution_driven(trace, config, warmup_trace=warm)
    eds_seconds = time.perf_counter() - started

    started = time.perf_counter()
    profile = profile_trace(trace, config, order=1,
                            branch_mode="delayed", warmup_trace=warm)
    profile_seconds = time.perf_counter() - started

    seed = derive_point_seed("speedup", name, config_hash(config), 0)
    started = time.perf_counter()
    synthetic = generate_synthetic_trace(
        profile, scale.reduction_factor, seed=seed)
    synthesis_seconds = time.perf_counter() - started

    # One full design-point evaluation (synthesis + synthetic-trace
    # simulation), exactly as the dse sweep engine runs it.
    started = time.perf_counter()
    metrics = evaluate_metrics(profile, config, seed,
                               scale.reduction_factor)
    ss_seconds = time.perf_counter() - started

    per_point_speedup = eds_seconds / max(ss_seconds, 1e-9)
    # Design points after which SS (profile once, evaluate cheap)
    # beats repeating EDS per point.
    saved_per_point = eds_seconds - ss_seconds
    breakeven = (profile_seconds / saved_per_point
                 if saved_per_point > 0 else float("inf"))
    return {
        "benchmark": name,
        "eds_seconds": eds_seconds,
        "profile_seconds": profile_seconds,
        "synthesis_seconds": synthesis_seconds,
        "ss_seconds": ss_seconds,
        "synthetic_instructions": int(
            metrics["synthetic_instructions"]),
        "per_point_speedup": per_point_speedup,
        "breakeven_points": breakeven,
    }


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[TaskRunner] = None) -> List[Dict]:
    """One row per benchmark: wall-clock seconds for EDS, profiling,
    synthesis and a full engine-path SS evaluation, plus derived
    speedups."""
    return run_per_benchmark("speedup", scale, _measure_benchmark,
                             runner=runner)


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "EDS s", "profile s", "SS eval s",
         "speedup/point", "break-even pts"],
        [(r["benchmark"], r["eds_seconds"], r["profile_seconds"],
          r["ss_seconds"], f"{r['per_point_speedup']:.1f}x",
          f"{r['breakeven_points']:.1f}") for r in rows],
    )
    footer = (f"mean per-design-point speedup: "
              f"{mean([r['per_point_speedup'] for r in rows]):.1f}x "
              f"at R = (reference / synthetic) length ratio; "
              f"per-point cost measured through the repro.dse engine "
              f"path (synthesis + synthetic simulation)")
    return with_report_footer(table + "\n" + footer, rows)


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
