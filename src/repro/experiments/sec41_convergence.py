"""Section 4.1 — simulation speed: the coefficient of variation of IPC
as a function of the synthetic trace length.

Reproduction target: the CoV over synthesis seeds shrinks as synthetic
traces grow (the paper reports ~4% at 100K, ~2% at 200K, ~1.5% at 500K
and ~1% at 1M synthetic instructions).  At our scale the lengths are
smaller but the monotone decay is the result.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.metrics import coefficient_of_variation
from repro.core.profiler import profile_trace
from repro.core.reduction import reduce_flow_graph
from repro.core.synthesis import generate_synthetic_trace
from repro.core.framework import simulate_synthetic_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    prepare_benchmark,
    suite_config,
)

#: Reduction factors swept (larger R -> shorter synthetic traces).
DEFAULT_FACTORS = (40.0, 20.0, 10.0, 5.0, 2.5)
DEFAULT_NUM_SEEDS = 20


def run(benchmark: str = "gzip",
        scale: ExperimentScale = DEFAULT_SCALE,
        factors: Sequence[float] = DEFAULT_FACTORS,
        num_seeds: int = DEFAULT_NUM_SEEDS) -> List[Dict]:
    """One row per reduction factor: synthetic length and IPC CoV over
    *num_seeds* synthesis seeds (the paper uses 20)."""
    config = suite_config()
    warm, trace = prepare_benchmark(benchmark, scale)
    profile = profile_trace(trace, config, order=1, branch_mode="delayed",
                            warmup_trace=warm)
    rows = []
    for factor in factors:
        reduced = reduce_flow_graph(profile.sfg, factor)
        lengths = []
        ipcs = []
        for seed in range(num_seeds):
            synthetic = generate_synthetic_trace(profile, factor,
                                                 seed=seed)
            result, _ = simulate_synthetic_trace(synthetic, config)
            lengths.append(len(synthetic))
            ipcs.append(result.ipc)
        rows.append({
            "reduction_factor": factor,
            "synthetic_length": sum(lengths) / len(lengths),
            "cov": coefficient_of_variation(ipcs),
            "nodes_kept": reduced.num_nodes,
        })
    return rows


def format_rows(rows: List[Dict]) -> str:
    return format_table(
        ["R", "synthetic length", "IPC CoV", "nodes kept"],
        [(r["reduction_factor"], r["synthetic_length"],
          f"{r['cov'] * 100:.2f}%", r["nodes_kept"]) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
