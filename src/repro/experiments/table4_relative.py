"""Table 4 — relative accuracy of statistical simulation across
architectural sweeps: window size, processor width, IFQ size, branch
predictor size and cache size.

For each sweep step A -> B and each metric M, the relative error is

    RE = |(M_B,SS / M_A,SS) - (M_B,EDS / M_A,EDS)| / (M_B,EDS / M_A,EDS)

averaged over benchmarks.  Reproduction target: relative errors are
small (the paper reports generally < 3%) — statistical simulation
tracks *trends*, which is what makes it a design-space exploration tool.

Re-profiling: window and width sweeps reuse one statistical profile
(the profile does not depend on those parameters); IFQ, branch-predictor
and cache sweeps re-profile per design point, exactly the trade-off the
paper notes in section 4.4.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.metrics import relative_error
from repro.core.profiler import StatisticalProfile, profile_trace
from repro.cpu.results import SimulationResult
from repro.power.wattch import PowerBreakdown
from repro.runner import ResultRows, TaskRunner, WorkUnit
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_benchmark,
    suite_config,
    with_report_footer,
)

#: Metrics per sweep, following the paper's Table 4 sub-tables.
WINDOW_METRICS = ("ipc", "ruu_occupancy", "lsq_occupancy", "epc",
                  "ruu_power", "lsq_power")
WIDTH_METRICS = ("ipc", "execution_bandwidth", "epc", "fetch_power",
                 "dispatch_power", "issue_power")
IFQ_METRICS = ("ipc", "epc", "ifq_occupancy")
BPRED_METRICS = ("ipc", "epc", "ruu_occupancy", "ruu_power",
                 "lsq_occupancy", "lsq_power", "ifq_occupancy",
                 "fetch_power", "bpred_power")
CACHE_METRICS = ("ipc", "epc", "ruu_occupancy", "ruu_power",
                 "lsq_occupancy", "lsq_power", "ifq_occupancy",
                 "fetch_power", "il1_power", "dl1_power", "l2_power")

#: The paper's sweep points.
WINDOW_POINTS = (8, 16, 32, 48, 64, 96, 128)
WIDTH_POINTS = (2, 4, 6, 8)
IFQ_POINTS = (4, 8, 16, 32)
SCALE_POINTS = (0.25, 0.5, 1.0, 2.0, 4.0)


def collect_metrics(result: SimulationResult,
                    power: PowerBreakdown) -> Dict[str, float]:
    """Flatten a simulation outcome into Table 4's metric namespace."""
    return {
        "ipc": result.ipc,
        "epc": power.total,
        "ruu_occupancy": result.avg_ruu_occupancy,
        "lsq_occupancy": result.avg_lsq_occupancy,
        "ifq_occupancy": result.avg_ifq_occupancy,
        "execution_bandwidth": result.execution_bandwidth,
        "ruu_power": power.unit("ruu"),
        "lsq_power": power.unit("lsq"),
        "fetch_power": power.unit("fetch"),
        "dispatch_power": power.unit("dispatch"),
        "issue_power": power.unit("issue"),
        "bpred_power": power.unit("bpred"),
        "il1_power": power.unit("il1"),
        "dl1_power": power.unit("dl1"),
        "l2_power": power.unit("l2"),
    }


def _sweep_definitions(points: Optional[Dict[str, Sequence]] = None):
    """Sweep name -> (points, config builder, label fn, needs_reprofile,
    metrics)."""
    base = suite_config()
    chosen = points or {}

    def window_config(ruu: int) -> MachineConfig:
        return base.with_window(ruu_size=ruu, lsq_size=max(4, ruu // 2))

    return {
        "window": (chosen.get("window", WINDOW_POINTS), window_config,
                   lambda p: str(p), False, WINDOW_METRICS),
        "width": (chosen.get("width", WIDTH_POINTS), base.with_width,
                  lambda p: str(p), False, WIDTH_METRICS),
        "ifq": (chosen.get("ifq", IFQ_POINTS), base.with_ifq,
                lambda p: str(p), True, IFQ_METRICS),
        "bpred": (chosen.get("bpred", SCALE_POINTS),
                  base.with_predictor_scale,
                  lambda p: f"base*{p:g}", True, BPRED_METRICS),
        "cache": (chosen.get("cache", SCALE_POINTS),
                  base.with_cache_scale,
                  lambda p: f"base*{p:g}", True, CACHE_METRICS),
    }


def _measure(trace, warm, config: MachineConfig, scale: ExperimentScale,
             profile: Optional[StatisticalProfile]
             ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """EDS and SS metric dicts for one (benchmark, design point)."""
    result, power = run_execution_driven(trace, config, warmup_trace=warm)
    eds = collect_metrics(result, power)
    if profile is None:
        profile = profile_trace(trace, config, order=1,
                                branch_mode="delayed", warmup_trace=warm)
    ss_samples = []
    for seed in scale.seeds:
        report = run_statistical_simulation(
            trace, config, profile=profile,
            reduction_factor=scale.reduction_factor, seed=seed)
        ss_samples.append(collect_metrics(report.result, report.power))
    ss = {key: mean([s[key] for s in ss_samples]) for key in ss_samples[0]}
    return eds, ss


def _measure_sweep_benchmark(name: str, sweep: str,
                             scale: ExperimentScale,
                             definitions) -> List[List[Dict]]:
    """All design-point measurements of one benchmark along one sweep:
    ``[[eds_metrics, ss_metrics], ...]`` per sweep point (the unit of
    checkpointing, hence plain JSON lists)."""
    sweep_points, builder, label, reprofile, metrics = definitions[sweep]
    warm, trace = prepare_benchmark(name, scale)
    base_profile = None
    if not reprofile:
        base_config = builder(sweep_points[0])
        base_profile = profile_trace(trace, base_config, order=1,
                                     branch_mode="delayed",
                                     warmup_trace=warm)
    return [list(_measure(trace, warm, builder(point), scale,
                          base_profile))
            for point in sweep_points]


def run(scale: ExperimentScale = DEFAULT_SCALE,
        sweeps: Sequence[str] = ("window", "width", "ifq", "bpred",
                                 "cache"),
        points: Optional[Dict[str, Sequence]] = None,
        runner: Optional[TaskRunner] = None) -> List[Dict]:
    """Rows: sweep, transition label, metric, mean relative error.

    Every ``(sweep, benchmark)`` pair is one work unit of the
    fault-tolerant runner: a failing benchmark is dropped from that
    sweep's averages (with a warning in the rendered table) rather
    than aborting the whole experiment, and a checkpointing runner
    resumes a killed sweep without re-measuring finished pairs.
    """
    definitions = _sweep_definitions(points)
    runner = runner if runner is not None else TaskRunner()
    units = [WorkUnit("table4", benchmark=name,
                      params=(("sweep", sweep),))
             for sweep in sweeps for name in scale.benchmarks]
    report = runner.run(
        units,
        lambda unit: _measure_sweep_benchmark(
            unit.benchmark, dict(unit.params)["sweep"], scale,
            definitions),
        manifest={"experiment": "table4", "sweeps": list(sweeps),
                  "benchmarks": list(scale.benchmarks)})
    # measurements[sweep][benchmark][point_index] -> [eds, ss]
    unit_sweeps = {unit.unit_id: dict(unit.params)["sweep"]
                   for unit in units}
    per_sweep: Dict[str, Dict[str, List[List[Dict]]]] = \
        {sweep: {} for sweep in sweeps}
    for outcome in report.outcomes:
        if outcome.status == "failed" or outcome.result is None:
            continue
        sweep = unit_sweeps[outcome.unit_id]
        per_sweep[sweep][outcome.benchmark] = outcome.result

    rows: List[Dict] = []
    for sweep in sweeps:
        sweep_points, builder, label, reprofile, metrics = \
            definitions[sweep]
        measurements = per_sweep[sweep]
        for i in range(len(sweep_points) - 1):
            transition = f"{label(sweep_points[i])} -> " \
                         f"{label(sweep_points[i + 1])}"
            for metric in metrics:
                errors = []
                for name in measurements:
                    eds_a, ss_a = measurements[name][i]
                    eds_b, ss_b = measurements[name][i + 1]
                    if 0 in (eds_a[metric], eds_b[metric],
                             ss_a[metric]):
                        continue
                    errors.append(relative_error(
                        ss_a[metric], ss_b[metric],
                        eds_a[metric], eds_b[metric]))
                if errors:
                    rows.append({
                        "sweep": sweep,
                        "transition": transition,
                        "metric": metric,
                        "relative_error": mean(errors),
                    })
    return ResultRows(rows, report=report)


def average_by_sweep(rows: List[Dict]) -> Dict[str, float]:
    sweeps = {row["sweep"] for row in rows}
    return {sweep: mean([r["relative_error"] for r in rows
                         if r["sweep"] == sweep])
            for sweep in sweeps}


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["sweep", "transition", "metric", "relative error"],
        [(r["sweep"], r["transition"], r["metric"],
          f"{r['relative_error'] * 100:.2f}%") for r in rows],
    )
    averages = average_by_sweep(rows)
    footer = "averages: " + "  ".join(
        f"{sweep} {value * 100:.2f}%"
        for sweep, value in sorted(averages.items()))
    return with_report_footer(table + "\n" + footer, rows)


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
