"""Figure 4 — IPC prediction error as a function of the SFG order k,
assuming perfect caches and perfect branch prediction.

Reproduction target: k = 0 (no control-flow correlation) can produce
large IPC errors, while any k >= 1 is accurate (the paper reports up to
35% at k = 0 versus < 2% average at k >= 1, with k = 1 as accurate as
k = 2, 3 — which is why the paper settles on k = 1).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_suite,
    suite_config,
)

DEFAULT_ORDERS: Tuple[int, ...] = (0, 1, 2, 3)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        orders: Sequence[int] = DEFAULT_ORDERS) -> List[Dict]:
    """One row per benchmark: IPC error per SFG order, plus the SFG node
    counts (which double as the paper's Table 3)."""
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        reference, _ = run_execution_driven(
            trace, config, perfect_caches=True,
            perfect_branch_prediction=True)
        row: Dict = {"benchmark": name, "reference_ipc": reference.ipc,
                     "errors": {}, "nodes": {}}
        for order in orders:
            profile = profile_trace(trace, config, order=order,
                                    branch_mode="perfect",
                                    perfect_caches=True)
            ipcs = [
                run_statistical_simulation(
                    trace, config, profile=profile,
                    reduction_factor=scale.reduction_factor, seed=seed).ipc
                for seed in scale.seeds
            ]
            row["errors"][order] = absolute_error(mean(ipcs), reference.ipc)
            row["nodes"][order] = profile.num_nodes
        rows.append(row)
    return rows


def average_errors(rows: List[Dict]) -> Dict[int, float]:
    """Mean IPC error per order across benchmarks."""
    orders = rows[0]["errors"].keys()
    return {order: mean([row["errors"][order] for row in rows])
            for order in orders}


def format_rows(rows: List[Dict]) -> str:
    orders = sorted(rows[0]["errors"])
    table = format_table(
        ["benchmark"] + [f"k={k}" for k in orders],
        [[row["benchmark"]] + [f"{row['errors'][k] * 100:.1f}%"
                               for k in orders] for row in rows],
    )
    averages = average_errors(rows)
    footer = "average     " + "  ".join(
        f"k={k}: {averages[k] * 100:.1f}%" for k in orders)
    return table + "\n" + footer


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
