"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run(scale=...)`` function returning structured
rows plus a ``format_table(rows)`` helper; ``benchmarks/`` wraps these in
pytest-benchmark targets that print the same rows the paper reports.

| Module                  | Paper result                                   |
|-------------------------|------------------------------------------------|
| ``table1_baseline``     | Table 1 — baseline IPC per benchmark           |
| ``fig3_branch_profiling``| Fig. 3 — mispredictions/1K insn, 3 scenarios  |
| ``fig4_sfg_order``      | Fig. 4 — IPC error vs SFG order k              |
| ``table3_sfg_size``     | Table 3 — SFG node count vs k                  |
| ``fig5_delayed_update`` | Fig. 5 — delayed vs immediate profiling        |
| ``fig6_absolute``       | Fig. 6 — absolute IPC/EPC (and EDP) accuracy   |
| ``sec41_convergence``   | §4.1 — CoV of IPC vs synthetic trace length    |
| ``fig7_hls``            | Fig. 7 — HLS vs SMART-HLS                      |
| ``fig8_phases``         | Fig. 8 — program phases and SimPoint           |
| ``table4_relative``     | Table 4 — relative accuracy across sweeps      |
| ``sec46_design_space``  | §4.6 — EDP design-space exploration            |
| ``speedup``             | §4.1 — wall-clock speedup per design point     |
| ``ablation_workload_models`` | §5 — workload-model structure spectrum    |
| ``ablation_fifo_size``  | §2.1.3 — delayed-update FIFO sizing            |
| ``ablation_reduction``  | §2.2 — reduction factor R trade-off            |
| ``extension_inorder``   | §2.1.1 future work — WAW/WAR, in-order issue   |
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    prepare_benchmark,
    prepare_suite,
)

__all__ = [
    "ExperimentScale",
    "DEFAULT_SCALE",
    "QUICK_SCALE",
    "prepare_benchmark",
    "prepare_suite",
]
