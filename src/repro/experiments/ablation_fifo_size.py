"""Ablation: the delayed-update FIFO size (paper section 2.1.3).

The paper prescribes sizing the profiling FIFO to the instruction fetch
queue for dispatch-time speculative update ("a natural choice"), and
notes other update points need other sizes.  This ablation sweeps the
FIFO size and measures how far the profiled misprediction rate lands
from the execution-driven pipeline's rate: size 1 reproduces immediate
update (too optimistic), the IFQ size tracks the pipeline, and
oversized FIFOs over-delay (modeling commit-time update on a machine
that actually updates at dispatch).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.branch.profiler import (
    mispredictions_per_kilo_instruction,
    profile_branches_delayed,
)
from repro.branch.unit import BranchPredictorUnit
from repro.core.framework import run_execution_driven
from repro.frontend.warming import warm_locality_structures
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_suite,
    suite_config,
)

DEFAULT_FIFO_SIZES = (1, 4, 8, 16, 32, 64, 128)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        fifo_sizes: Sequence[int] = DEFAULT_FIFO_SIZES) -> List[Dict]:
    """One row per benchmark: EDS mispredicts/1K plus the profiled rate
    for each FIFO size."""
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        eds, _ = run_execution_driven(trace, config, warmup_trace=warm)
        profiled = {}
        for size in fifo_sizes:
            _, unit = warm_locality_structures(warm, config)
            records = profile_branches_delayed(trace, unit,
                                               fifo_size=size)
            profiled[size] = mispredictions_per_kilo_instruction(
                records, len(trace))
        rows.append({
            "benchmark": name,
            "eds_mpki": eds.mispredictions_per_kilo_instruction,
            "profiled_mpki": profiled,
        })
    return rows


def average_gaps(rows: List[Dict]) -> Dict[int, float]:
    """Mean |profiled - EDS| misprediction-rate gap per FIFO size."""
    sizes = rows[0]["profiled_mpki"].keys()
    return {
        size: mean([abs(row["profiled_mpki"][size] - row["eds_mpki"])
                    for row in rows])
        for size in sizes
    }


def format_rows(rows: List[Dict]) -> str:
    sizes = sorted(rows[0]["profiled_mpki"])
    table = format_table(
        ["benchmark", "EDS"] + [f"fifo={s}" for s in sizes],
        [[row["benchmark"], row["eds_mpki"]]
         + [row["profiled_mpki"][s] for s in sizes] for row in rows],
    )
    gaps = average_gaps(rows)
    footer = "mean |gap|: " + "  ".join(
        f"fifo={size}: {gap:.2f}" for size, gap in sorted(gaps.items()))
    return table + "\n" + footer


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
