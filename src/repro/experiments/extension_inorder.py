"""Extension: statistical simulation of non-renaming / in-order machines.

Paper section 2.1.1: "Although not done in this paper, this approach
could be extended to also include WAW and WAR dependencies to account
for a limited number of physical registers or in-order execution."

This experiment implements that extension and evaluates it: the target
machine issues in order and enforces WAW/WAR hazards (no renaming).
Three predictors are compared against the in-order execution-driven
reference:

* **raw-only** — the paper's synthesis (RAW dependencies only), which
  should *overestimate* the non-renaming machine's IPC;
* **with-anti** — synthesis sampling the profiled WAW/WAR distance
  distributions as well;
* the out-of-order reference, to show how much performance renaming
  buys (context).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_suite,
    suite_config,
)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Dict]:
    """One row per benchmark: in-order EDS IPC and the two SS errors."""
    base = suite_config()
    in_order = replace(base, in_order_issue=True,
                       enforce_anti_dependencies=True,
                       decode_width=4, issue_width=4, commit_width=4)
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        ooo_reference, _ = run_execution_driven(trace, base,
                                                warmup_trace=warm)
        reference, _ = run_execution_driven(trace, in_order,
                                            warmup_trace=warm)
        profile = profile_trace(trace, in_order, order=1,
                                branch_mode="delayed", warmup_trace=warm)
        estimates = {}
        for key, include in (("raw_only", False), ("with_anti", True)):
            ipcs = [
                run_statistical_simulation(
                    trace, in_order, profile=profile,
                    reduction_factor=scale.reduction_factor, seed=seed,
                    include_anti_dependencies=include).ipc
                for seed in scale.seeds
            ]
            estimates[key] = mean(ipcs)
        rows.append({
            "benchmark": name,
            "ooo_ipc": ooo_reference.ipc,
            "inorder_ipc": reference.ipc,
            "raw_only_ipc": estimates["raw_only"],
            "raw_only_error": absolute_error(estimates["raw_only"],
                                             reference.ipc),
            "with_anti_ipc": estimates["with_anti"],
            "with_anti_error": absolute_error(estimates["with_anti"],
                                              reference.ipc),
        })
    return rows


def average_errors(rows: List[Dict]) -> Dict[str, float]:
    return {
        "raw_only": mean([row["raw_only_error"] for row in rows]),
        "with_anti": mean([row["with_anti_error"] for row in rows]),
    }


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "OoO IPC", "in-order IPC", "SS raw-only",
         "err", "SS with-anti", "err"],
        [(r["benchmark"], r["ooo_ipc"], r["inorder_ipc"],
          r["raw_only_ipc"], f"{r['raw_only_error'] * 100:.1f}%",
          r["with_anti_ipc"], f"{r['with_anti_error'] * 100:.1f}%")
         for r in rows],
    )
    averages = average_errors(rows)
    footer = (f"average error: raw-only "
              f"{averages['raw_only'] * 100:.1f}%  with-anti "
              f"{averages['with_anti'] * 100:.1f}%")
    return table + "\n" + footer


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
