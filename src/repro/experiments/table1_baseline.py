"""Table 1 — baseline IPC of every benchmark on the Table 2 machine.

The paper's Table 1 lists per-benchmark baseline IPC between 0.51
(crafty) and 1.94 (gzip); the reproduction target is a comparable
spread with the streaming compressors fastest and the branchy /
memory-bound workloads slowest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.framework import run_execution_driven
from repro.runner import TaskRunner
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    prepare_benchmark,
    run_per_benchmark,
    suite_config,
    with_report_footer,
)


def _measure_benchmark(name: str, scale: ExperimentScale) -> Dict:
    config = suite_config()
    warm, trace = prepare_benchmark(name, scale)
    result, power = run_execution_driven(trace, config,
                                         warmup_trace=warm)
    return {
        "benchmark": name,
        "ipc": result.ipc,
        "epc": power.total,
        "mpki": result.mispredictions_per_kilo_instruction,
    }


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[TaskRunner] = None) -> List[Dict]:
    """Return one row per benchmark: name, IPC, mispredictions/1K.

    Benchmarks run as independent work units; see
    :func:`repro.experiments.common.run_per_benchmark`.
    """
    return run_per_benchmark("table1", scale, _measure_benchmark,
                             runner=runner)


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "IPC", "EPC (W/cycle)", "mispredicts/1K"],
        [(r["benchmark"], r["ipc"], r["epc"], r["mpki"]) for r in rows],
    )
    return with_report_footer(table, rows)


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
