"""Table 1 — baseline IPC of every benchmark on the Table 2 machine.

The paper's Table 1 lists per-benchmark baseline IPC between 0.51
(crafty) and 1.94 (gzip); the reproduction target is a comparable
spread with the streaming compressors fastest and the branchy /
memory-bound workloads slowest.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.framework import run_execution_driven
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    prepare_suite,
    suite_config,
)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Dict]:
    """Return one row per benchmark: name, IPC, mispredictions/1K."""
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        result, power = run_execution_driven(trace, config,
                                             warmup_trace=warm)
        rows.append({
            "benchmark": name,
            "ipc": result.ipc,
            "epc": power.total,
            "mpki": result.mispredictions_per_kilo_instruction,
        })
    return rows


def format_rows(rows: List[Dict]) -> str:
    return format_table(
        ["benchmark", "IPC", "EPC (W/cycle)", "mispredicts/1K"],
        [(r["benchmark"], r["ipc"], r["epc"], r["mpki"]) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
