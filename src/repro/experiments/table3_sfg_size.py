"""Table 3 — the number of nodes in the SFG as a function of its order.

Reproduction target: node counts grow with k, and the per-benchmark
ordering tracks static code size (gcc largest, vpr smallest), as in the
paper's Table 3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.profiler import profile_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    prepare_suite,
    suite_config,
)

DEFAULT_ORDERS: Tuple[int, ...] = (0, 1, 2, 3)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        orders: Sequence[int] = DEFAULT_ORDERS) -> List[Dict]:
    """One row per benchmark: SFG node count per order k.

    Only the microarchitecture-independent part of the profile matters
    here, so profiling runs with perfect caches and branches for speed.
    """
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        counts = {}
        for order in orders:
            profile = profile_trace(trace, config, order=order,
                                    branch_mode="perfect",
                                    perfect_caches=True)
            counts[order] = profile.num_nodes
        rows.append({"benchmark": name, "nodes": counts})
    return rows


def format_rows(rows: List[Dict]) -> str:
    orders = sorted(rows[0]["nodes"])
    return format_table(
        ["benchmark"] + [f"k={k}" for k in orders],
        [[row["benchmark"]] + [row["nodes"][k] for k in orders]
         for row in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
