"""Section 4.6 — design space exploration with statistical simulation.

The paper sweeps RUU size, LSQ size and decode/issue/commit widths
(1,792 design points), computes the energy-delay product of every point
with statistical simulation, and verifies with execution-driven
simulation that the SS-optimal point is the true optimum or within a
short range of it (7 of 10 benchmarks exact; the rest within 1.24%).

Here the grid is scaled down but the verification protocol is the same:
every grid point is evaluated with SS (one profile serves the whole
grid, since window and width do not affect the statistical profile),
then all points whose SS EDP is within ``verify_margin`` of the SS
optimum are re-evaluated execution-driven.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.profiler import profile_trace
from repro.power.wattch import energy_delay_product
from repro.runner import TaskRunner
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_benchmark,
    run_per_benchmark,
    suite_config,
    with_report_footer,
)

DEFAULT_RUU = (16, 32, 64, 128)
DEFAULT_LSQ = (8, 16, 32)
DEFAULT_WIDTHS = (2, 4, 8)
VERIFY_MARGIN = 0.03  # the paper verifies the 3% range around optimum


def design_grid(ruu_sizes: Sequence[int] = DEFAULT_RUU,
                lsq_sizes: Sequence[int] = DEFAULT_LSQ,
                widths: Sequence[int] = DEFAULT_WIDTHS
                ) -> List[MachineConfig]:
    """All valid grid configs (LSQ never larger than the RUU, as the
    paper constrains)."""
    base = suite_config()
    configs = []
    for ruu, lsq, width in product(ruu_sizes, lsq_sizes, widths):
        if lsq > ruu:
            continue
        configs.append(
            base.with_window(ruu_size=ruu, lsq_size=lsq).with_width(width))
    return configs


def _label(config: MachineConfig) -> str:
    return (f"ruu={config.ruu_size} lsq={config.lsq_size} "
            f"width={config.issue_width}")


def run(benchmark: str = "twolf",
        scale: ExperimentScale = DEFAULT_SCALE,
        ruu_sizes: Sequence[int] = DEFAULT_RUU,
        lsq_sizes: Sequence[int] = DEFAULT_LSQ,
        widths: Sequence[int] = DEFAULT_WIDTHS,
        verify_margin: float = VERIFY_MARGIN) -> Dict:
    """Explore the grid for one benchmark.

    Returns the SS-optimal design, the EDS-verified optimum among the
    candidate region, and the EDS EDP gap between them (0.0 when SS
    found the true optimum, as it does for most benchmarks in the
    paper).
    """
    config0 = suite_config()
    warm, trace = prepare_benchmark(benchmark, scale)
    profile = profile_trace(trace, config0, order=1, branch_mode="delayed",
                            warmup_trace=warm)
    grid = design_grid(ruu_sizes, lsq_sizes, widths)

    ss_edp: List[Tuple[float, MachineConfig]] = []
    for config in grid:
        edps = []
        for seed in scale.seeds:
            report = run_statistical_simulation(
                trace, config, profile=profile,
                reduction_factor=scale.reduction_factor, seed=seed)
            edps.append(report.edp)
        ss_edp.append((mean(edps), config))

    ss_edp.sort(key=lambda pair: pair[0])
    best_ss_edp, best_ss_config = ss_edp[0]
    candidates = [(edp, config) for edp, config in ss_edp
                  if edp <= best_ss_edp * (1.0 + verify_margin)]

    verified: List[Tuple[float, MachineConfig]] = []
    for _, config in candidates:
        result, power = run_execution_driven(trace, config,
                                             warmup_trace=warm)
        verified.append(
            (energy_delay_product(power.total, result.ipc), config))
    verified.sort(key=lambda pair: pair[0])

    eds_at_ss_optimal = next(edp for edp, config in verified
                             if config is best_ss_config)
    eds_best_edp, eds_best_config = verified[0]
    gap = (eds_at_ss_optimal - eds_best_edp) / eds_best_edp
    return {
        "benchmark": benchmark,
        "grid_points": len(grid),
        "candidates_verified": len(candidates),
        "ss_optimal": _label(best_ss_config),
        "eds_optimal_in_region": _label(eds_best_config),
        "found_optimal": best_ss_config is eds_best_config,
        "edp_gap": gap,
    }


def run_suite(benchmarks: Sequence[str] = ("twolf", "gzip", "parser"),
              scale: ExperimentScale = DEFAULT_SCALE,
              runner: Optional[TaskRunner] = None, **kwargs
              ) -> List[Dict]:
    """One grid exploration per benchmark, each as an independent work
    unit of the fault-tolerant runner (a 100+-point grid is exactly the
    long batch job that must survive one benchmark crashing)."""
    return run_per_benchmark(
        "sec46", scale,
        lambda name, sc: run(name, scale=sc, **kwargs),
        runner=runner, benchmarks=benchmarks)


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "grid", "verified", "SS optimum",
         "EDS optimum", "found", "EDP gap"],
        [(r["benchmark"], r["grid_points"], r["candidates_verified"],
          r["ss_optimal"], r["eds_optimal_in_region"],
          "yes" if r["found_optimal"] else "no",
          f"{r['edp_gap'] * 100:.2f}%") for r in rows],
    )
    return with_report_footer(table, rows)


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run_suite()))
