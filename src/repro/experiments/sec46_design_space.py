"""Section 4.6 — design space exploration with statistical simulation.

The paper sweeps RUU size, LSQ size and decode/issue/commit widths
(1,792 design points), computes the energy-delay product of every point
with statistical simulation, and verifies with execution-driven
simulation that the SS-optimal point is the true optimum or within a
short range of it (7 of 10 benchmarks exact; the rest within 1.24%).

Here the grid is scaled down but the verification protocol is the same,
and it runs on the :mod:`repro.dse` subsystem: one profile serves the
whole grid (window and width do not affect the statistical profile),
every grid point is evaluated through the parallel, cached
:class:`~repro.dse.engine.SweepEngine`, then all points whose SS EDP is
within ``verify_margin`` of the SS optimum are re-evaluated
execution-driven.  Pass ``jobs``/``cache_dir`` to spread the sweep over
worker processes and to skip already-evaluated points across runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig
from repro.runner import RunnerPolicy, TaskRunner
from repro.dse.space import reduced_sec46_spec
from repro.dse.study import run_study
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    run_per_benchmark,
    suite_config,
    with_report_footer,
)

DEFAULT_RUU = (16, 32, 64, 128)
DEFAULT_LSQ = (8, 16, 32)
DEFAULT_WIDTHS = (2, 4, 8)
VERIFY_MARGIN = 0.03  # the paper verifies the 3% range around optimum


def design_grid(ruu_sizes: Sequence[int] = DEFAULT_RUU,
                lsq_sizes: Sequence[int] = DEFAULT_LSQ,
                widths: Sequence[int] = DEFAULT_WIDTHS
                ) -> List[MachineConfig]:
    """All valid grid configs (LSQ never larger than the RUU, as the
    paper constrains)."""
    spec = reduced_sec46_spec(ruu_sizes, lsq_sizes, widths)
    return [point.config for point in spec.expand(suite_config())]


def run(benchmark: str = "twolf",
        scale: ExperimentScale = DEFAULT_SCALE,
        ruu_sizes: Sequence[int] = DEFAULT_RUU,
        lsq_sizes: Sequence[int] = DEFAULT_LSQ,
        widths: Sequence[int] = DEFAULT_WIDTHS,
        verify_margin: float = VERIFY_MARGIN,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        policy: Optional[RunnerPolicy] = None) -> Dict:
    """Explore the grid for one benchmark.

    Returns the SS-optimal design, the EDS-verified optimum among the
    candidate region, and the EDS EDP gap between them (0.0 when SS
    found the true optimum, as it does for most benchmarks in the
    paper), plus the sweep's execution accounting (evaluations, cache
    hits, wall-clock, worker count).
    """
    spec = reduced_sec46_spec(ruu_sizes, lsq_sizes, widths)
    study = run_study(spec, benchmark, scale, jobs=jobs,
                      cache_dir=cache_dir, policy=policy,
                      verify_margin=verify_margin,
                      base_config=suite_config())
    return study.to_row()


def run_suite(benchmarks: Sequence[str] = ("twolf", "gzip", "parser"),
              scale: ExperimentScale = DEFAULT_SCALE,
              runner: Optional[TaskRunner] = None, **kwargs
              ) -> List[Dict]:
    """One grid exploration per benchmark, each as an independent work
    unit of the fault-tolerant runner (a 100+-point grid is exactly the
    long batch job that must survive one benchmark crashing).  Within a
    benchmark, the :mod:`repro.dse` engine additionally applies
    timeout/retry/caching per design point."""
    return run_per_benchmark(
        "sec46", scale,
        lambda name, sc: run(name, scale=sc, **kwargs),
        runner=runner, benchmarks=benchmarks)


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "grid", "verified", "SS optimum",
         "EDS optimum", "found", "EDP gap", "evals", "cached"],
        [(r["benchmark"], r["grid_points"], r["candidates_verified"],
          r["ss_optimal"], r["eds_optimal_in_region"],
          "yes" if r["found_optimal"] else "no",
          f"{r['edp_gap'] * 100:.2f}%",
          r.get("evaluations", "-"), r.get("cached_evaluations", "-"))
         for r in rows],
    )
    return with_report_footer(table, rows)


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run_suite()))
