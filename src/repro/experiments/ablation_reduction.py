"""Ablation: the synthetic trace reduction factor R (paper section 2.2).

R trades simulation speed for fidelity on two axes the paper discusses:

* variance — shorter synthetic traces converge less (section 4.1);
* coverage — nodes with fewer than R occurrences are removed, and the
  paper notes the reduced graph "is no longer fully interconnected"
  but claims "the interconnection is still strong enough".

This ablation quantifies both per R: surviving nodes, surviving block
mass, the occurrence mass held by the largest weakly-connected
component of the reduced graph, and the resulting IPC error.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.analysis import reduced_connectivity
from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.core.reduction import reduce_flow_graph
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_benchmark,
    suite_config,
)

DEFAULT_FACTORS = (2.0, 4.0, 8.0, 16.0, 32.0)


def run(benchmark: str = "parser",
        scale: ExperimentScale = DEFAULT_SCALE,
        factors: Sequence[float] = DEFAULT_FACTORS) -> List[Dict]:
    """One row per reduction factor for one benchmark."""
    config = suite_config()
    warm, trace = prepare_benchmark(benchmark, scale)
    reference, _ = run_execution_driven(trace, config, warmup_trace=warm)
    profile = profile_trace(trace, config, order=1,
                            branch_mode="delayed", warmup_trace=warm)
    total_mass = profile.sfg.total_block_executions
    rows = []
    for factor in factors:
        reduced = reduce_flow_graph(profile.sfg, factor)
        connectivity = reduced_connectivity(profile.sfg, reduced)
        ipcs = [
            run_statistical_simulation(trace, config, profile=profile,
                                       reduction_factor=factor,
                                       seed=seed).ipc
            for seed in scale.seeds
        ]
        rows.append({
            "benchmark": benchmark,
            "reduction_factor": factor,
            "nodes_kept": reduced.num_nodes,
            "nodes_total": profile.num_nodes,
            "mass_kept": reduced.total_blocks * factor / total_mass,
            "largest_component_mass":
                connectivity["largest_component_mass"],
            "ipc_error": absolute_error(mean(ipcs), reference.ipc),
        })
    return rows


def format_rows(rows: List[Dict]) -> str:
    return format_table(
        ["R", "nodes kept", "mass kept", "component mass", "IPC error"],
        [(r["reduction_factor"],
          f"{r['nodes_kept']}/{r['nodes_total']}",
          f"{r['mass_kept'] * 100:.1f}%",
          f"{r['largest_component_mass'] * 100:.1f}%",
          f"{r['ipc_error'] * 100:.1f}%") for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
