"""Figure 5 — the importance of modeling delayed update during branch
profiling (perfect caches are assumed, as in the paper).

Reproduction target: statistical simulation using profiles built with
the delayed-update FIFO predicts IPC markedly better than profiles
built with immediate update; the benchmarks that benefit most are those
whose Figure 3 discrepancy is largest (eon and perlbmk in the paper).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    mean,
    prepare_suite,
    suite_config,
)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Dict]:
    """One row per benchmark: IPC error with immediate- versus
    delayed-update branch profiling."""
    config = suite_config()
    rows = []
    for name, (warm, trace) in prepare_suite(scale).items():
        reference, _ = run_execution_driven(trace, config,
                                            perfect_caches=True,
                                            warmup_trace=warm)
        errors = {}
        for mode in ("immediate", "delayed"):
            profile = profile_trace(trace, config, order=1,
                                    branch_mode=mode, perfect_caches=True,
                                    warmup_trace=warm)
            ipcs = [
                run_statistical_simulation(
                    trace, config, profile=profile,
                    reduction_factor=scale.reduction_factor, seed=seed).ipc
                for seed in scale.seeds
            ]
            errors[mode] = absolute_error(mean(ipcs), reference.ipc)
        rows.append({
            "benchmark": name,
            "immediate_error": errors["immediate"],
            "delayed_error": errors["delayed"],
        })
    return rows


def format_rows(rows: List[Dict]) -> str:
    table = format_table(
        ["benchmark", "immediate update", "delayed update"],
        [(r["benchmark"], f"{r['immediate_error'] * 100:.1f}%",
          f"{r['delayed_error'] * 100:.1f}%") for r in rows],
    )
    footer = (f"average: immediate "
              f"{mean([r['immediate_error'] for r in rows]) * 100:.1f}%  "
              f"delayed {mean([r['delayed_error'] for r in rows]) * 100:.1f}%")
    return table + "\n" + footer


if __name__ == "__main__":  # pragma: no cover
    print(format_rows(run()))
