"""Saving and loading dynamic traces.

Profiling tools in the paper's ecosystem are either execution-driven or
"trace-driven tools operating on an execution trace that is stored on a
disk" (section 2.1.2).  This module provides the stored-trace path: a
compact binary format for :class:`~repro.frontend.trace.Trace` objects,
so expensive functional simulations can be captured once and replayed
into profiling, simulation or external tools.

Format (version 1): a JSON header line (name, count, version) followed
by fixed-width little-endian records, one per instruction:

    seq:u32  pc:u64  iclass:u8  bb:u32  n_src:u8  src[4]:u8
    has_dst:u8  dst:u8  has_mem:u8  mem:u64  taken:u8  target:u64
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import List, Union

from repro.isa.iclass import IClass
from repro.isa.instruction import DynamicInstruction
from repro.frontend.trace import Trace

FORMAT_VERSION = 1
_RECORD = struct.Struct("<IQBIB4sBBBQBQ")
_MAX_SRC = 4


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to *path* in the binary trace format."""
    header = json.dumps({"version": FORMAT_VERSION, "name": trace.name,
                         "count": len(trace)})
    with open(path, "wb") as handle:
        handle.write(header.encode("utf-8") + b"\n")
        pack = _RECORD.pack
        for inst in trace.instructions:
            n_src = len(inst.src_regs)
            if n_src > _MAX_SRC:
                raise ValueError(
                    f"instruction with {n_src} sources exceeds the "
                    f"format's limit of {_MAX_SRC}")
            src = bytes(inst.src_regs) + b"\x00" * (_MAX_SRC - n_src)
            handle.write(pack(
                inst.seq, inst.pc, int(inst.iclass), inst.bb_id,
                n_src, src,
                inst.dst_reg is not None, inst.dst_reg or 0,
                inst.mem_addr is not None, inst.mem_addr or 0,
                inst.taken, inst.target,
            ))


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        header = json.loads(handle.readline().decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {header.get('version')!r}")
        count = header["count"]
        instructions: List[DynamicInstruction] = []
        unpack = _RECORD.unpack
        size = _RECORD.size
        payload = handle.read()
    if len(payload) != count * size:
        raise ValueError(
            f"truncated trace file: expected {count * size} payload "
            f"bytes, found {len(payload)}")
    for index in range(count):
        (seq, pc, iclass, bb_id, n_src, src, has_dst, dst, has_mem,
         mem, taken, target) = unpack(
            payload[index * size:(index + 1) * size])
        instructions.append(DynamicInstruction(
            seq=seq, pc=pc, iclass=IClass(iclass), bb_id=bb_id,
            src_regs=tuple(src[:n_src]),
            dst_reg=dst if has_dst else None,
            mem_addr=mem if has_mem else None,
            taken=bool(taken), target=target,
        ))
    return Trace(name=header["name"], instructions=instructions)
