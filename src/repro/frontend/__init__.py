"""Functional-simulation frontend: executes programs into dynamic traces.

This plays the role of SimpleScalar's functional simulation in the paper:
it produces the dynamic instruction stream that statistical profiling and
execution-driven simulation both consume (paper Figure 1, step 1).
"""

from repro.frontend.functional import FunctionalSimulator, run_program
from repro.frontend.trace import Trace, split_intervals
from repro.frontend.warming import (
    run_program_with_warmup,
    warm_locality_structures,
)
from repro.frontend.tracefile import load_trace, save_trace

__all__ = [
    "FunctionalSimulator",
    "run_program",
    "run_program_with_warmup",
    "warm_locality_structures",
    "Trace",
    "split_intervals",
    "save_trace",
    "load_trace",
]
