"""Functional warming of locality structures.

The paper measures 100M-instruction samples out of much longer
executions (and skips the first 1B instructions in its phase study), so
caches and predictors are warm when measurement starts.  This module
provides that methodology: replay a warmup trace through a cache
hierarchy and branch predictor — functionally, no pipeline — and hand
the warmed structures to profiling, execution-driven simulation or
SimPoint.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import MachineConfig
from repro.frontend.trace import Trace
from repro.branch.unit import BranchPredictorUnit
from repro.cache.hierarchy import CacheHierarchy


def warm_locality_structures(
    warmup_trace: Optional[Trace],
    config: MachineConfig,
    hierarchy: Optional[CacheHierarchy] = None,
    predictor: Optional[BranchPredictorUnit] = None,
) -> Tuple[CacheHierarchy, BranchPredictorUnit]:
    """Build (or take) a hierarchy and predictor and functionally warm
    them on *warmup_trace* (a no-op when it is None).

    Warming statistics are reset afterwards so callers measure only the
    post-warmup window.
    """
    hierarchy = hierarchy or CacheHierarchy(config)
    predictor = predictor or BranchPredictorUnit(config.predictor)
    if warmup_trace is not None:
        for inst in warmup_trace.instructions:
            hierarchy.access_instruction(inst.pc)
            if inst.mem_addr is not None:
                hierarchy.access_data(inst.mem_addr, is_store=inst.is_store)
            if inst.is_branch:
                predictor.train(inst)
        hierarchy.il1.reset_statistics()
        hierarchy.dl1.reset_statistics()
        hierarchy.l2.reset_statistics()
        hierarchy.itlb.reset_statistics()
        hierarchy.dtlb.reset_statistics()
        hierarchy.l2_instruction_accesses = 0
        hierarchy.l2_instruction_misses = 0
        hierarchy.l2_data_accesses = 0
        hierarchy.l2_data_misses = 0
        predictor.lookups = 0
        predictor.updates = 0
    return hierarchy, predictor


def run_program_with_warmup(program, warmup: int,
                            n_instructions: int) -> Tuple[Trace, Trace]:
    """Execute *program* and return ``(warmup_trace, measurement_trace)``
    as two contiguous windows of one execution.

    The warmup window is extended to the next basic-block boundary so
    the measurement window starts with a complete block — profiling
    keys statistics by basic block, and a truncated leading block would
    alias with its full-size executions.
    """
    from repro.frontend.functional import FunctionalSimulator

    sim = FunctionalSimulator(program)
    warm_instructions = list(sim.run(warmup))
    while warm_instructions and not warm_instructions[-1].is_branch:
        warm_instructions.extend(sim.run(1))
    measured = list(sim.run(n_instructions))
    for seq, inst in enumerate(measured):
        inst.seq = seq
    return (Trace(name=f"{program.name}/warmup",
                  instructions=warm_instructions),
            Trace(name=program.name, instructions=measured))
