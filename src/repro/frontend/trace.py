"""Dynamic-trace container and interval utilities."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Sequence

from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.isa.instruction import DynamicInstruction


class Trace:
    """A dynamic instruction stream plus convenience statistics.

    Traces are produced by the functional simulator and consumed by
    profiling, execution-driven simulation and the SimPoint baseline.
    """

    def __init__(self, name: str,
                 instructions: List[DynamicInstruction]) -> None:
        self.name = name
        self.instructions = instructions

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    @property
    def num_branches(self) -> int:
        return sum(1 for inst in self.instructions
                   if inst.iclass in BRANCH_CLASSES)

    @property
    def num_loads(self) -> int:
        return sum(1 for inst in self.instructions
                   if inst.iclass is IClass.LOAD)

    def instruction_mix(self) -> Dict[IClass, float]:
        """Fraction of the trace in each instruction class."""
        counts = Counter(inst.iclass for inst in self.instructions)
        total = len(self.instructions)
        return {iclass: counts[iclass] / total for iclass in counts}

    def basic_block_sequence(self) -> List[int]:
        """The executed basic-block id sequence (one entry per block
        execution, delimited by branch instructions)."""
        sequence = []
        for inst in self.instructions:
            if inst.iclass in BRANCH_CLASSES:
                sequence.append(inst.bb_id)
        return sequence

    def basic_block_counts(self) -> Counter:
        """Execution count per basic block."""
        return Counter(self.basic_block_sequence())


def split_intervals(trace: Trace, interval: int) -> List[Trace]:
    """Split a trace into fixed-size intervals (for phase analysis and
    SimPoint basic-block vectors).  The final partial interval, if any,
    is dropped — matching SimPoint's fixed-length intervals.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    pieces: List[Trace] = []
    insts = trace.instructions
    for start in range(0, len(insts) - interval + 1, interval):
        pieces.append(
            Trace(name=f"{trace.name}[{start}:{start + interval}]",
                  instructions=insts[start:start + interval])
        )
    return pieces


def concat_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Concatenate traces into one (sequence numbers are rewritten)."""
    instructions: List[DynamicInstruction] = []
    for piece in traces:
        instructions.extend(piece.instructions)
    for seq, inst in enumerate(instructions):
        inst.seq = seq
    return Trace(name=name, instructions=instructions)
