"""Functional simulator: interprets a program's CFG into a dynamic trace.

The simulator walks the control-flow graph from the entry block.  Each
block's terminating branch asks the block's branch behaviour for an
outcome (taken / not-taken, or an indirect target), and each memory
instruction asks its memory stream for an effective address.  The result
is a deterministic stream of :class:`~repro.isa.instruction.DynamicInstruction`.

There is no notion of program exit: workloads are steady-state kernels and
the caller chooses the dynamic instruction count, exactly as the paper
simulates fixed-size samples (100M instructions per SimPoint).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.isa.iclass import IClass
from repro.isa.instruction import DynamicInstruction
from repro.isa.program import Program
from repro.frontend.trace import Trace


class FunctionalSimulator:
    """Executes a :class:`Program`, yielding dynamic instructions.

    The simulator owns no microarchitectural state — branch predictors and
    caches are separate observers (:mod:`repro.branch`, :mod:`repro.cache`)
    driven by the emitted trace, mirroring the paper's extended
    ``sim-bpred`` / ``sim-cache`` profiling tools.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.reset()

    def reset(self) -> None:
        """Restart execution from the entry block with fresh behaviours."""
        self._current = self.program.entry
        self._index = 0
        self._seq = 0
        for behavior in self.program.branch_behaviors:
            behavior.reset()
        for stream in self.program.memory_streams:
            stream.reset()

    def run(self, n_instructions: int) -> Iterator[DynamicInstruction]:
        """Yield the next *n_instructions* dynamic instructions.

        Execution state (block, intra-block position, behaviour state)
        persists across calls, so consecutive ``run`` calls produce one
        contiguous stream.
        """
        program = self.program
        blocks = program.blocks
        behaviors = program.branch_behaviors
        streams = program.memory_streams
        emitted = 0
        while emitted < n_instructions:
            block = blocks[self._current]
            instructions = block.instructions
            last = len(instructions) - 1
            index = self._index
            static = instructions[index]
            pc = block.address + index * 8
            mem_addr: Optional[int] = None
            if static.mem_stream is not None:
                mem_addr = streams[static.mem_stream].next_address()
            if index == last:
                behavior = behaviors[block.branch_behavior]
                if static.iclass is IClass.INDIRECT_BRANCH:
                    target_idx = behavior.next_target()
                    next_bb = block.indirect_targets[target_idx]
                    taken = True
                else:
                    taken = behavior.next_taken()
                    next_bb = (block.taken_target if taken
                               else block.fallthrough)
                dyn = DynamicInstruction(
                    self._seq, pc, static.iclass, block.bb_id,
                    src_regs=static.src_regs, dst_reg=None,
                    mem_addr=None, taken=taken,
                    target=blocks[next_bb].address,
                )
                self._current = next_bb
                self._index = 0
            else:
                dyn = DynamicInstruction(
                    self._seq, pc, static.iclass, block.bb_id,
                    src_regs=static.src_regs, dst_reg=static.dst_reg,
                    mem_addr=mem_addr,
                )
                self._index = index + 1
            self._seq += 1
            emitted += 1
            yield dyn


def run_program(program: Program, n_instructions: int,
                warmup: int = 0) -> Trace:
    """Execute *program* and return a :class:`Trace`.

    Parameters
    ----------
    program:
        The workload to execute.
    n_instructions:
        Dynamic instructions to record.
    warmup:
        Instructions to execute and discard first (the paper skips the
        first 1B instructions in its phase experiments).  The warmup is
        extended to the next basic-block boundary so the recorded trace
        starts with a complete block.
    """
    sim = FunctionalSimulator(program)
    if warmup:
        discarded = None
        for discarded in sim.run(warmup):
            pass
        while discarded is not None and not discarded.is_branch:
            for discarded in sim.run(1):
                pass
    instructions = list(sim.run(n_instructions))
    # Renumber so trace sequence numbers start at zero even after warmup;
    # dependency-distance profiling relies on dense 0-based numbering.
    if warmup:
        for offset, inst in enumerate(instructions):
            inst.seq = offset
    return Trace(name=program.name, instructions=instructions)
