"""Static program representation: basic blocks and control-flow graphs.

A :class:`Program` is the unit the functional simulator executes and the
statistical profiler characterizes.  Every basic block ends in exactly one
branch instruction (conditional or indirect), matching the paper's basic
block granularity: the statistical flow graph's nodes are histories of
these blocks and the branch characteristics are recorded for the block's
terminating branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.isa.instruction import StaticInstruction

#: Instruction size in bytes; used to lay out code addresses for I-cache
#: and BTB behaviour.
INSTRUCTION_BYTES = 8


@dataclass
class BasicBlock:
    """A straight-line instruction sequence ending in a branch.

    Parameters
    ----------
    bb_id:
        Dense identifier (0-based) within the owning program.
    address:
        Address of the first instruction.
    instructions:
        The block's instructions; the final one must be a branch.
    taken_target / fallthrough:
        Successor block ids for conditional branches.
    indirect_targets:
        Successor block ids for indirect branches (chosen at run time by
        the block's branch behaviour).
    branch_behavior:
        Index of the branch-behaviour generator (in the owning program)
        that decides this block's branch outcomes.
    """

    bb_id: int
    address: int
    instructions: List[StaticInstruction]
    taken_target: int = -1
    fallthrough: int = -1
    indirect_targets: Tuple[int, ...] = ()
    branch_behavior: int = -1

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("basic block must contain at least one instruction")
        if self.instructions[-1].iclass not in BRANCH_CLASSES:
            raise ValueError("basic block must end in a branch")
        for inst in self.instructions[:-1]:
            if inst.iclass in BRANCH_CLASSES:
                raise ValueError("branch in the middle of a basic block")

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.instructions)

    @property
    def branch(self) -> StaticInstruction:
        """The terminating branch instruction."""
        return self.instructions[-1]

    @property
    def branch_pc(self) -> int:
        """Address of the terminating branch."""
        return self.address + (self.size - 1) * INSTRUCTION_BYTES

    @property
    def is_indirect(self) -> bool:
        return self.branch.iclass is IClass.INDIRECT_BRANCH

    def instruction_pc(self, index: int) -> int:
        """Address of the instruction at *index* within the block."""
        return self.address + index * INSTRUCTION_BYTES


@dataclass
class Program:
    """A static control-flow graph plus its run-time behaviour generators.

    The behaviour generators (branch behaviours and memory streams) are
    supplied by :mod:`repro.workloads`; the program stores them so a
    functional simulation is fully self-contained and reproducible.
    """

    name: str
    blocks: List[BasicBlock]
    entry: int = 0
    branch_behaviors: list = field(default_factory=list)
    memory_streams: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("program must contain at least one basic block")
        for expected, block in enumerate(self.blocks):
            if block.bb_id != expected:
                raise ValueError("basic block ids must be dense and ordered")
        n = len(self.blocks)
        for block in self.blocks:
            targets = [block.taken_target, block.fallthrough]
            targets.extend(block.indirect_targets)
            for target in targets:
                if target >= n:
                    raise ValueError(
                        f"block {block.bb_id} targets unknown block {target}"
                    )

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def static_instruction_count(self) -> int:
        return sum(block.size for block in self.blocks)

    def block(self, bb_id: int) -> BasicBlock:
        return self.blocks[bb_id]

    def block_at_address(self) -> Dict[int, int]:
        """Map from block start address to block id."""
        return {block.address: block.bb_id for block in self.blocks}

    def validate_reachability(self) -> Sequence[int]:
        """Return the blocks reachable from the entry (sanity checking)."""
        seen = set()
        stack = [self.entry]
        while stack:
            bb_id = stack.pop()
            if bb_id in seen or bb_id < 0:
                continue
            seen.add(bb_id)
            block = self.blocks[bb_id]
            if block.is_indirect:
                stack.extend(block.indirect_targets)
            else:
                stack.append(block.taken_target)
                stack.append(block.fallthrough)
        return sorted(seen)
