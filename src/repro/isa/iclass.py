"""The 12 semantic instruction classes of the paper (section 2.1.1).

The paper classifies instructions into: load, store, integer conditional
branch, floating-point conditional branch, indirect branch, integer alu,
integer multiply, integer divide, floating-point alu, floating-point
multiply, floating-point divide and floating-point square root.

Each class maps to a functional-unit kind and an execution latency,
mirroring SimpleScalar's resource model (Table 2 of the paper lists the
functional-unit pool; latencies follow sim-outorder's defaults).
"""

from __future__ import annotations

import enum


class IClass(enum.IntEnum):
    """Semantic instruction class (12 classes, paper section 2.1.1)."""

    LOAD = 0
    STORE = 1
    INT_COND_BRANCH = 2
    FP_COND_BRANCH = 3
    INDIRECT_BRANCH = 4
    INT_ALU = 5
    INT_MULT = 6
    INT_DIV = 7
    FP_ALU = 8
    FP_MULT = 9
    FP_DIV = 10
    FP_SQRT = 11


#: Classes that terminate a basic block.
BRANCH_CLASSES = frozenset(
    {IClass.INT_COND_BRANCH, IClass.FP_COND_BRANCH, IClass.INDIRECT_BRANCH}
)

#: Branches with a taken / not-taken direction to predict.
CONDITIONAL_BRANCH_CLASSES = frozenset(
    {IClass.INT_COND_BRANCH, IClass.FP_COND_BRANCH}
)

#: Classes that access the data memory hierarchy.
MEMORY_CLASSES = frozenset({IClass.LOAD, IClass.STORE})

#: Classes that produce a register value.  Branches and stores have no
#: destination operand; the synthetic-trace generator must never create a
#: dependency on them (paper section 2.2, step 4).
PRODUCING_CLASSES = frozenset(
    {
        IClass.LOAD,
        IClass.INT_ALU,
        IClass.INT_MULT,
        IClass.INT_DIV,
        IClass.FP_ALU,
        IClass.FP_MULT,
        IClass.FP_DIV,
        IClass.FP_SQRT,
    }
)


class FunctionalUnit(enum.IntEnum):
    """Functional-unit kinds of the baseline machine (paper Table 2)."""

    INT_ALU = 0
    LOAD_STORE = 1
    FP_ADDER = 2
    INT_MULT_DIV = 3
    FP_MULT_DIV = 4


_FU_FOR_CLASS = {
    IClass.LOAD: FunctionalUnit.LOAD_STORE,
    IClass.STORE: FunctionalUnit.LOAD_STORE,
    IClass.INT_COND_BRANCH: FunctionalUnit.INT_ALU,
    IClass.FP_COND_BRANCH: FunctionalUnit.FP_ADDER,
    IClass.INDIRECT_BRANCH: FunctionalUnit.INT_ALU,
    IClass.INT_ALU: FunctionalUnit.INT_ALU,
    IClass.INT_MULT: FunctionalUnit.INT_MULT_DIV,
    IClass.INT_DIV: FunctionalUnit.INT_MULT_DIV,
    IClass.FP_ALU: FunctionalUnit.FP_ADDER,
    IClass.FP_MULT: FunctionalUnit.FP_MULT_DIV,
    IClass.FP_DIV: FunctionalUnit.FP_MULT_DIV,
    IClass.FP_SQRT: FunctionalUnit.FP_MULT_DIV,
}

# Execution latencies (cycles spent in the functional unit), following
# sim-outorder's default operation latencies.  Loads add memory latency
# on top of this base (resolved by the cache hierarchy or by synthetic
# trace annotations).
_LATENCY_FOR_CLASS = {
    IClass.LOAD: 1,
    IClass.STORE: 1,
    IClass.INT_COND_BRANCH: 1,
    IClass.FP_COND_BRANCH: 2,
    IClass.INDIRECT_BRANCH: 1,
    IClass.INT_ALU: 1,
    IClass.INT_MULT: 3,
    IClass.INT_DIV: 20,
    IClass.FP_ALU: 2,
    IClass.FP_MULT: 4,
    IClass.FP_DIV: 12,
    IClass.FP_SQRT: 24,
}


def functional_unit(iclass: IClass) -> FunctionalUnit:
    """Return the functional-unit kind that executes *iclass*."""
    return _FU_FOR_CLASS[iclass]


def execution_latency(iclass: IClass) -> int:
    """Return the base execution latency in cycles for *iclass*."""
    return _LATENCY_FOR_CLASS[iclass]


def is_branch(iclass: IClass) -> bool:
    """True if *iclass* terminates a basic block."""
    return iclass in BRANCH_CLASSES


def produces_register(iclass: IClass) -> bool:
    """True if *iclass* writes a destination register."""
    return iclass in PRODUCING_CLASSES
