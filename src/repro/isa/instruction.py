"""Static and dynamic instruction representations.

A :class:`StaticInstruction` is one slot of a basic block in a program's
static code.  A :class:`DynamicInstruction` is one element of an executed
instruction stream, produced by the functional simulator
(:mod:`repro.frontend.functional`) — it carries the concrete register
names, memory address and branch outcome that profiling and
execution-driven simulation consume.

Dynamic instructions live in traces of up to millions of elements, so the
class uses ``__slots__`` and plain attributes rather than dataclass
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.iclass import BRANCH_CLASSES, PRODUCING_CLASSES, IClass


@dataclass(frozen=True)
class StaticInstruction:
    """One instruction slot of a basic block.

    Parameters
    ----------
    iclass:
        Semantic instruction class.
    src_regs:
        Architectural source register numbers (0..63).  The paper records
        the *number* of source operands per instruction and a dependency
        distance per operand; both are derived from these registers during
        profiling.
    dst_reg:
        Destination register, or ``None`` for branches and stores.
    mem_stream:
        For loads/stores: index of the memory-stream generator (in the
        owning program) that produces this instruction's effective
        addresses.  ``None`` for non-memory instructions.
    """

    iclass: IClass
    src_regs: Tuple[int, ...] = field(default=())
    dst_reg: Optional[int] = None
    mem_stream: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dst_reg is not None and self.iclass not in PRODUCING_CLASSES:
            raise ValueError(
                f"{self.iclass.name} cannot have a destination register"
            )
        if self.iclass in BRANCH_CLASSES and self.dst_reg is not None:
            raise ValueError("branches have no destination operand")

    @property
    def is_branch(self) -> bool:
        return self.iclass in BRANCH_CLASSES

    @property
    def is_load(self) -> bool:
        return self.iclass is IClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.iclass is IClass.STORE

    @property
    def produces_register(self) -> bool:
        return self.dst_reg is not None


class DynamicInstruction:
    """One executed instruction of a dynamic trace.

    Attributes
    ----------
    seq:
        Dynamic sequence number (0-based position in the trace).
    pc:
        Instruction address (bytes).
    iclass:
        Semantic class.
    bb_id:
        Identifier of the basic block this instruction belongs to.
    src_regs / dst_reg:
        Architectural registers, as in :class:`StaticInstruction`.
    mem_addr:
        Effective address for loads/stores, else ``None``.
    taken:
        For branches: whether the branch was taken.
    target:
        For branches: the next instruction's address (fall-through or
        branch target).
    """

    __slots__ = (
        "seq",
        "pc",
        "iclass",
        "bb_id",
        "src_regs",
        "dst_reg",
        "mem_addr",
        "taken",
        "target",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        iclass: IClass,
        bb_id: int,
        src_regs: Tuple[int, ...] = (),
        dst_reg: Optional[int] = None,
        mem_addr: Optional[int] = None,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.iclass = iclass
        self.bb_id = bb_id
        self.src_regs = src_regs
        self.dst_reg = dst_reg
        self.mem_addr = mem_addr
        self.taken = taken
        self.target = target

    @property
    def is_branch(self) -> bool:
        return self.iclass in BRANCH_CLASSES

    @property
    def is_load(self) -> bool:
        return self.iclass is IClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.iclass is IClass.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicInstruction(seq={self.seq}, pc={self.pc:#x}, "
            f"iclass={self.iclass.name}, bb={self.bb_id})"
        )
