"""Instruction-set layer: instruction classes, static programs, basic blocks.

The paper profiles Alpha binaries; we substitute a small RISC-style ISA
rich enough to exercise every mechanism the methodology depends on:
the 12 semantic instruction classes of section 2.1.1, register operands
(for dependency-distance profiling), memory operands (for cache
profiling) and conditional/indirect control flow (for branch profiling).
"""

from repro.isa.iclass import (
    IClass,
    BRANCH_CLASSES,
    CONDITIONAL_BRANCH_CLASSES,
    MEMORY_CLASSES,
    PRODUCING_CLASSES,
    execution_latency,
    functional_unit,
)
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.isa.program import BasicBlock, Program

__all__ = [
    "IClass",
    "BRANCH_CLASSES",
    "CONDITIONAL_BRANCH_CLASSES",
    "MEMORY_CLASSES",
    "PRODUCING_CLASSES",
    "execution_latency",
    "functional_unit",
    "StaticInstruction",
    "DynamicInstruction",
    "BasicBlock",
    "Program",
]
