"""``repro.health`` — end-to-end deadlines, hang/memory containment,
and the unified degradation ladder.

Three cooperating pieces (see ``docs/robustness.md``):

* :mod:`repro.health.budget` — the :class:`HealthPolicy` /
  :class:`Budget` pair: deadline propagation with cooperative cancel
  checkpoints inside the hot loops, per-point progress heartbeats for
  the supervisor's hang watchdog, and the ``/proc/self/status`` RSS
  guardrail (soft ceiling degrades, hard ceiling fails cleanly);
* :mod:`repro.health.ladder` — per-dependency circuit breakers with an
  explicit rung table (vector→scalar, shared→local tables,
  parallel→serial, read-write→read-bypass cache, full→lean memory),
  every rung change observable as ``health.*`` events and metrics;
* :mod:`repro.health.canary` — the sampled runtime statistical canary
  on the vector path that auto-trips vector→scalar on drift.
"""

from repro.health.budget import (
    BEAT_INTERVAL,
    Budget,
    HealthPolicy,
    active_budget,
    check_expired,
    checkpoint,
    install_budget,
    rss_mb,
)
from repro.health.canary import maybe_check_columnar, reset_canary
from repro.health.ladder import (
    RUNGS,
    DegradationLadder,
    get_ladder,
    reset_ladder,
)

__all__ = [
    "BEAT_INTERVAL", "Budget", "HealthPolicy", "RUNGS",
    "DegradationLadder", "active_budget", "check_expired", "checkpoint",
    "get_ladder", "install_budget", "maybe_check_columnar",
    "reset_canary", "reset_ladder", "rss_mb",
]
