"""Sampled statistical canary on the vector path.

The columnar batch generator draws from the same distributions as the
scalar generator but through different kernels; a regression there
does not crash — it silently skews every downstream metric.  The
differential fuzzer catches such drift offline; this canary catches it
*at runtime*: every Nth vector evaluation (``canary`` in the health
spec) converts the freshly generated columnar trace and runs it
through the same statistical acceptance gate the fuzzer uses
(:mod:`repro.fuzz.acceptance`).  On drift it trips the vector breaker
on the degradation ladder and raises the retryable
:class:`~repro.errors.CanaryDriftError`, so the evaluation's retry
lands on the scalar rung and the sweep finishes green — degraded, not
poisoned.

``canary-force=1`` treats every sampled report as failed; it is the
deterministic drill used by tests and the hang-smoke CI job to prove
the trip-and-degrade path end to end.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CanaryDriftError
from repro.health.budget import HealthPolicy, active_budget
from repro.health.ladder import get_ladder
from repro.obs import events
from repro.obs.metrics import get_registry

#: Vector evaluations seen by this process (the sampling clock).
_EVALS = 0


def reset_canary() -> None:
    """Restart the sampling clock (tests)."""
    global _EVALS
    _EVALS = 0


def _policy() -> Optional[HealthPolicy]:
    budget = active_budget()
    return budget.policy if budget is not None else None


def maybe_check_columnar(profile, columnar) -> None:
    """Run the sampled canary against *columnar* (a
    :class:`~repro.core.columnar.ColumnarTrace`) freshly drawn from
    *profile*; no-op outside the sampling schedule."""
    global _EVALS
    policy = _policy()
    if policy is None or policy.canary_interval <= 0:
        return
    _EVALS += 1
    if (_EVALS - 1) % policy.canary_interval != 0:
        return
    from repro.fuzz.acceptance import ToleranceConfig, acceptance_report

    get_registry().counter("health.canary_checks").inc()
    report = acceptance_report(profile, columnar.to_synthetic_trace(),
                               ToleranceConfig())
    drifted = policy.canary_force or not report.passed
    if not drifted:
        return
    detail = ("forced by canary-force" if policy.canary_force
              else report.summary())
    get_registry().counter("health.canary_failures").inc()
    events.emit(
        "health.canary_drift", level="warning",
        msg=f"vector canary drift: {detail}; tripping vector -> scalar",
        forced=policy.canary_force, detail=detail)
    get_ladder().trip("vector", reason="canary drift")
    raise CanaryDriftError(f"vector canary drift: {detail}")


__all__ = ["maybe_check_columnar", "reset_canary"]
