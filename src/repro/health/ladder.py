"""The degradation ladder: one explicit rung table per dependency.

Before this module the codebase already degraded gracefully — the
columnar path fell back to the scalar generator, vanished shared-memory
tables were rebuilt locally, a barren pool fell back to serial, a
flaky cache read counted as a miss — but each fallback was an ad-hoc
``except`` clause that left no trace.  The ladder makes every one of
those transitions *explicit* and *observable*: a per-dependency circuit
breaker holds the current rung, every rung change is emitted as a
``health.rung_change`` event plus ``health.rung.<dependency>`` gauge,
and the daemon's ``health`` verb (surfaced in ``repro top``) renders
the whole table.

Breakers are **process-local**: a pool worker that trips its vector
breaker degrades its own evaluations without a cross-process consensus
protocol.  That is the correct scope — the conditions that trip a rung
(RSS pressure, drifting draws, a vanished shm segment) are properties
of one process.

The rung table (primary → degraded):

==========  ============  ============  ====================================
dependency  primary       degraded      tripped by
==========  ============  ============  ====================================
vector      vector        scalar        statistical canary drift, soft RSS
tables      shared        local         shm attach failure in a worker
pool        parallel      serial        pool rebuild budget exhausted
cache       read-write    read-bypass   consecutive cache IO failures
memory      full          lean          soft RSS ceiling breached
==========  ============  ============  ====================================
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.obs import events
from repro.obs.metrics import get_registry

#: dependency -> (primary rung, degraded rung).
RUNGS: Dict[str, tuple] = {
    "vector": ("vector", "scalar"),
    "tables": ("shared", "local"),
    "pool": ("parallel", "serial"),
    "cache": ("read-write", "read-bypass"),
    "memory": ("full", "lean"),
}

#: Consecutive failures a counted breaker absorbs before opening.
#: ``trip()`` bypasses the count (one strike) — used for conditions
#: that are definitive on first sight (canary drift, shm attach
#: failure); ``note_failure()`` honors it — used for conditions that
#: are only meaningful as a streak (cache IO flakes).
DEFAULT_THRESHOLD = 5


class CircuitBreaker:
    """One dependency's breaker: closed = primary rung, open =
    degraded rung.  ``note_success`` resets the failure streak but
    never closes an open breaker — rungs only move down within one
    process lifetime, so a sweep's results stay internally
    consistent."""

    def __init__(self, dependency: str,
                 threshold: int = DEFAULT_THRESHOLD) -> None:
        self.dependency = dependency
        self.threshold = threshold
        self.failures = 0
        self.open = False
        self.reason = ""

    @property
    def rung(self) -> str:
        primary, degraded = RUNGS[self.dependency]
        return degraded if self.open else primary

    def snapshot(self) -> Dict[str, object]:
        primary, degraded = RUNGS[self.dependency]
        return {
            "rung": self.rung,
            "degraded": self.open,
            "primary": primary,
            "failures": self.failures,
            "reason": self.reason,
        }


class DegradationLadder:
    """All breakers of one process, behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._breakers = {name: CircuitBreaker(name) for name in RUNGS}

    def _open(self, breaker: CircuitBreaker, reason: str) -> None:
        # Caller holds the lock.
        primary, degraded = RUNGS[breaker.dependency]
        breaker.open = True
        breaker.reason = reason
        registry = get_registry()
        registry.counter("health.breaker_trips").inc()
        registry.counter("health.rung_changes").inc()
        registry.gauge(f"health.rung.{breaker.dependency}").set(1)
        events.emit(
            "health.breaker_trip", level="warning",
            msg=f"{breaker.dependency} breaker open: {reason}",
            dependency=breaker.dependency, reason=reason,
            failures=breaker.failures)
        events.emit(
            "health.rung_change", level="warning",
            msg=f"{breaker.dependency}: {primary} -> {degraded} "
                f"({reason})",
            dependency=breaker.dependency, rung_from=primary,
            rung_to=degraded, reason=reason)

    def trip(self, dependency: str, reason: str = "") -> bool:
        """Open *dependency*'s breaker immediately (one strike).
        Returns True when this call changed the rung."""
        with self._lock:
            breaker = self._breakers[dependency]
            if breaker.open:
                return False
            breaker.failures += 1
            self._open(breaker, reason)
            return True

    def note_failure(self, dependency: str, reason: str = "") -> bool:
        """Record one failure against a counted breaker; opens it once
        the consecutive-failure streak reaches the threshold.  Returns
        True when this call opened the breaker."""
        with self._lock:
            breaker = self._breakers[dependency]
            if breaker.open:
                return False
            breaker.failures += 1
            if breaker.failures < breaker.threshold:
                return False
            self._open(breaker, reason)
            return True

    def note_success(self, dependency: str) -> None:
        """A primary-rung operation succeeded: reset the streak."""
        with self._lock:
            breaker = self._breakers[dependency]
            if not breaker.open:
                breaker.failures = 0

    def is_open(self, dependency: str) -> bool:
        with self._lock:
            return self._breakers[dependency].open

    def rung(self, dependency: str) -> str:
        with self._lock:
            return self._breakers[dependency].rung

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready rung table (the ``health`` verb's payload)."""
        with self._lock:
            return {name: breaker.snapshot()
                    for name, breaker in sorted(self._breakers.items())}


_LADDER: Optional[DegradationLadder] = None
_LADDER_LOCK = threading.Lock()


def get_ladder() -> DegradationLadder:
    """The process-wide ladder (created on first use)."""
    global _LADDER
    with _LADDER_LOCK:
        if _LADDER is None:
            _LADDER = DegradationLadder()
        return _LADDER


def reset_ladder() -> None:
    """Drop the process ladder (tests; a fresh pool worker starts
    fresh anyway because it is a fresh process)."""
    global _LADDER
    with _LADDER_LOCK:
        _LADDER = None


__all__ = [
    "RUNGS", "DEFAULT_THRESHOLD", "CircuitBreaker", "DegradationLadder",
    "get_ladder", "reset_ladder",
]
