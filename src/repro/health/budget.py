"""End-to-end health budgets: deadlines, RSS guardrails, heartbeats.

One :class:`HealthPolicy` travels the whole stack — CLI flag or
``REPRO_HEALTH`` environment spec → :class:`~repro.dse.engine.
SweepEngine` → pool-worker initargs — and one :class:`Budget` per
process enforces it from *cooperative checkpoints* planted inside the
hot loops (the superscalar pipeline's cycle loop, both synthesis
walks).  A checkpoint is a single integer comparison in the loop plus,
every so often, three cheap checks:

* **deadline** — wall clock past the absolute budget raises
  :class:`~repro.errors.DeadlineExceededError` *inside* the
  simulation, so an over-budget point stops within milliseconds
  instead of at the next pool barrier;
* **heartbeat** — progress (cycles or instructions committed) is
  written into the worker's lease file, which the
  :class:`~repro.dse.supervisor.PoolSupervisor` polls: a live-but-hung
  worker whose beat goes stale is killed and attributed exactly like a
  crashed one;
* **RSS** — ``/proc/self/status`` VmRSS against two ceilings: the soft
  ceiling trips the memory and vector rungs of the degradation ladder
  (drop the big allocations, keep the sweep alive), the hard ceiling
  dumps the flight recorder and raises
  :class:`~repro.errors.MemoryBudgetError` — a clean structured
  failure instead of an OOM-killer lottery.

The spec grammar mirrors ``REPRO_CHAOS``::

    REPRO_HEALTH="deadline=120;soft-rss=512;hard-rss=1024;hang-timeout=10"

Keys: ``deadline`` (seconds), ``soft-rss`` / ``hard-rss`` (MB),
``hang-timeout`` (seconds; 0 disables the watchdog), ``poll-interval``
(supervisor watchdog poll, seconds), ``canary`` (run the vector
statistical canary every Nth vector evaluation; 0 = off) and
``canary-force`` (1 = treat every canary as failed — the forced-drift
test hook).
"""

from __future__ import annotations

import gc
import json
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import (
    DeadlineExceededError,
    HealthSpecError,
    MemoryBudgetError,
)
from repro.obs import events
from repro.obs.metrics import get_registry

#: Minimum wall-clock gap between two heartbeat writes (seconds); the
#: checkpoints fire far more often than this, the throttle keeps the
#: lease-file traffic negligible.
BEAT_INTERVAL = 0.2

#: Minimum wall-clock gap between two /proc/self/status reads.
RSS_INTERVAL = 0.5


@dataclass(frozen=True)
class HealthPolicy:
    """The containment budget one run operates under.

    ``deadline`` is *relative* seconds here; the engine pins it to an
    absolute wall-clock instant when the sweep starts so every worker
    races the same clock.
    """

    deadline: Optional[float] = None
    soft_rss_mb: Optional[float] = None
    hard_rss_mb: Optional[float] = None
    hang_timeout: float = 30.0
    poll_interval: float = 0.5
    canary_interval: int = 0
    canary_force: bool = False

    def __post_init__(self) -> None:
        for name in ("deadline", "soft_rss_mb", "hard_rss_mb"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise HealthSpecError(
                    f"{name} must be positive, got {value}")
        if self.hang_timeout < 0:
            raise HealthSpecError(
                f"hang_timeout must be >= 0, got {self.hang_timeout}")
        if self.poll_interval <= 0:
            raise HealthSpecError(
                f"poll_interval must be positive, "
                f"got {self.poll_interval}")
        if self.canary_interval < 0:
            raise HealthSpecError(
                f"canary interval must be >= 0, "
                f"got {self.canary_interval}")
        if (self.soft_rss_mb is not None and self.hard_rss_mb is not None
                and self.hard_rss_mb < self.soft_rss_mb):
            raise HealthSpecError(
                f"hard-rss ({self.hard_rss_mb}) must be >= soft-rss "
                f"({self.soft_rss_mb})")

    # -- spec / payload round-trips -----------------------------------

    @classmethod
    def parse(cls, spec: str) -> "HealthPolicy":
        """Parse a ``REPRO_HEALTH``-style spec string."""
        kwargs: Dict[str, Any] = {}
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if "=" not in segment:
                raise HealthSpecError(
                    f"health spec segment {segment!r} is not key=value")
            key, _, raw = segment.partition("=")
            key = key.strip()
            raw = raw.strip()
            try:
                if key == "deadline":
                    kwargs["deadline"] = float(raw)
                elif key == "soft-rss":
                    kwargs["soft_rss_mb"] = float(raw)
                elif key == "hard-rss":
                    kwargs["hard_rss_mb"] = float(raw)
                elif key == "hang-timeout":
                    kwargs["hang_timeout"] = float(raw)
                elif key == "poll-interval":
                    kwargs["poll_interval"] = float(raw)
                elif key == "canary":
                    kwargs["canary_interval"] = int(raw)
                elif key == "canary-force":
                    kwargs["canary_force"] = raw not in ("0", "false", "")
                else:
                    raise HealthSpecError(
                        f"unknown health spec key {key!r}")
            except ValueError as exc:
                raise HealthSpecError(
                    f"bad value for health key {key!r}: {raw!r}"
                ) from exc
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> "HealthPolicy":
        spec = os.environ.get("REPRO_HEALTH", "")
        return cls.parse(spec) if spec else cls()

    def with_deadline(self,
                      deadline: Optional[float]) -> "HealthPolicy":
        """This policy with the deadline replaced (CLI flag wins over
        the environment spec)."""
        if deadline is None:
            return self
        return replace(self, deadline=deadline)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "deadline": self.deadline,
            "soft_rss_mb": self.soft_rss_mb,
            "hard_rss_mb": self.hard_rss_mb,
            "hang_timeout": self.hang_timeout,
            "poll_interval": self.poll_interval,
            "canary_interval": self.canary_interval,
            "canary_force": self.canary_force,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "HealthPolicy":
        return cls(**payload)


def rss_mb() -> Optional[float]:
    """Resident set size in MB from ``/proc/self/status``, or None on
    platforms without procfs (the guardrail degrades to inactive)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, IndexError, ValueError):
        return None
    return None


class Budget:
    """One process's live enforcement state for a policy."""

    def __init__(self, policy: HealthPolicy,
                 deadline_at: Optional[float] = None) -> None:
        self.policy = policy
        self.deadline_at = deadline_at
        self._lease_path: Optional[Path] = None
        self._task_id: Optional[str] = None
        self._dispatch = 1
        self._last_beat = 0.0
        self._last_rss = 0.0
        self._soft_tripped = False

    # -- heartbeat target ---------------------------------------------

    def begin_task(self, lease_dir: Optional[str], task_id: str,
                   dispatch: int = 1) -> None:
        """Point subsequent heartbeats at *task_id*'s lease file."""
        self._task_id = task_id
        self._dispatch = dispatch
        self._lease_path = None
        if lease_dir:
            from repro.runner.checkpoint import sanitize_unit_id

            self._lease_path = (Path(lease_dir)
                                / (sanitize_unit_id(task_id) + ".lease"))
        self._last_beat = 0.0

    def end_task(self) -> None:
        self._task_id = None
        self._lease_path = None

    def _write_beat(self, progress: int) -> None:
        if self._lease_path is None:
            return
        payload = {
            "task_id": self._task_id,
            "pid": os.getpid(),
            "dispatch": self._dispatch,
            "beat": time.time(),
            "progress": int(progress),
        }
        try:
            self._lease_path.write_text(json.dumps(payload))
        except OSError:
            pass  # a lost beat is at worst a late watchdog kill

    # -- the checkpoint -----------------------------------------------

    def expired(self) -> bool:
        return (self.deadline_at is not None
                and time.time() > self.deadline_at)

    def checkpoint(self, progress: int = 0) -> None:
        """The cooperative cancel point the hot loops call.

        Order matters: the heartbeat is written *before* the deadline
        check so a point that dies on the deadline still leaves a
        fresh beat (the supervisor must attribute it to the deadline,
        not to a hang).
        """
        now = time.time()
        if now - self._last_beat >= BEAT_INTERVAL:
            self._last_beat = now
            self._write_beat(progress)
        if self.deadline_at is not None and now > self.deadline_at:
            get_registry().counter("health.deadlines_exceeded").inc()
            events.emit(
                "health.deadline_exceeded", level="warning",
                msg=f"deadline exceeded "
                    f"({now - self.deadline_at:.1f}s over) "
                    f"in {self._task_id or 'serial run'}",
                task=self._task_id, over_by=round(now - self.deadline_at, 3))
            raise DeadlineExceededError(
                f"health deadline exceeded "
                f"({now - self.deadline_at:.1f}s past budget)")
        policy = self.policy
        if ((policy.soft_rss_mb is not None
             or policy.hard_rss_mb is not None)
                and now - self._last_rss >= RSS_INTERVAL):
            self._last_rss = now
            self._check_rss()

    def _check_rss(self) -> None:
        current = rss_mb()
        if current is None:
            return
        policy = self.policy
        if (policy.hard_rss_mb is not None
                and current >= policy.hard_rss_mb):
            get_registry().counter("health.rss_hard_breaches").inc()
            events.emit(
                "health.rss_hard", level="error",
                msg=f"RSS {current:.0f} MB >= hard ceiling "
                    f"{policy.hard_rss_mb:.0f} MB; failing point cleanly",
                rss_mb=round(current, 1),
                ceiling_mb=policy.hard_rss_mb, task=self._task_id)
            try:
                from repro.obs import flightrec

                flightrec.dump("rss-hard-ceiling",
                               rss_mb=round(current, 1),
                               ceiling_mb=policy.hard_rss_mb,
                               task=self._task_id)
            except Exception:
                pass
            raise MemoryBudgetError(
                f"RSS {current:.0f} MB crossed the hard ceiling "
                f"{policy.hard_rss_mb:.0f} MB")
        if (policy.soft_rss_mb is not None
                and current >= policy.soft_rss_mb
                and not self._soft_tripped):
            self._soft_tripped = True
            get_registry().counter("health.rss_soft_breaches").inc()
            events.emit(
                "health.rss_soft", level="warning",
                msg=f"RSS {current:.0f} MB >= soft ceiling "
                    f"{policy.soft_rss_mb:.0f} MB; degrading to the "
                    f"lean rung",
                rss_mb=round(current, 1),
                ceiling_mb=policy.soft_rss_mb, task=self._task_id)
            from repro.health.ladder import get_ladder

            ladder = get_ladder()
            ladder.trip("memory", reason="soft RSS ceiling")
            # The columnar path holds the largest per-point
            # allocations; the lean rung routes evaluations through
            # the scalar generator.
            ladder.trip("vector", reason="soft RSS ceiling")
            gc.collect()


#: The process's installed budget; checkpoints are no-ops without one.
_ACTIVE: Optional[Budget] = None


def install_budget(budget: Optional[Budget]) -> None:
    global _ACTIVE
    _ACTIVE = budget


def active_budget() -> Optional[Budget]:
    return _ACTIVE


def checkpoint(progress: int = 0) -> None:
    """Module-level cancel point (what the hot loops import).  A
    single None check when no budget is installed."""
    if _ACTIVE is not None:
        _ACTIVE.checkpoint(progress)


def check_expired() -> None:
    """Fail fast before starting new work when the deadline already
    passed (cheaper than waiting for the first in-loop checkpoint)."""
    if _ACTIVE is not None and _ACTIVE.expired():
        _ACTIVE.checkpoint()  # raises with the full event/counter path


__all__ = [
    "BEAT_INTERVAL", "RSS_INTERVAL", "HealthPolicy", "Budget",
    "rss_mb", "install_budget", "active_budget", "checkpoint",
    "check_expired",
]
