"""The memory hierarchy of the Table 2 machine.

Separate L1 instruction and data caches back a unified L2; instruction
and data TLBs translate in parallel.  The hierarchy distinguishes L2
misses caused by instruction fetches from those caused by data accesses,
because the paper's statistical profile records them separately
(section 2.1.2, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig
from repro.cache.cache import SetAssociativeCache
from repro.cache.tlb import TranslationLookasideBuffer


@dataclass(frozen=True)
class InstructionAccessResult:
    """Locality events for one instruction fetch."""

    il1_miss: bool
    l2_miss: bool
    itlb_miss: bool


@dataclass(frozen=True)
class DataAccessResult:
    """Locality events for one data access."""

    dl1_miss: bool
    l2_miss: bool
    dtlb_miss: bool


class CacheHierarchy:
    """L1I + L1D + unified L2 + I/D TLBs, with latency assignment.

    The latency helpers implement the synthetic-trace simulator's rules
    (paper section 2.3): a load's latency is set by the deepest level it
    misses in; an I-cache miss stalls the fetch engine for the
    corresponding fill latency.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.il1 = SetAssociativeCache(config.il1)
        self.dl1 = SetAssociativeCache(config.dl1)
        self.l2 = SetAssociativeCache(config.l2)
        self.itlb = TranslationLookasideBuffer(config.itlb)
        self.dtlb = TranslationLookasideBuffer(config.dtlb)
        self.l2_instruction_accesses = 0
        self.l2_instruction_misses = 0
        self.l2_data_accesses = 0
        self.l2_data_misses = 0

    # ----------------------------------------------------------- access
    def access_instruction(self, pc: int) -> InstructionAccessResult:
        """Fetch the instruction at *pc* through IL1 -> unified L2."""
        itlb_miss = not self.itlb.access(pc)
        il1_miss = not self.il1.access(pc)
        l2_miss = False
        if il1_miss:
            self.l2_instruction_accesses += 1
            l2_miss = not self.l2.access(pc)
            if l2_miss:
                self.l2_instruction_misses += 1
        return InstructionAccessResult(il1_miss, l2_miss, itlb_miss)

    def access_data(self, address: int, is_store: bool = False
                    ) -> DataAccessResult:
        """Access data at *address* through DL1 -> unified L2.

        Stores exercise the hierarchy (write-allocate) but the paper's
        synthetic traces only annotate loads; the *is_store* flag exists
        so callers can separate statistics.
        """
        dtlb_miss = not self.dtlb.access(address)
        dl1_miss = not self.dl1.access(address)
        l2_miss = False
        if dl1_miss:
            self.l2_data_accesses += 1
            l2_miss = not self.l2.access(address)
            if l2_miss:
                self.l2_data_misses += 1
        return DataAccessResult(dl1_miss, l2_miss, dtlb_miss)

    # ---------------------------------------------------------- latency
    def load_latency(self, result: DataAccessResult) -> int:
        """Latency in cycles for a load with the given locality events."""
        config = self.config
        if result.l2_miss:
            latency = config.memory_latency
        elif result.dl1_miss:
            latency = config.l2.hit_latency
        else:
            latency = config.dl1.hit_latency
        if result.dtlb_miss:
            latency += config.dtlb.miss_latency
        return latency

    def fetch_stall(self, result: InstructionAccessResult) -> int:
        """Fetch-engine stall cycles for an instruction access (0 when
        everything hits)."""
        config = self.config
        stall = 0
        if result.l2_miss:
            stall = config.memory_latency
        elif result.il1_miss:
            stall = config.l2.hit_latency
        if result.itlb_miss:
            stall += config.itlb.miss_latency
        return stall

    # ------------------------------------------------------- statistics
    def miss_rates(self) -> dict:
        """The six miss rates of the paper's statistical profile."""
        def rate(misses: int, accesses: int) -> float:
            return misses / accesses if accesses else 0.0

        return {
            "il1": self.il1.miss_rate,
            "l2_instruction": rate(self.l2_instruction_misses,
                                   self.l2_instruction_accesses),
            "dl1": self.dl1.miss_rate,
            "l2_data": rate(self.l2_data_misses, self.l2_data_accesses),
            "itlb": self.itlb.miss_rate,
            "dtlb": self.dtlb.miss_rate,
        }
