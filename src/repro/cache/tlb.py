"""Translation lookaside buffer: a set-associative cache of pages."""

from __future__ import annotations

from typing import List

from repro.config import TLBConfig


class TranslationLookasideBuffer:
    """LRU set-associative TLB (paper Table 2: 32-entry, 8-way, 4KB
    pages)."""

    __slots__ = ("config", "_sets", "_page_shift", "_num_sets",
                 "accesses", "misses")

    def __init__(self, config: TLBConfig) -> None:
        page = config.page_bytes
        if page & (page - 1):
            raise ValueError("page size must be a power of two")
        self.config = config
        self._page_shift = page.bit_length() - 1
        self._num_sets = config.num_sets
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate *address*; return True on TLB hit."""
        self.accesses += 1
        page = address >> self._page_shift
        ways = self._sets[page % self._num_sets]
        try:
            ways.remove(page)
        except ValueError:
            self.misses += 1
            if len(ways) >= self.config.associativity:
                ways.pop(0)
            ways.append(page)
            return False
        ways.append(page)
        return True

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_statistics(self) -> None:
        self.accesses = 0
        self.misses = 0
