"""Single-pass multi-configuration cache profiling (cheetah-style).

The paper notes that profiling for many cache configurations need not
multiply simulation time, citing the cheetah simulator: for
fully-associative LRU caches, one pass computing *stack distances*
yields the miss rate of every capacity simultaneously (Mattson's
inclusion property).  This module provides that tool for design-space
studies over cache capacity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


class StackDistanceProfiler:
    """Computes LRU stack-distance histograms over cache lines.

    ``miss_rate(capacity_lines)`` afterwards gives the miss rate of a
    fully-associative LRU cache with that many lines — for every
    capacity, from one profiling pass.
    """

    def __init__(self, line_bytes: int = 32) -> None:
        if line_bytes & (line_bytes - 1) or line_bytes <= 0:
            raise ValueError("line size must be a positive power of two")
        self._line_shift = line_bytes.bit_length() - 1
        self._stack: List[int] = []  # MRU at the end
        self._histogram: Dict[int, int] = {}
        self._cold_misses = 0
        self._accesses = 0

    def access(self, address: int) -> None:
        """Record one access (updates the LRU stack and histogram)."""
        self._accesses += 1
        line = address >> self._line_shift
        stack = self._stack
        try:
            position = len(stack) - 1 - stack[::-1].index(line)
        except ValueError:
            self._cold_misses += 1
            stack.append(line)
            return
        distance = len(stack) - 1 - position
        self._histogram[distance] = self._histogram.get(distance, 0) + 1
        del stack[position]
        stack.append(line)

    def profile(self, addresses: Iterable[int]) -> None:
        for address in addresses:
            self.access(address)

    @property
    def accesses(self) -> int:
        return self._accesses

    def miss_rate(self, capacity_lines: int) -> float:
        """Miss rate of a fully-associative LRU cache of
        *capacity_lines* lines (inclusion property: an access with stack
        distance >= capacity misses)."""
        if capacity_lines < 1:
            raise ValueError("capacity must be >= 1 line")
        if self._accesses == 0:
            return 0.0
        hits = sum(count for distance, count in self._histogram.items()
                   if distance < capacity_lines)
        return (self._accesses - hits) / self._accesses

    def miss_rates(self, capacities: Iterable[int]) -> Dict[int, float]:
        """Miss rate per capacity, all from the single profiling pass."""
        return {capacity: self.miss_rate(capacity)
                for capacity in capacities}
