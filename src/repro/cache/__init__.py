"""Cache and TLB substrate.

Provides the set-associative caches and TLBs of the paper's Table 2
machine, the three-level hierarchy used both for cache profiling (the six
miss rates of section 2.1.2) and by the execution-driven pipeline, and a
single-pass multi-configuration profiler in the spirit of the cheetah
simulator the paper cites.
"""

from repro.cache.cache import SetAssociativeCache
from repro.cache.tlb import TranslationLookasideBuffer
from repro.cache.hierarchy import (
    CacheHierarchy,
    DataAccessResult,
    InstructionAccessResult,
)
from repro.cache.cheetah import StackDistanceProfiler

__all__ = [
    "SetAssociativeCache",
    "TranslationLookasideBuffer",
    "CacheHierarchy",
    "DataAccessResult",
    "InstructionAccessResult",
    "StackDistanceProfiler",
]
