"""A set-associative cache with LRU replacement.

Only hit/miss behaviour is modeled — no data storage — because the
methodology needs miss *rates* (profiling) and miss *latencies*
(simulation), never values.  Writes allocate (write-allocate,
write-back), matching SimpleScalar's default data caches.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import CacheConfig


class SetAssociativeCache:
    """LRU set-associative cache over byte addresses."""

    __slots__ = ("config", "_sets", "_line_shift", "_num_sets",
                 "accesses", "misses")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        line = config.line_bytes
        if line & (line - 1):
            raise ValueError("line size must be a power of two")
        self._line_shift = line.bit_length() - 1
        self._num_sets = config.num_sets
        # Each set is an LRU list of line tags, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access *address*; return True on hit.  Misses allocate."""
        self.accesses += 1
        line = address >> self._line_shift
        ways = self._sets[line % self._num_sets]
        try:
            ways.remove(line)
        except ValueError:
            self.misses += 1
            if len(ways) >= self.config.associativity:
                ways.pop(0)
            ways.append(line)
            return False
        ways.append(line)
        return True

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or counters."""
        line = address >> self._line_shift
        return line in self._sets[line % self._num_sets]

    @property
    def miss_rate(self) -> float:
        """Observed miss rate so far (0.0 if never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_statistics(self) -> None:
        self.accesses = 0
        self.misses = 0

    def occupancy(self) -> int:
        """Number of valid lines (testing/inspection aid)."""
        return sum(len(ways) for ways in self._sets)

    def contents(self) -> Dict[int, List[int]]:
        """Snapshot of set index -> resident line tags (testing aid)."""
        return {index: list(ways)
                for index, ways in enumerate(self._sets) if ways}
