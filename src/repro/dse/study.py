"""High-level design-space study: profile once, sweep fast, verify the
interesting region slowly (the paper's section 4.6 protocol).

This is the orchestration layer shared by the ``sec46`` experiment, the
``repro dse`` CLI command and the serial-vs-parallel benchmark: prepare
a workload, measure its statistical profile, expand a
:class:`~repro.dse.space.SweepSpec`, evaluate every point through the
:class:`~repro.dse.engine.SweepEngine` (parallel and cached when asked),
then re-check the shortlist with execution-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.runner import RunnerPolicy
from repro.dse.analysis import (
    DEFAULT_VERIFY_MARGIN,
    best_point,
    pareto_front,
    ranked_by_edp,
    render_sweep_report,
    verification_shortlist,
)
from repro.dse.cache import ResultCache
from repro.dse.engine import _ENV_PLAN, PointResult, SweepEngine, \
    SweepResult
from repro.dse.space import SweepSpec
from repro.dse.supervisor import SupervisorPolicy


def profile_benchmark(benchmark: str, scale) -> Tuple[Any, Any, Any]:
    """Prepare one workload and measure its statistical profile.

    Returns ``(profile, warmup_trace, reference_trace)``; the traces
    are kept for the execution-driven verification pass.
    """
    from repro.core.profiler import profile_trace
    from repro.experiments.common import prepare_benchmark, suite_config

    warm, trace = prepare_benchmark(benchmark, scale)
    profile = profile_trace(trace, suite_config(), order=1,
                            branch_mode="delayed", warmup_trace=warm)
    return profile, warm, trace


@dataclass
class StudyResult:
    """Outcome of one benchmark's design-space study."""

    benchmark: str
    spec: SweepSpec
    sweep: SweepResult
    ss_optimal: Optional[PointResult] = None
    shortlist: List[PointResult] = field(default_factory=list)
    eds_edp: Dict[str, float] = field(default_factory=dict)
    eds_optimal_id: Optional[str] = None
    found_optimal: bool = False
    edp_gap: float = 0.0

    def to_row(self) -> Dict[str, Any]:
        """The sec46 experiment's (JSON-serializable) result row."""
        return {
            "benchmark": self.benchmark,
            "grid_points": len(self.sweep.results),
            "candidates_verified": len(self.shortlist),
            "ss_optimal": (self.ss_optimal.point.point_id
                           if self.ss_optimal else None),
            "eds_optimal_in_region": self.eds_optimal_id,
            "found_optimal": self.found_optimal,
            "edp_gap": self.edp_gap,
            "pareto_points": len(pareto_front(self.sweep.results)),
            "evaluations": self.sweep.evaluated,
            "cached_evaluations": self.sweep.cached,
            "quarantined": self.sweep.quarantined,
            "sweep_seconds": self.sweep.elapsed,
            "jobs": self.sweep.jobs,
        }

    def render(self, margin: float = DEFAULT_VERIFY_MARGIN) -> str:
        return render_sweep_report(
            f"{self.spec.name}:{self.benchmark}", self.sweep,
            margin=margin, eds_edp=self.eds_edp)


def run_study(
    spec: SweepSpec,
    benchmark: str,
    scale,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[RunnerPolicy] = None,
    verify: bool = True,
    verify_margin: float = DEFAULT_VERIFY_MARGIN,
    base_config: Optional[MachineConfig] = None,
    seeds: Optional[Sequence[int]] = None,
    fault_plan: Any = _ENV_PLAN,
    supervisor_policy: Optional[SupervisorPolicy] = None,
    quarantine_path: Optional[str] = None,
    log=None,
    vector: bool = False,
    health=None,
) -> StudyResult:
    """Run the full section 4.6 protocol for one benchmark.

    ``fault_plan`` (default: from the environment),
    ``supervisor_policy`` (crash/rebuild budgets) and
    ``quarantine_path`` (poison-point manifest) pass straight through
    to the :class:`~repro.dse.engine.SweepEngine`; ``vector`` routes
    every sweep evaluation through the columnar batch kernels (cached
    under distinct keys, shared tables published to pool workers);
    ``health`` (a :class:`~repro.health.budget.HealthPolicy`, default
    from ``REPRO_HEALTH``) carries the sweep's deadline, RSS ceilings
    and hang-watchdog settings.
    """
    from repro.core.framework import run_execution_driven
    from repro.power.wattch import energy_delay_product

    profile, warm, trace = profile_benchmark(benchmark, scale)
    points = spec.expand(base_config)
    cache = ResultCache(cache_dir) if cache_dir else None
    engine = SweepEngine(profile, jobs=jobs, cache=cache, policy=policy,
                         fault_plan=fault_plan,
                         experiment=spec.name, benchmark=benchmark,
                         supervisor_policy=supervisor_policy,
                         quarantine_path=quarantine_path,
                         log=log, vector=vector, health=health)
    sweep = engine.evaluate(points, seeds=seeds or scale.seeds,
                            reduction_factor=scale.reduction_factor)
    study = StudyResult(benchmark=benchmark, spec=spec, sweep=sweep)
    ranked = ranked_by_edp(sweep.results)
    if not ranked:
        return study
    study.ss_optimal = ranked[0]
    study.shortlist = verification_shortlist(sweep.results,
                                             verify_margin)
    # An interrupted sweep's "optimum" is whatever happened to finish;
    # spending minutes execution-verifying it would be misleading (and
    # the user just asked to stop).
    if not verify or sweep.interrupted:
        return study

    verified: List[Tuple[float, PointResult]] = []
    for candidate in study.shortlist:
        result, power = run_execution_driven(trace, candidate.point.config,
                                             warmup_trace=warm)
        edp = energy_delay_product(power.total, result.ipc)
        study.eds_edp[candidate.point.point_id] = edp
        verified.append((edp, candidate))
    verified.sort(key=lambda pair: pair[0])
    eds_best_edp, eds_best = verified[0]
    eds_at_ss_optimal = study.eds_edp[study.ss_optimal.point.point_id]
    study.eds_optimal_id = eds_best.point.point_id
    study.found_optimal = (eds_best.point.config_hash
                           == study.ss_optimal.point.config_hash)
    study.edp_gap = (eds_at_ss_optimal - eds_best_edp) / eds_best_edp
    return study


__all__ = [
    "StudyResult", "profile_benchmark", "run_study", "best_point",
]
