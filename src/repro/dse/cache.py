"""Content-addressed result cache for design-space evaluations.

One statistical-simulation evaluation is fully determined by the
profile content, the machine configuration, the synthesis seed and the
reduction factor — so its metrics are cached under
``sha256(profile_hash, config_hash, seed, reduction_factor)``.
Re-running a sweep, extending a grid, or running a second sweep that
overlaps the first all skip the already-evaluated points, whatever
order or process produced them.

The cache is a **shared concurrent store**: multiple sweeps — and the
service daemon's jobs — read and write one directory simultaneously.
Entry files are written atomically with an embedded SHA-256 checksum
(reusing :mod:`repro.runner.checkpoint`'s scheme), so a killed sweep
can never leave a half-written entry: a truncated or bit-flipped file
raises :class:`~repro.errors.ArtifactCorruptError` at read time, is
discarded, and the point is simply re-evaluated.  Alongside the
entries lives a **maintained count/size index**, sharded by the same
two-hex-digit prefix as the objects and updated under a per-shard
``flock``, so ``len(cache)`` / ``total_bytes()`` are O(shards) instead
of a full directory scan, and the index doubles as the LRU book for
size-bounded eviction (``max_entries`` / ``max_bytes``).  A corrupt or
missing shard index is rebuilt from the object files it describes —
the objects stay the source of truth; the index is an accelerator
with self-healing, like everything else here.

Layout::

    <cache_dir>/
        objects/<key[:2]>/<key>.json    # one evaluation result each
        index/<key[:2]>.json            # {key: [bytes, last-access]}
        locks/<key[:2]>.lock            # flock target per shard
"""

from __future__ import annotations

import fcntl
import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ArtifactCorruptError
from repro.obs import events as obs_events
from repro.runner.checkpoint import read_json_checked, write_json_atomic
from repro.dse.space import canonical_json

#: Sentinel: "no explicit plan given, consult the environment".
_ENV_PLAN = object()

#: Bump when the cached payload schema changes; part of the key, so a
#: schema change is an automatic cold cache rather than a misread.
CACHE_FORMAT = 1

#: Bump when the shard-index layout changes; a mismatched index is
#: rebuilt from the object files rather than misread.
INDEX_FORMAT = 1


def result_key(profile_hash: str, config_hash: str, seed: int,
               reduction_factor: float, mode: str = "scalar") -> str:
    """The content address of one evaluation.

    *mode* distinguishes draw-sequence families: the columnar batch
    kernels are statistically equivalent to the scalar generator but
    use a different RNG stream, so their metrics must never be served
    from a scalar entry (or vice versa).  ``"scalar"`` is omitted from
    the hashed payload so every pre-existing cache entry keeps its key.
    """
    payload = {
        "format": CACHE_FORMAT,
        "profile": profile_hash,
        "config": config_hash,
        "seed": seed,
        "reduction_factor": reduction_factor,
    }
    if mode != "scalar":
        payload["mode"] = mode
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one sweep."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_discarded: int = 0
    io_errors: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_discarded": self.corrupt_discarded,
            "io_errors": self.io_errors,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Content-addressed store of evaluation metrics on disk.

    ``fault_plan`` defaults to whatever the environment asks for
    (``REPRO_CHAOS`` or the legacy ``REPRO_FAULT_*``); pass ``None``
    to disable injection explicitly.  The cache is an accelerator, so
    every fault — injected or real — is contained: a failed read is a
    miss, a failed write skips caching, and the sweep re-evaluates.

    ``max_entries`` / ``max_bytes`` bound the store; crossing a bound
    evicts least-recently-used entries (access order comes from the
    maintained shard indexes, refreshed on every hit).  ``None`` means
    unbounded, the pre-service behavior.
    """

    cache_dir: Union[str, Path]
    fault_plan: Any = _ENV_PLAN
    stats: CacheStats = field(default_factory=CacheStats)
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fault_plan is _ENV_PLAN:
            from repro.faults import plan_from_env

            self.fault_plan = plan_from_env()
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {self.max_entries}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError(
                f"max_bytes must be >= 1, got {self.max_bytes}")
        self.cache_dir = Path(self.cache_dir)
        (self.cache_dir / "objects").mkdir(parents=True, exist_ok=True)
        (self.cache_dir / "index").mkdir(exist_ok=True)
        (self.cache_dir / "locks").mkdir(exist_ok=True)

    # -- paths and locking ---------------------------------------------

    def _path(self, key: str) -> Path:
        return self.cache_dir / "objects" / key[:2] / (key + ".json")

    def _index_path(self, shard: str) -> Path:
        return self.cache_dir / "index" / (shard + ".json")

    @contextmanager
    def _shard_lock(self, shard: str) -> Iterator[None]:
        """Exclusive advisory lock for one shard's index — the only
        mutable structure two processes contend on.  Object files are
        immutable-by-content and written atomically, so they need no
        lock of their own."""
        lock_path = self.cache_dir / "locks" / (shard + ".lock")
        handle = open(lock_path, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    # -- shard index ----------------------------------------------------

    def _rebuild_shard(self, shard: str) -> Dict[str, List[float]]:
        """Reconstruct one shard's index from its object files (the
        self-healing path for a missing, stale or corrupt index)."""
        entries: Dict[str, List[float]] = {}
        shard_dir = self.cache_dir / "objects" / shard
        if shard_dir.is_dir():
            for path in shard_dir.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries[path.stem] = [float(stat.st_size),
                                      stat.st_mtime]
        return entries

    def _load_shard(self, shard: str) -> Dict[str, List[float]]:
        """One shard's ``{key: [size, atime]}`` map; call under the
        shard lock when the result feeds a write-back."""
        path = self._index_path(shard)
        try:
            document = read_json_checked(path)
            if document.get("format") == INDEX_FORMAT and isinstance(
                    document.get("entries"), dict):
                return {key: [float(value[0]), float(value[1])]
                        for key, value in document["entries"].items()}
        except (ArtifactCorruptError, OSError):
            pass
        return self._rebuild_shard(shard)

    def _store_shard(self, shard: str,
                     entries: Dict[str, List[float]]) -> None:
        try:
            write_json_atomic(self._index_path(shard),
                              {"format": INDEX_FORMAT,
                               "entries": entries})
        except OSError:
            # The index is an accelerator: a failed update leaves the
            # stale file in place and the next self-heal rebuilds it.
            self.stats.io_errors += 1

    def _update_shard(self, shard: str, *,
                      touch: Optional[Tuple[str, float]] = None,
                      drop: Optional[str] = None) -> None:
        """Apply one index mutation under the shard lock."""
        with self._shard_lock(shard):
            entries = self._load_shard(shard)
            if drop is not None:
                entries.pop(drop, None)
            if touch is not None:
                key, size = touch
                entries[key] = [size, time.time()]
            self._store_shard(shard, entries)

    def _shards(self) -> List[str]:
        return sorted(path.name for path
                      in (self.cache_dir / "objects").iterdir()
                      if path.is_dir())

    def _scan_index(self) -> Dict[str, Dict[str, List[float]]]:
        """Every shard's entries, self-healing as it reads."""
        return {shard: self._load_shard(shard)
                for shard in self._shards()}

    # -- fault hooks ----------------------------------------------------

    def _maybe_io_error(self, op: str, key: str) -> None:
        hook = getattr(self.fault_plan, "maybe_io_error", None)
        if hook is not None:
            hook(op, key)

    # -- store operations ----------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached entry for *key*, or None on a miss.

        A corrupt entry (checksum mismatch, truncation) is deleted and
        reported as a miss — the caller re-evaluates and overwrites it.
        An unreadable entry (IO error) is left in place and reported
        as a miss; enough consecutive IO errors open the ``cache``
        circuit breaker and reads degrade to unconditional misses
        (writes keep flowing, so the store still fills back up).  A
        hit refreshes the entry's recency in the shard index, feeding
        LRU eviction.
        """
        from repro.health.ladder import get_ladder

        ladder = get_ladder()
        if ladder.is_open("cache"):
            self.stats.misses += 1
            return None
        path = self._path(key)
        if not path.exists():
            self.stats.misses += 1
            self._deindex_phantom(key, path)
            return None
        try:
            self._maybe_io_error("cache_get", key)
            payload = read_json_checked(path)
        except ArtifactCorruptError:
            path.unlink(missing_ok=True)
            self._update_shard(key[:2], drop=key)
            self.stats.corrupt_discarded += 1
            self.stats.misses += 1
            return None
        except OSError as exc:
            self.stats.io_errors += 1
            self.stats.misses += 1
            ladder.note_failure("cache",
                                reason=f"read: {type(exc).__name__}")
            obs_events.emit("cache_io_error", level="warning",
                            msg=(f"cache read failed for "
                                 f"{key[:12]}...; treating as a miss "
                                 f"({exc})"),
                            op="get", key=key,
                            error=type(exc).__name__)
            return None
        ladder.note_success("cache")
        self.stats.hits += 1
        try:
            size = float(path.stat().st_size)
        except OSError:
            size = 0.0
        self._update_shard(key[:2], touch=(key, size))
        return payload

    def _deindex_phantom(self, key: str, path: Path) -> None:
        """A key the index remembers but no object file backs.

        A ``kill -9`` mid-``put`` (or mid-evict) can leave the shard
        index pointing at an entry that never landed, plus the dead
        writer's orphaned ``*.tmp``.  Dropping the phantom on the
        first read that notices keeps ``len()`` / ``total_bytes()`` /
        eviction honest instead of recounting the ghost forever.
        Orphan tmps are swept only when their writer pid is dead — a
        live writer's in-flight tmp must survive its ``os.replace``.
        """
        shard = key[:2]
        indexed = key in self._load_shard(shard)
        orphans = (list(path.parent.glob(path.name + ".*.tmp"))
                   if path.parent.is_dir() else [])
        if not indexed and not orphans:
            return
        for orphan in orphans:
            # <key>.json.<pid>.<serial>.tmp
            parts = orphan.name.split(".")
            try:
                pid = int(parts[-3])
            except (IndexError, ValueError):
                pid = None
            if pid is not None:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    pass  # dead owner: debris
                else:
                    continue  # writer still alive (or not ours)
            orphan.unlink(missing_ok=True)
        if indexed:
            self._update_shard(shard, drop=key)
            obs_events.emit(
                "cache_phantom_dropped", level="debug",
                msg=(f"de-indexed phantom cache entry {key[:12]}... "
                     f"(object never landed; writer died mid-put)"),
                key=key, orphans=len(orphans))

    def put(self, key: str, metrics: Dict[str, float],
            meta: Optional[Dict[str, Any]] = None) -> Optional[Path]:
        """Store one evaluation's *metrics* (plus provenance *meta*).

        Returns the entry path, or None when the write failed with an
        IO error — the result is simply not cached; the caller already
        holds the metrics.
        """
        path = self._path(key)
        payload: Dict[str, Any] = {"metrics": dict(metrics)}
        if meta:
            payload["meta"] = dict(meta)
        try:
            self._maybe_io_error("cache_put", key)
            path.parent.mkdir(parents=True, exist_ok=True)
            write_json_atomic(path, payload)
        except OSError as exc:
            self.stats.io_errors += 1
            from repro.health.ladder import get_ladder

            get_ladder().note_failure(
                "cache", reason=f"write: {type(exc).__name__}")
            obs_events.emit("cache_io_error", level="warning",
                            msg=(f"cache write failed for "
                                 f"{key[:12]}...; result not cached "
                                 f"({exc})"),
                            op="put", key=key,
                            error=type(exc).__name__)
            return None
        self.stats.writes += 1
        try:
            size = float(path.stat().st_size)
        except OSError:
            size = 0.0
        self._update_shard(key[:2], touch=(key, size))
        obs_events.emit("cache_write", level="debug", key=key,
                        bytes=int(size))
        if self.fault_plan is not None:
            self.fault_plan.maybe_corrupt_artifact(path)
        self._maybe_evict()
        return path

    # -- size accounting and eviction -----------------------------------

    def __len__(self) -> int:
        """Entry count from the maintained indexes — O(shards), not
        O(entries)."""
        return sum(len(entries)
                   for entries in self._scan_index().values())

    def total_bytes(self) -> int:
        """Aggregate payload size from the maintained indexes."""
        return int(sum(value[0]
                       for entries in self._scan_index().values()
                       for value in entries.values()))

    def rebuild_index(self) -> Tuple[int, int]:
        """Force-rebuild every shard index from the object files;
        returns ``(entries, bytes)``.  The recovery tool for an index
        that drifted (e.g. files removed behind the cache's back)."""
        count = size = 0
        for shard in self._shards():
            with self._shard_lock(shard):
                entries = self._rebuild_shard(shard)
                self._store_shard(shard, entries)
            count += len(entries)
            size += int(sum(value[0] for value in entries.values()))
        return count, size

    def _maybe_evict(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        index = self._scan_index()
        count = sum(len(entries) for entries in index.values())
        size = sum(value[0] for entries in index.values()
                   for value in entries.values())
        over_count = (self.max_entries is not None
                      and count > self.max_entries)
        over_size = (self.max_bytes is not None
                     and size > self.max_bytes)
        if not over_count and not over_size:
            return
        # Oldest-first across all shards; evict until back under both
        # bounds.  Each eviction re-checks under the shard lock, so
        # two processes evicting concurrently cannot double-count.
        victims = sorted(
            ((value[1], shard, key, value[0])
             for shard, entries in index.items()
             for key, value in entries.items()),
            key=lambda item: item[0])
        evicted = 0
        for _, shard, key, entry_size in victims:
            if not ((self.max_entries is not None
                     and count > self.max_entries)
                    or (self.max_bytes is not None
                        and size > self.max_bytes)):
                break
            with self._shard_lock(shard):
                entries = self._load_shard(shard)
                if key not in entries:
                    continue  # another process got there first
                del entries[key]
                self._path(key).unlink(missing_ok=True)
                self._store_shard(shard, entries)
            count -= 1
            size -= entry_size
            evicted += 1
            self.stats.evictions += 1
        if evicted:
            obs_events.emit("cache_evict", level="debug",
                            msg=(f"evicted {evicted} LRU cache "
                                 f"entr(ies) to stay within bounds"),
                            evicted=evicted, entries=count,
                            bytes=int(size))
