"""Content-addressed result cache for design-space evaluations.

One statistical-simulation evaluation is fully determined by the
profile content, the machine configuration, the synthesis seed and the
reduction factor — so its metrics are cached under
``sha256(profile_hash, config_hash, seed, reduction_factor)``.
Re-running a sweep, extending a grid, or running a second sweep that
overlaps the first all skip the already-evaluated points, whatever
order or process produced them.

Layout::

    <cache_dir>/
        objects/<key[:2]>/<key>.json    # one evaluation result each

Entries are written atomically with an embedded SHA-256 checksum
(reusing :mod:`repro.runner.checkpoint`'s scheme), so a killed sweep
can never leave a half-written entry: a truncated or bit-flipped file
raises :class:`~repro.errors.ArtifactCorruptError` at read time, is
discarded, and the point is simply re-evaluated.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ArtifactCorruptError
from repro.obs import events as obs_events
from repro.runner.checkpoint import read_json_checked, write_json_atomic
from repro.dse.space import canonical_json

#: Sentinel: "no explicit plan given, consult the environment".
_ENV_PLAN = object()

#: Bump when the cached payload schema changes; part of the key, so a
#: schema change is an automatic cold cache rather than a misread.
CACHE_FORMAT = 1


def result_key(profile_hash: str, config_hash: str, seed: int,
               reduction_factor: float) -> str:
    """The content address of one evaluation."""
    payload = {
        "format": CACHE_FORMAT,
        "profile": profile_hash,
        "config": config_hash,
        "seed": seed,
        "reduction_factor": reduction_factor,
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one sweep."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_discarded: int = 0
    io_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_discarded": self.corrupt_discarded,
            "io_errors": self.io_errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Content-addressed store of evaluation metrics on disk.

    ``fault_plan`` defaults to whatever the environment asks for
    (``REPRO_CHAOS`` or the legacy ``REPRO_FAULT_*``); pass ``None``
    to disable injection explicitly.  The cache is an accelerator, so
    every fault — injected or real — is contained: a failed read is a
    miss, a failed write skips caching, and the sweep re-evaluates.
    """

    cache_dir: Union[str, Path]
    fault_plan: Any = _ENV_PLAN
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.fault_plan is _ENV_PLAN:
            from repro.faults import plan_from_env

            self.fault_plan = plan_from_env()
        self.cache_dir = Path(self.cache_dir)
        (self.cache_dir / "objects").mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.cache_dir / "objects" / key[:2] / (key + ".json")

    def _maybe_io_error(self, op: str, key: str) -> None:
        hook = getattr(self.fault_plan, "maybe_io_error", None)
        if hook is not None:
            hook(op, key)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached entry for *key*, or None on a miss.

        A corrupt entry (checksum mismatch, truncation) is deleted and
        reported as a miss — the caller re-evaluates and overwrites it.
        An unreadable entry (IO error) is left in place and reported
        as a miss.
        """
        path = self._path(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            self._maybe_io_error("cache_get", key)
            payload = read_json_checked(path)
        except ArtifactCorruptError:
            path.unlink(missing_ok=True)
            self.stats.corrupt_discarded += 1
            self.stats.misses += 1
            return None
        except OSError as exc:
            self.stats.io_errors += 1
            self.stats.misses += 1
            obs_events.emit("cache_io_error", level="warning",
                            msg=(f"cache read failed for "
                                 f"{key[:12]}...; treating as a miss "
                                 f"({exc})"),
                            op="get", key=key,
                            error=type(exc).__name__)
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, metrics: Dict[str, float],
            meta: Optional[Dict[str, Any]] = None) -> Optional[Path]:
        """Store one evaluation's *metrics* (plus provenance *meta*).

        Returns the entry path, or None when the write failed with an
        IO error — the result is simply not cached; the caller already
        holds the metrics.
        """
        path = self._path(key)
        payload: Dict[str, Any] = {"metrics": dict(metrics)}
        if meta:
            payload["meta"] = dict(meta)
        try:
            self._maybe_io_error("cache_put", key)
            path.parent.mkdir(parents=True, exist_ok=True)
            write_json_atomic(path, payload)
        except OSError as exc:
            self.stats.io_errors += 1
            obs_events.emit("cache_io_error", level="warning",
                            msg=(f"cache write failed for "
                                 f"{key[:12]}...; result not cached "
                                 f"({exc})"),
                            op="put", key=key,
                            error=type(exc).__name__)
            return None
        self.stats.writes += 1
        if self.fault_plan is not None:
            self.fault_plan.maybe_corrupt_artifact(path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in (self.cache_dir / "objects").glob(
            "*/*.json"))
