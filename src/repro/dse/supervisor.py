"""Supervised execution over a process pool.

A single segfaulting or OOM-killed worker breaks a
``ProcessPoolExecutor`` for good: every unfinished future raises
``BrokenProcessPool`` and, without supervision, an hours-long sweep
loses all in-flight work.  This module keeps the sweep alive:

* **leases** — each worker writes a tiny lease file before executing a
  task and removes it afterwards.  A hard crash (``os._exit``,
  segfault, SIGKILL) skips the removal, so after a pool break the
  surviving lease files name exactly the tasks that were in flight.
* **crash attribution** — a lease is only blamed ("suspect") when its
  recorded worker pid actually died abnormally; workers the executor
  itself terminated while tearing down the broken pool (SIGTERM) hold
  leases too but are innocent, and their tasks are requeued without
  charging their crash budget.
* **requeue + quarantine** — suspects' crash counts are incremented;
  a task crossing ``max_point_retries`` is a *poison point*: it is
  quarantined (recorded with its config and last error in the
  :class:`Quarantine` manifest), the sweep continues without it, and
  the final report calls it out.  Everything else is resubmitted to a
  freshly built pool.
* **serial fallback** — when the pool breaks repeatedly without
  completing any task (or cannot be built at all), the supervisor
  degrades to the caller-supplied in-process path (the ``pool`` rung
  of the :mod:`repro.health` degradation ladder).  Chaos worker-kill
  only fires inside pool workers, so under injection the fallback is
  also what lets a "kill everything" run still complete.
* **hang watchdog** — a crash breaks the pool by itself; a *hang*
  (spin loop, deadlocked syscall) does not.  Workers stamp a ``beat``
  timestamp plus a progress counter into their lease on every health
  checkpoint (:mod:`repro.health`), and the supervisor polls the lease
  directory while waiting on futures: a worker whose beat goes staler
  than the policy's ``hang_timeout`` is SIGKILLed, which converts the
  hang into an ordinary pool break — same attribution, same requeue,
  same quarantine-after-budget path as a crash.

The supervisor narrates itself through :mod:`repro.obs`
(``supervisor.*`` events and counters).  Determinism is unaffected:
task seeds are derived from task identity, so a requeued task produces
byte-identical metrics no matter how many crashes preceded it.
"""

from __future__ import annotations

import json
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import SweepInterrupted, WorkerCrashError
from repro.obs import events as obs_events
from repro.obs.metrics import get_registry
from repro.runner import RunnerPolicy
from repro.runner.checkpoint import sanitize_unit_id, write_json_atomic

#: Manifest schema version.
QUARANTINE_FORMAT = 1


@dataclass(frozen=True)
class SupervisorPolicy:
    """Crash-handling budget.

    ``max_point_retries`` — crashes attributed to one task before it
    is quarantined as a poison point (N retries = N+1 dispatches).
    ``max_pool_rebuilds`` — consecutive pool generations that complete
    *zero* tasks before degrading to serial execution; generations
    that make progress reset the count.
    """

    max_point_retries: int = 2
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_point_retries < 0:
            raise ValueError("max_point_retries must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")


# -- leases ------------------------------------------------------------


def lease_path(lease_dir: Union[str, Path], task_id: str) -> Path:
    return Path(lease_dir) / (sanitize_unit_id(task_id) + ".lease")


def write_lease(lease_dir: Union[str, Path], task_id: str,
                dispatch: int, pid: Optional[int] = None,
                progress: int = 0) -> Path:
    """Record "this process is about to run *task_id*" on disk.

    The record doubles as the hang watchdog's heartbeat: ``beat`` is
    stamped here and refreshed (with ``progress`` — cycles or
    instructions committed) by the worker's health checkpoints."""
    path = lease_path(lease_dir, task_id)
    path.write_text(json.dumps({
        "task_id": task_id,
        "pid": pid if pid is not None else os.getpid(),
        "dispatch": dispatch,
        "beat": time.time(),
        "progress": int(progress),
    }))
    return path


def clear_lease(lease_dir: Union[str, Path], task_id: str) -> None:
    lease_path(lease_dir, task_id).unlink(missing_ok=True)


def read_leases(lease_dir: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every surviving lease record (unreadable files are skipped —
    a worker may have died mid-write)."""
    records = []
    for path in sorted(Path(lease_dir).glob("*.lease")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "task_id" in record:
            records.append(record)
    return records


def suspect_task_ids(leases: Sequence[Dict[str, Any]],
                     exit_codes: Dict[int, Optional[int]]) -> List[str]:
    """Which leased tasks to blame for a pool break.

    A lease is suspect when its pid is known to have died abnormally —
    any exit status except "still running / unknown" (None), clean
    exit (0) and the executor's own teardown signal (SIGTERM).  When
    attribution is impossible (no exit codes at all, e.g. a private
    attribute went away), every leased task is charged: over-blaming
    costs one budget notch, under-blaming would retry a poison point
    forever.
    """
    innocent = (None, 0, -int(signal.SIGTERM))
    suspects = [record["task_id"] for record in leases
                if exit_codes.get(int(record.get("pid", -1)))
                not in innocent]
    if not suspects and leases and not exit_codes:
        return [record["task_id"] for record in leases]
    return suspects


# -- quarantine --------------------------------------------------------


@dataclass
class Quarantine:
    """Poison points pulled out of a sweep, and their manifest file."""

    path: Optional[Union[str, Path]] = None
    max_point_retries: int = 2
    records: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, task: Dict[str, Any], crashes: int,
            last_error: Dict[str, Any],
            flight_recorder: Optional[str] = None) -> Dict[str, Any]:
        record = {
            "task_id": task.get("task_id"),
            "point_id": task.get("point_id"),
            "benchmark": task.get("benchmark"),
            "base_seed": task.get("base_seed"),
            "derived_seed": task.get("derived_seed"),
            "reduction_factor": task.get("reduction_factor"),
            "config": task.get("config"),
            "crashes": crashes,
            "last_error": last_error,
            # Path of the dead worker's flight-recorder dump (its last
            # N events), when one was captured — the poison point's
            # final moments travel with the manifest.
            "flight_recorder": flight_recorder,
        }
        self.records.append(record)
        return record

    def to_payload(self) -> Dict[str, Any]:
        return {
            "format": QUARANTINE_FORMAT,
            "max_point_retries": self.max_point_retries,
            "quarantined": list(self.records),
        }

    def write(self) -> Optional[Path]:
        """Persist the manifest (atomic, checksummed) if a path was
        configured; written even when empty so automation can tell
        "no poison points" from "supervision never ran"."""
        if self.path is None:
            return None
        path = Path(self.path)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json_atomic(path, self.to_payload())
        return path


# -- the supervisor ----------------------------------------------------


class PoolSupervisor:
    """Runs tasks on a pool, surviving worker death.

    ``pool_factory`` builds a fresh executor whose workers run
    ``task_fn(task, runner_policy)`` and write/clear leases in
    ``lease_dir``; ``serial_fn(tasks)`` is the in-process degradation
    path.  ``run`` returns one outcome dict per task (the same shape
    ``task_fn`` returns), plus synthesized ``status="quarantined"``
    outcomes for poison points.
    """

    def __init__(
        self,
        pool_factory: Callable[[], Any],
        task_fn: Callable[..., Dict[str, Any]],
        runner_policy: RunnerPolicy,
        policy: Optional[SupervisorPolicy] = None,
        quarantine: Optional[Quarantine] = None,
        serial_fn: Optional[Callable[[List[Dict[str, Any]]],
                                     List[Dict[str, Any]]]] = None,
        lease_dir: Optional[Union[str, Path]] = None,
        flight_dir: Optional[Union[str, Path]] = None,
        log: Optional[Callable[[str], None]] = None,
        health: Optional[Any] = None,
    ) -> None:
        self.pool_factory = pool_factory
        self.task_fn = task_fn
        self.runner_policy = runner_policy
        self.policy = policy or SupervisorPolicy()
        self.quarantine = quarantine if quarantine is not None \
            else Quarantine(max_point_retries=self.policy.max_point_retries)
        self.serial_fn = serial_fn
        self.lease_dir = Path(lease_dir) if lease_dir else None
        self.flight_dir = Path(flight_dir) if flight_dir else None
        self.log = log or (lambda message: None)
        # The health policy supplies the hang watchdog's knobs; None
        # (or hang_timeout=0) disables the watchdog and restores plain
        # blocking collection.
        self.health = health
        self.hang_timeout = float(getattr(health, "hang_timeout", 0.0)
                                  or 0.0)
        self.poll_interval = float(getattr(health, "poll_interval", 0.5)
                                   or 0.5)
        self._last_hang_scan = 0.0
        self.crashes: Dict[str, int] = {}
        # task_id -> pid of the worker that last died holding its lease
        # (how a quarantine record finds its flight-recorder dump).
        self.crash_pids: Dict[str, int] = {}

    # -- crash-side helpers ---------------------------------------------

    def _make_pool(self):
        try:
            return self.pool_factory()
        except Exception as exc:  # noqa: BLE001 — degrade, don't die
            self.log(f"cannot build worker pool ({type(exc).__name__}: "
                     f"{exc}); degrading to serial execution")
            return None

    @staticmethod
    def _exit_codes(pool, deadline: float = 5.0
                    ) -> Dict[int, Optional[int]]:
        """pid -> exit status for the broken pool's workers.

        ``_processes`` is a private executor attribute; when it is
        missing or empty the caller falls back to blaming every leased
        task.  Freshly killed processes can take a moment to be
        reaped, so poll briefly until every status is known.
        """
        processes = dict(getattr(pool, "_processes", None) or {})
        end = time.monotonic() + deadline
        while (any(proc.exitcode is None for proc in processes.values())
               and time.monotonic() < end):
            time.sleep(0.05)
        return {pid: proc.exitcode for pid, proc in processes.items()}

    def _clear_leases(self) -> None:
        if self.lease_dir is None:
            return
        for path in self.lease_dir.glob("*.lease"):
            path.unlink(missing_ok=True)

    def _flight_path(self, task_id: str) -> Optional[str]:
        """The flight-recorder dump of the worker that last crashed
        holding *task_id*'s lease, if it managed to write one."""
        if self.flight_dir is None:
            return None
        pid = self.crash_pids.get(task_id)
        if pid is None:
            return None
        path = self.flight_dir / f"flightrec-{pid}.jsonl"
        return str(path) if path.exists() else None

    def _quarantined_outcome(self, task: Dict[str, Any],
                             crashes: int) -> Dict[str, Any]:
        message = (f"{task['task_id']}: worker process died on all "
                   f"{crashes} dispatch(es); quarantined as a poison "
                   f"point after exceeding the "
                   f"{self.policy.max_point_retries}-retry budget")
        error = {"type": WorkerCrashError.__name__, "message": message,
                 "retryable": False}
        flight = self._flight_path(task["task_id"])
        self.quarantine.add(task, crashes, error, flight_recorder=flight)
        get_registry().counter("supervisor.quarantined").inc()
        obs_events.emit("supervisor.quarantine", msg=message,
                        level="warning", task=task["task_id"],
                        crashes=crashes, flight_recorder=flight)
        self.log(f"QUARANTINED {task['task_id']} after {crashes} "
                 f"worker crash(es)")
        return {"task": task, "status": "quarantined", "metrics": None,
                "attempts": crashes, "elapsed": 0.0, "error": error}

    def _handle_break(self, pool, in_flight: List[Dict[str, Any]],
                      outcomes: List[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
        """Attribute a pool break; returns the tasks to requeue."""
        registry = get_registry()
        leases = read_leases(self.lease_dir) if self.lease_dir else []
        exit_codes = self._exit_codes(pool)
        suspects = set(suspect_task_ids(leases, exit_codes))
        for record in leases:
            if record.get("task_id") in suspects \
                    and record.get("pid") is not None:
                self.crash_pids[record["task_id"]] = int(record["pid"])
        self._clear_leases()
        flight_dumps = {task_id: self._flight_path(task_id)
                        for task_id in sorted(suspects)}
        obs_events.emit("supervisor.crash", level="warning",
                        msg=(f"worker pool broke with "
                             f"{len(in_flight)} task(s) in flight "
                             f"({len(suspects)} suspect)"),
                        in_flight=len(in_flight),
                        suspects=sorted(suspects),
                        exit_codes={str(pid): code for pid, code
                                    in exit_codes.items()},
                        flight_recorders={
                            task_id: path for task_id, path
                            in flight_dumps.items() if path})
        requeue: List[Dict[str, Any]] = []
        for task in in_flight:
            task_id = task["task_id"]
            if task_id in suspects:
                registry.counter("supervisor.crashes").inc()
                self.crashes[task_id] = self.crashes.get(task_id, 0) + 1
            if self.crashes.get(task_id, 0) \
                    > self.policy.max_point_retries:
                outcomes.append(self._quarantined_outcome(
                    task, self.crashes[task_id]))
            else:
                requeue.append(task)
        if requeue:
            registry.counter("supervisor.requeued").inc(len(requeue))
            obs_events.emit("supervisor.requeue", level="info",
                            msg=(f"requeueing {len(requeue)} task(s) "
                                 f"onto a rebuilt pool"),
                            tasks=[t["task_id"] for t in requeue])
        return requeue

    def _kill_hung_workers(self, pool) -> None:
        """SIGKILL pool workers whose lease beat went stale.

        Only pids the pool actually owns are eligible — a stale lease
        left by an already-reaped worker must not get an unrelated
        process killed.  The SIGKILL breaks the pool, handing the hung
        task to the ordinary crash attribution path."""
        if (self.lease_dir is None or self.hang_timeout <= 0
                or pool is None):
            return
        now = time.time()
        if now - self._last_hang_scan < self.poll_interval:
            return
        self._last_hang_scan = now
        pool_pids = set((getattr(pool, "_processes", None) or {}).keys())
        for record in read_leases(self.lease_dir):
            beat = record.get("beat")
            pid = record.get("pid")
            if beat is None or pid is None or int(pid) not in pool_pids:
                continue
            stale = now - float(beat)
            if stale <= self.hang_timeout:
                continue
            try:
                os.kill(int(pid), signal.SIGKILL)
            except OSError:
                continue
            get_registry().counter("health.hang_kills").inc()
            obs_events.emit(
                "health.hang_kill", level="warning",
                msg=(f"worker {pid} hung on "
                     f"{record.get('task_id')} (no progress for "
                     f"{stale:.1f}s > {self.hang_timeout:.1f}s); "
                     f"killed for requeue"),
                task=record.get("task_id"), pid=int(pid),
                stale_seconds=round(stale, 1),
                progress=record.get("progress"))
            self.log(f"hang watchdog: killed worker {pid} "
                     f"({record.get('task_id')}, beat {stale:.1f}s "
                     f"stale)")

    # -- execution ------------------------------------------------------

    def _run_serial_fallback(self, tasks: List[Dict[str, Any]],
                             outcomes: List[Dict[str, Any]]) -> None:
        from repro.health.ladder import get_ladder

        get_ladder().trip("pool", reason="worker pool unavailable")
        get_registry().counter("supervisor.serial_fallbacks").inc()
        obs_events.emit("supervisor.serial_fallback", level="warning",
                        msg=(f"worker pool unavailable; running "
                             f"{len(tasks)} remaining task(s) "
                             f"in-process"),
                        tasks=len(tasks))
        self.log(f"pool unavailable: finishing {len(tasks)} task(s) "
                 f"serially in-process")
        if self.serial_fn is not None:
            outcomes.extend(self.serial_fn(tasks))
        else:
            outcomes.extend(self.task_fn(task, self.runner_policy)
                            for task in tasks)

    def run(self, tasks: Sequence[Dict[str, Any]]
            ) -> List[Dict[str, Any]]:
        pending: List[Dict[str, Any]] = list(tasks)
        outcomes: List[Dict[str, Any]] = []
        barren_generations = 0
        pool = self._make_pool()
        try:
            while pending:
                if pool is None:
                    self._run_serial_fallback(pending, outcomes)
                    pending = []
                    break
                batch, pending = pending, []
                futures = []
                for task in batch:
                    dispatched = dict(task)
                    dispatched["dispatch"] = \
                        self.crashes.get(task["task_id"], 0) + 1
                    futures.append((task, pool.submit(
                        self.task_fn, dispatched, self.runner_policy)))
                completed = 0
                in_flight: List[Dict[str, Any]] = []
                waiting = {future: task for task, future in futures}
                # Timed collection instead of a blocking result() per
                # future: between completions the hang watchdog gets a
                # chance to scan lease beats.  With the watchdog off
                # the timeout is None and this is plain blocking
                # collection.
                poll = (self.poll_interval
                        if self.hang_timeout > 0 and self.lease_dir
                        else None)
                while waiting:
                    done, _ = futures_wait(
                        list(waiting), timeout=poll,
                        return_when=FIRST_COMPLETED)
                    for future in done:
                        task = waiting.pop(future)
                        try:
                            outcomes.append(future.result())
                            completed += 1
                        except BrokenProcessPool:
                            in_flight.append(task)
                        except Exception as exc:  # noqa: BLE001
                            # task_fn contains task errors itself;
                            # anything surfacing here is harness-level
                            # (e.g. a pickling failure) — record,
                            # don't crash.
                            outcomes.append({
                                "task": task, "status": "failed",
                                "metrics": None, "attempts": 1,
                                "elapsed": 0.0,
                                "error": {"type": type(exc).__name__,
                                          "message": str(exc),
                                          "retryable": False}})
                            completed += 1
                    if waiting and not done:
                        self._kill_hung_workers(pool)
                if not in_flight:
                    continue
                pending = self._handle_break(pool, in_flight, outcomes) \
                    + pending
                pool.shutdown(wait=False, cancel_futures=True)
                barren_generations = 0 if completed else \
                    barren_generations + 1
                if barren_generations > self.policy.max_pool_rebuilds:
                    self.log(f"pool made no progress across "
                             f"{barren_generations} consecutive "
                             f"generations; giving up on rebuilding")
                    pool = None
                elif pending:
                    get_registry().counter("supervisor.rebuilds").inc()
                    obs_events.emit(
                        "supervisor.rebuild", level="info",
                        msg=(f"rebuilding worker pool "
                             f"(generation completed {completed} "
                             f"task(s), {len(pending)} remain)"),
                        completed=completed, remaining=len(pending))
                    pool = self._make_pool()
        except KeyboardInterrupt:
            # Ctrl-C mid-sweep: abandon the pool without waiting (its
            # workers got the same SIGINT), persist what supervision
            # learned so far, and hand the completed outcomes to the
            # engine so the partial sweep is reported, not discarded.
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            self.quarantine.write()
            raise SweepInterrupted(outcomes) from None
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        self.quarantine.write()
        return outcomes


__all__ = [
    "QUARANTINE_FORMAT", "PoolSupervisor", "Quarantine",
    "SupervisorPolicy", "clear_lease", "lease_path", "read_leases",
    "suspect_task_ids", "write_lease",
]
