"""Serial-vs-parallel sweep benchmark (``BENCH_dse.json``).

Times the same sweep three ways against one shared profile:

1. cold serial (``jobs=1``) — the pre-subsystem baseline path;
2. cold parallel (``jobs=N``) — the process-pool engine;
3. warm parallel re-run — same cache directory, measuring how many
   evaluations the content-addressed cache skips.

It also cross-checks that the serial and parallel sweeps produced
bit-identical metrics (they must: per-point seeds are derived, not
inherited), and writes everything as machine-readable JSON for CI
artifact upload and regression tracking.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.obs.tracing import phase_breakdown
from repro.dse.engine import SweepEngine, SweepResult
from repro.dse.cache import ResultCache
from repro.dse.space import SweepSpec
from repro.dse.study import profile_benchmark

BENCH_SCHEMA = 2


def _metrics_map(sweep: SweepResult) -> Dict[str, Dict[int, Dict]]:
    return {result.point.point_id: result.per_seed
            for result in sweep.results}


def _phase_delta(before: Dict[str, Dict],
                 after: Dict[str, Dict]) -> Dict[str, Dict]:
    """Per-phase wall-clock spent between two ``phase_breakdown``
    snapshots — the benchmark's own share of a process-wide registry."""
    delta: Dict[str, Dict] = {}
    for phase, stats in after.items():
        count = stats["count"] - before.get(phase, {}).get("count", 0)
        total = stats["total"] - before.get(phase, {}).get("total", 0.0)
        if count <= 0:
            continue
        delta[phase] = {"count": count, "total": total,
                        "mean": total / count}
    return delta


def run_dse_bench(
    spec: SweepSpec,
    benchmark: str,
    scale,
    jobs: int = 4,
    cache_root: Optional[Union[str, Path]] = None,
    seeds: Optional[Sequence[int]] = None,
    log=None,
) -> Dict[str, Any]:
    """Benchmark the sweep; returns the ``BENCH_dse.json`` payload."""
    import tempfile

    log = log or (lambda message: None)
    phases_before = phase_breakdown()
    profile, _warm, _trace = profile_benchmark(benchmark, scale)
    points = spec.expand()
    seeds = tuple(seeds if seeds is not None else scale.seeds)

    own_root = cache_root is None
    root = Path(tempfile.mkdtemp(prefix="repro-dse-bench-")
                if own_root else cache_root)
    try:
        def sweep_once(label: str, n_jobs: int,
                       cache_dir: Optional[Path]) -> SweepResult:
            engine = SweepEngine(
                profile, jobs=n_jobs,
                cache=ResultCache(cache_dir) if cache_dir else None,
                experiment=spec.name, benchmark=benchmark, log=log)
            result = engine.evaluate(points, seeds=seeds,
                                     reduction_factor=
                                     scale.reduction_factor)
            log(f"{label}: {result.summary()}")
            return result

        serial = sweep_once("serial (cold)", 1, None)
        parallel = sweep_once("parallel (cold)", jobs,
                              root / "parallel")
        warm = sweep_once("parallel (warm cache)", jobs,
                          root / "parallel")
    finally:
        if own_root:
            shutil.rmtree(root, ignore_errors=True)

    identical = _metrics_map(serial) == _metrics_map(parallel)
    total = warm.total_tasks
    skipped_fraction = warm.cached / total if total else 0.0
    speedup = (serial.elapsed / parallel.elapsed
               if parallel.elapsed > 0 else float("inf"))
    return {
        "schema": BENCH_SCHEMA,
        "sweep": spec.name,
        "benchmark": benchmark,
        "grid_points": len(points),
        "seeds": list(seeds),
        "evaluations": len(points) * len(seeds),
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "platform": platform.platform(),
        "serial_seconds": serial.elapsed,
        "parallel_seconds": parallel.elapsed,
        "parallel_speedup": speedup,
        "metrics_identical": identical,
        "warm_rerun_seconds": warm.elapsed,
        "warm_rerun_skipped": warm.cached,
        "warm_rerun_skipped_fraction": skipped_fraction,
        "warm_rerun_evaluated": warm.evaluated,
        # Where the time went (profile/reduce/synthesize/simulate ...),
        # so the perf trajectory records more than totals.
        "phases": _phase_delta(phases_before, phase_breakdown()),
    }


def write_bench(payload: Dict[str, Any],
                path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
