"""Design-space exploration subsystem.

The paper's headline use case (section 4.6) industrialized: declare a
sweep over machine-configuration fields (:mod:`repro.dse.space`),
evaluate every design point in parallel with per-point fault-tolerance
(:mod:`repro.dse.engine`) under worker supervision with poison-point
quarantine and serial fallback (:mod:`repro.dse.supervisor`), skip
already-known points via a content-addressed result cache
(:mod:`repro.dse.cache`), and extract Pareto fronts / verification
shortlists from the result (:mod:`repro.dse.analysis`).  See
``docs/design_space.md`` and ``docs/robustness.md``.
"""

from repro.dse.analysis import (
    DEFAULT_VERIFY_MARGIN,
    best_point,
    pareto_front,
    ranked_by_edp,
    render_sweep_report,
    verification_shortlist,
)
from repro.dse.bench import run_dse_bench, write_bench
from repro.dse.cache import CacheStats, ResultCache, result_key
from repro.dse.engine import (
    PointResult,
    SweepEngine,
    SweepResult,
    derive_point_seed,
    evaluate_metrics,
)
from repro.dse.space import (
    SWEEPABLE_FIELDS,
    DesignPoint,
    SweepSpec,
    apply_overrides,
    config_hash,
    profile_content_hash,
    reduced_sec46_spec,
)
from repro.dse.study import StudyResult, profile_benchmark, run_study
from repro.dse.supervisor import (
    PoolSupervisor,
    Quarantine,
    SupervisorPolicy,
)

__all__ = [
    "DEFAULT_VERIFY_MARGIN", "best_point", "pareto_front",
    "ranked_by_edp", "render_sweep_report", "verification_shortlist",
    "run_dse_bench", "write_bench",
    "CacheStats", "ResultCache", "result_key",
    "PointResult", "SweepEngine", "SweepResult", "derive_point_seed",
    "evaluate_metrics",
    "SWEEPABLE_FIELDS", "DesignPoint", "SweepSpec", "apply_overrides",
    "config_hash", "profile_content_hash", "reduced_sec46_spec",
    "StudyResult", "profile_benchmark", "run_study",
    "PoolSupervisor", "Quarantine", "SupervisorPolicy",
]
