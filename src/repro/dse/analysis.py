"""Analysis layer over sweep results: Pareto fronts, the section 4.6
verification shortlist, and a rendered sweep report.

The paper's protocol (section 4.6): rank every design point by its
statistically-simulated energy-delay product, then re-evaluate the
points within a small margin of the SS optimum with execution-driven
simulation — fast exploration of the whole space, slow confirmation of
the interesting region only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dse.engine import PointResult, SweepResult

#: The paper verifies the 3% range around the SS optimum.
DEFAULT_VERIFY_MARGIN = 0.03


def ranked_by_edp(results: Sequence[PointResult]) -> List[PointResult]:
    """Successful points, cheapest energy-delay product first."""
    ok = [r for r in results if r.ok]
    return sorted(ok, key=lambda r: r.metrics["edp"])


def best_point(results: Sequence[PointResult]) -> PointResult:
    ranked = ranked_by_edp(results)
    if not ranked:
        raise ValueError("no successful design points to rank")
    return ranked[0]


def pareto_front(results: Sequence[PointResult],
                 minimize: str = "edp",
                 maximize: str = "ipc") -> List[PointResult]:
    """Non-dominated points: no other point is at least as good on both
    objectives and strictly better on one (lower *minimize*, higher
    *maximize*).  Sorted by the minimized metric."""
    ok = [r for r in results if r.ok]
    front: List[PointResult] = []
    for candidate in ok:
        c_min = candidate.metrics[minimize]
        c_max = candidate.metrics[maximize]
        dominated = any(
            other is not candidate
            and other.metrics[minimize] <= c_min
            and other.metrics[maximize] >= c_max
            and (other.metrics[minimize] < c_min
                 or other.metrics[maximize] > c_max)
            for other in ok)
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda r: r.metrics[minimize])


def verification_shortlist(results: Sequence[PointResult],
                           margin: float = DEFAULT_VERIFY_MARGIN
                           ) -> List[PointResult]:
    """Points whose SS EDP is within *margin* of the SS optimum — the
    candidates worth the execution-driven re-check."""
    ranked = ranked_by_edp(results)
    if not ranked:
        return []
    cutoff = ranked[0].metrics["edp"] * (1.0 + margin)
    return [r for r in ranked if r.metrics["edp"] <= cutoff]


def render_sweep_report(sweep_name: str, sweep: SweepResult,
                        margin: float = DEFAULT_VERIFY_MARGIN,
                        top: int = 10,
                        eds_edp: Optional[Dict[str, float]] = None
                        ) -> str:
    """Human-readable sweep summary.

    *eds_edp* optionally maps a shortlisted point's ``point_id`` to its
    execution-driven EDP (filled in by the section 4.6 protocol)."""
    from repro.experiments.common import format_table

    ranked = ranked_by_edp(sweep.results)
    front = {id(r) for r in pareto_front(sweep.results)}
    shortlist = {id(r) for r in verification_shortlist(sweep.results,
                                                       margin)}
    rows = []
    for result in ranked[:top]:
        marks = ("P" if id(result) in front else "") + \
                ("V" if id(result) in shortlist else "")
        eds = (f"{eds_edp[result.point.point_id]:.2f}"
               if eds_edp and result.point.point_id in eds_edp else "-")
        rows.append((result.point.point_id,
                     f"{result.metrics['edp']:.2f}",
                     f"{result.metrics['ipc']:.3f}",
                     f"{result.metrics['epc']:.1f}",
                     eds, marks or "-"))
    table = format_table(
        ["design point", "SS EDP", "SS IPC", "SS EPC", "EDS EDP",
         "flags"], rows)
    lines = [f"sweep {sweep_name!r}: {sweep.summary()}",
             f"seeds {list(sweep.seeds)}, "
             f"R = {sweep.reduction_factor:g}; top {min(top, len(ranked))} "
             f"of {len(ranked)} points "
             f"(P = Pareto EDP/IPC, V = within {margin * 100:g}% "
             f"verification margin)",
             "", table]
    failed = [r for r in sweep.results if not r.ok]
    if failed:
        lines.append("")
        for result in failed:
            detail = result.errors[0] if result.errors else {}
            if result.quarantined_seeds:
                lines.append(
                    f"QUARANTINED: {result.point.point_id} — worker "
                    f"crashed on every dispatch "
                    f"({result.quarantined_seeds} seed evaluation(s) "
                    f"quarantined as poison points)")
            else:
                lines.append(
                    f"WARNING: {result.point.point_id} failed "
                    f"({detail.get('type', 'Error')}: "
                    f"{detail.get('message', 'unknown error')})")
    if sweep.quarantine_manifest:
        lines.append("")
        lines.append(f"quarantine manifest: {sweep.quarantine_manifest} "
                     f"({sweep.quarantined} task(s))")
    if sweep.cache_stats is not None:
        stats = sweep.cache_stats
        lines.append("")
        lines.append(
            f"cache: {stats['hits']} hits / {stats['misses']} misses "
            f"({stats['hit_rate'] * 100:.0f}% hit rate, "
            f"{stats['corrupt_discarded']} corrupt discarded)")
    return "\n".join(lines)
