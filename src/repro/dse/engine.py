"""Parallel design-point evaluation engine.

The paper's economics (Figure 1) hinge on evaluating *many* design
points per statistical profile.  Every point is an independent
synthetic-trace simulation, so the sweep is embarrassingly parallel:
this engine fans (point, seed) evaluations out over a
``ProcessPoolExecutor`` supervised by a
:class:`~repro.dse.supervisor.PoolSupervisor` — worker death breaks a
pool, the supervisor rebuilds it, requeues the lease-tracked in-flight
tasks, quarantines repeat offenders as poison points, and degrades to
serial in-process execution when the pool cannot be kept alive — while
keeping the fault-tolerance semantics of
:class:`~repro.runner.TaskRunner` — per-evaluation wall-clock
timeouts, bounded retry with backoff, fault injection, and exception
containment — applied **per design point** rather than per benchmark.

Determinism: each evaluation's synthesis seed is derived from a stable
hash of (experiment, benchmark, config hash, base seed), never from
inherited process RNG state, so a serial sweep, an ``--jobs N`` sweep
and a resumed sweep all produce bit-identical metrics.

With a :class:`~repro.dse.cache.ResultCache` attached, already-known
(profile, config, seed) evaluations are served from disk and fresh ones
are written back — the cache *is* the sweep's checkpoint/resume
mechanism.
"""

from __future__ import annotations

import hashlib
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import MachineConfig
from repro.errors import is_retryable
from repro.faults import ChaosPlan, plan_from_env
from repro.health.budget import (Budget, HealthPolicy, active_budget,
                                 check_expired, install_budget)
from repro.obs import events as obs_events
from repro.obs.metrics import get_registry
from repro.runner import RunnerPolicy, TaskRunner, WorkUnit
from repro.runner.runner import call_with_timeout
from repro.dse.cache import ResultCache, result_key
from repro.dse.space import DesignPoint, profile_content_hash
from repro.dse.supervisor import (
    PoolSupervisor,
    Quarantine,
    SupervisorPolicy,
    clear_lease,
    write_lease,
)

#: Sentinel: "no explicit plan given, consult the environment".
_ENV_PLAN = object()


def derive_point_seed(experiment: str, benchmark: Optional[str],
                      config_hash: str, seed: int) -> int:
    """Deterministic per-evaluation synthesis seed.

    A stable hash of the evaluation's identity — not parent RNG state —
    so worker processes, serial loops and resumed runs all synthesize
    the same trace for the same design point.
    """
    text = "\x00".join([experiment, benchmark or "", config_hash,
                        str(seed)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def evaluate_metrics(profile, config: MachineConfig, seed: int,
                     reduction_factor: float,
                     vector: bool = False) -> Dict[str, float]:
    """One design-point evaluation: synthesize with *seed*, simulate,
    return the paper's metrics.  This single function feeds the serial
    path, the worker processes and the speedup experiment, so all of
    them are numerically identical by construction.

    *vector* routes the evaluation through the columnar batch kernels —
    a statistically equivalent but different draw sequence, so vector
    and scalar metrics are cached under distinct keys (see
    :func:`repro.dse.cache.result_key`).

    The degradation ladder can override *vector*: once the ``vector``
    breaker is open (canary drift, soft-RSS pressure) the evaluation
    runs on the scalar rung instead, and the returned ``mode`` records
    which rung actually executed so callers never cache a scalar draw
    sequence under a vector key.
    """
    from repro.health.ladder import get_ladder
    from repro.power.wattch import energy_delay_product

    if vector and get_ladder().is_open("vector"):
        vector = False
    if vector:
        from repro.core.columnar import generate_columnar_trace
        from repro.core.framework import simulate_columnar_trace
        from repro.health.canary import maybe_check_columnar

        columnar = generate_columnar_trace(profile, reduction_factor,
                                           seed=seed)
        maybe_check_columnar(profile, columnar)
        result, power = simulate_columnar_trace(columnar, config)
        count = len(columnar.iclass)
    else:
        from repro.core.framework import simulate_synthetic_trace
        from repro.core.synthesis import generate_synthetic_trace

        synthetic = generate_synthetic_trace(profile, reduction_factor,
                                             seed=seed)
        result, power = simulate_synthetic_trace(synthetic, config)
        count = len(synthetic)
    return {
        "ipc": result.ipc,
        "epc": power.total,
        "edp": energy_delay_product(power.total, result.ipc),
        "synthetic_instructions": count,
        "mode": "vector" if vector else "scalar",
    }


# -- worker-process machinery -----------------------------------------
#
# Module-level so the pool can pickle them; the profile is shipped once
# per worker (as its serialized dict) via the initializer instead of
# once per task.

_WORKER_PROFILE = None
_WORKER_FAULT_PLAN: Optional[Any] = None
_WORKER_LEASE_DIR: Optional[str] = None


def _worker_init(profile_payload: Dict,
                 chaos_spec: Optional[str] = None,
                 lease_dir: Optional[str] = None,
                 telemetry_payload: Optional[Dict] = None,
                 flight_dir: Optional[str] = None,
                 tables_descriptor: Optional[Dict] = None,
                 health_payload: Optional[Dict] = None) -> None:
    global _WORKER_PROFILE, _WORKER_FAULT_PLAN, _WORKER_LEASE_DIR
    from repro.core.serialization import profile_from_dict
    from repro.core.synthesis import prepare_recipes
    from repro.obs import flightrec, telemetry

    # Adopt the parent's trace context first, so every event this
    # worker ever emits (including recipe warm-up below) carries the
    # sweep's trace id; install the flight recorder next, so a chaos
    # kill or unhandled crash leaves the worker's final moments behind.
    telemetry.adopt(telemetry_payload)
    if flight_dir:
        # signals stays on: a SIGTERM'd worker dumps its buffer, then
        # re-delivers the signal so its exit status still reads
        # "killed by SIGTERM" and crash attribution stays innocent.
        flightrec.install(flight_dir)
    _WORKER_PROFILE = profile_from_dict(profile_payload)
    # An explicit plan from the parent (e.g. the CLI's --chaos) is
    # shipped as its spec string; otherwise the worker consults the
    # environment it inherited, same as the serial path.
    _WORKER_FAULT_PLAN = (ChaosPlan.parse(chaos_spec) if chaos_spec
                          else plan_from_env())
    _WORKER_LEASE_DIR = lease_dir
    if health_payload:
        # The sweep's budget (absolute deadline, RSS ceilings, canary
        # policy) is installed before any evaluation runs; cooperative
        # checkpoints inside the kernels consult it from then on.
        install_budget(Budget(
            HealthPolicy.from_payload(health_payload.get("policy")),
            deadline_at=health_payload.get("deadline_at")))
    if tables_descriptor is not None:
        # Vector sweep: adopt the parent's published columnar tables
        # (zero-copy views into the shared segment) instead of
        # recompiling them from the unpickled profile in every worker.
        from repro.core.columnar import adopt_columnar_tables
        from repro.core.shm_tables import attach_tables

        try:
            tables = attach_tables(tables_descriptor)
        except Exception:
            # A vanished segment (publisher died mid-init) degrades to
            # the local build inside the first evaluation — correctness
            # never depends on the shared copy.  Record the rung change
            # so the degradation is visible, not silent.
            from repro.health.ladder import get_ladder

            get_ladder().trip(
                "tables", reason="shared tables attach failed")
        else:
            adopt_columnar_tables(_WORKER_PROFILE.sfg, tables)
            get_registry().counter("dse.shared_tables_attached").inc()
    # Warm every context's sampler tables once per worker so each of the
    # worker's (point, seed) evaluations starts with compiled recipes
    # instead of rebuilding them on the first synthesis call.
    prepare_recipes(_WORKER_PROFILE)


def _run_task(task: Dict[str, Any], profile, policy: RunnerPolicy,
              fault_plan: Optional[Any]) -> Dict[str, Any]:
    """Execute one (point, seed) evaluation with TaskRunner semantics:
    fault injection per attempt, wall-clock timeout, bounded retry with
    backoff, and containment of any exception into a structured
    failure record."""
    from repro.core.serialization import config_from_dict

    vector = bool(task.get("vector"))
    config = config_from_dict(task["config"])
    if vector:
        from repro.core.columnar import columnar_tables_cached

        recipe_reuse = columnar_tables_cached(profile.sfg)
    else:
        from repro.core.synthesis import tables_cached

        recipe_reuse = tables_cached(profile.sfg)
    attempt = 0
    started = time.perf_counter()
    while True:
        attempt += 1
        try:
            # Fail fast on an already-blown deadline instead of paying
            # for a synthesis that a mid-flight checkpoint would abort
            # anyway.
            check_expired()
            if fault_plan is not None:
                fault_plan.inject(task["task_id"], task.get("benchmark"),
                                  attempt)
            metrics = call_with_timeout(
                lambda: evaluate_metrics(profile, config,
                                         task["derived_seed"],
                                         task["reduction_factor"],
                                         vector=vector),
                policy.timeout, task["task_id"])
        except Exception as exc:  # noqa: BLE001 — containment
            if is_retryable(exc) and attempt <= policy.max_retries:
                delay = policy.backoff(attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            return {
                "task": task, "status": "failed", "metrics": None,
                "attempts": attempt,
                "elapsed": time.perf_counter() - started,
                # The full remote traceback travels with the outcome so
                # a worker-side failure is debuggable from the parent's
                # failure record and events.jsonl, not just a bare
                # exception type.
                "error": {"type": type(exc).__name__,
                          "message": str(exc),
                          "traceback": "".join(
                              traceback.format_exception(
                                  type(exc), exc, exc.__traceback__))},
            }
        return {
            "task": task, "status": "ok", "metrics": metrics,
            "attempts": attempt,
            "elapsed": time.perf_counter() - started,
            "error": None,
            "recipe_reuse": recipe_reuse,
        }


def _evaluate_one(task: Dict[str, Any],
                  policy: RunnerPolicy) -> Dict[str, Any]:
    """Worker entry point: evaluate one task against the profile
    installed by :func:`_worker_init`.

    Writes a lease before touching the task and clears it afterwards;
    a hard crash (``os._exit`` skips ``finally``) leaves the lease for
    the supervisor's crash attribution.  The worker-kill chaos site
    fires here — after the lease, before the work — and only here:
    serial in-process evaluation has no worker to kill, which is what
    makes the supervisor's serial fallback terminate under injection.
    """
    from repro.obs.tracing import trace_span

    task_id = task["task_id"]
    budget = active_budget()
    if _WORKER_LEASE_DIR:
        write_lease(_WORKER_LEASE_DIR, task_id,
                    task.get("dispatch", 1))
        if budget is not None:
            # Route subsequent heartbeats at this task's lease so the
            # supervisor's hang watchdog can tell progress from limbo.
            budget.begin_task(_WORKER_LEASE_DIR, task_id,
                              task.get("dispatch", 1))
    try:
        with trace_span("evaluate", task=task_id,
                        bench=task.get("benchmark"),
                        seed=task.get("base_seed")):
            plan = _WORKER_FAULT_PLAN
            kill = getattr(plan, "maybe_kill_worker", None)
            if kill is not None:
                kill(task_id, task.get("dispatch", 1))
            if _WORKER_LEASE_DIR is not None:
                # Hang injection only makes sense where a watchdog can
                # shoot the victim; the serial path has no supervisor.
                hang = getattr(plan, "maybe_hang_worker", None)
                if hang is not None:
                    hang(task_id, task.get("dispatch", 1))
            balloon = getattr(plan, "maybe_balloon_memory", None)
            if balloon is not None:
                balloon(task_id, task.get("dispatch", 1))
            return _run_task(task, _WORKER_PROFILE, policy, plan)
    finally:
        if budget is not None:
            budget.end_task()
        if _WORKER_LEASE_DIR:
            clear_lease(_WORKER_LEASE_DIR, task_id)


def _evaluate_chunk(chunk: List[Dict[str, Any]],
                    policy: RunnerPolicy) -> List[Dict[str, Any]]:
    """Evaluate a batch of tasks in one call (kept for API
    compatibility; the supervised pool dispatches per task so leases
    track exactly the in-flight work)."""
    return [_evaluate_one(task, policy) for task in chunk]


# -- results -----------------------------------------------------------


@dataclass
class PointResult:
    """Aggregated outcome of one design point across synthesis seeds."""

    point: DesignPoint
    per_seed: Dict[int, Dict[str, float]] = field(default_factory=dict)
    cached_seeds: int = 0
    evaluated_seeds: int = 0
    failed_seeds: int = 0
    quarantined_seeds: int = 0
    errors: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.failed_seeds == 0 and self.quarantined_seeds == 0
                and bool(self.per_seed))

    @property
    def metrics(self) -> Dict[str, float]:
        """Mean metrics over seeds (empty when every seed failed).

        Only numeric metrics participate; annotations like ``mode``
        (the rung an evaluation actually executed on) ride along in
        ``per_seed`` but cannot be averaged.
        """
        if not self.per_seed:
            return {}
        first = next(iter(self.per_seed.values()))
        keys = [key for key, value in first.items()
                if isinstance(value, (int, float))
                and not isinstance(value, bool)]
        n = len(self.per_seed)
        return {key: sum(m.get(key, 0.0)
                         for m in self.per_seed.values()) / n
                for key in keys}

    def to_row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {"point": self.point.point_id,
                               "config_hash": self.point.config_hash,
                               "ok": self.ok,
                               "cached_seeds": self.cached_seeds,
                               "evaluated_seeds": self.evaluated_seeds}
        row.update(self.point.params_dict())
        row.update(self.metrics)
        return row


@dataclass
class SweepResult:
    """Everything one engine invocation produced."""

    results: List[PointResult]
    elapsed: float
    jobs: int
    seeds: Tuple[int, ...]
    reduction_factor: float
    evaluated: int = 0
    cached: int = 0
    failed: int = 0
    quarantined: int = 0
    cache_stats: Optional[Dict[str, Any]] = None
    quarantine_manifest: Optional[str] = None
    #: Ctrl-C landed mid-sweep: the result holds only cached hits and
    #: the evaluations that finished before the interrupt.
    interrupted: bool = False
    #: Tasks that never ran because of the interrupt.
    unstarted: int = 0

    @property
    def ok_results(self) -> List[PointResult]:
        return [r for r in self.results if r.ok]

    @property
    def total_tasks(self) -> int:
        return self.evaluated + self.cached + self.failed \
            + self.quarantined

    def summary(self) -> str:
        parts = [f"{len(self.results)} points", f"jobs={self.jobs}",
                 f"{self.evaluated} evaluated / {self.cached} cached / "
                 f"{self.failed} failed evaluations",
                 f"{self.elapsed:.2f}s"]
        if self.quarantined:
            parts.insert(3, f"{self.quarantined} quarantined")
        if self.interrupted:
            parts.append(f"INTERRUPTED with {self.unstarted} "
                         f"evaluation(s) never started")
        return ", ".join(parts)


# -- the engine --------------------------------------------------------


class SweepEngine:
    """Evaluates design points against one statistical profile.

    ``jobs=1`` routes every (point, seed) evaluation through a
    :class:`~repro.runner.TaskRunner` in-process; ``jobs>1`` dispatches
    tasks to a supervised process pool
    (:class:`~repro.dse.supervisor.PoolSupervisor`) whose workers apply
    the same policy (timeout, retries, fault injection) per evaluation,
    and which survives worker death by rebuilding the pool, requeueing
    in-flight tasks, quarantining poison points after
    ``supervisor_policy.max_point_retries`` attributed crashes, and
    degrading to the serial path when the pool cannot be kept alive.
    Both paths call the same :func:`evaluate_metrics` with the same
    derived seeds, so their metrics are identical.
    """

    def __init__(
        self,
        profile,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        policy: Optional[RunnerPolicy] = None,
        fault_plan: Any = _ENV_PLAN,
        experiment: str = "dse",
        benchmark: Optional[str] = None,
        supervisor_policy: Optional[SupervisorPolicy] = None,
        quarantine_path: Optional[Union[str, Any]] = None,
        log=None,
        vector: bool = False,
        health: Optional[HealthPolicy] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.profile = profile
        self.jobs = jobs
        self.vector = vector
        self.health = (health if health is not None
                       else HealthPolicy.from_env())
        #: Absolute wall-clock cutoff, computed once per evaluate().
        self._deadline_at: Optional[float] = None
        self.cache = cache
        self.policy = policy or RunnerPolicy()
        if fault_plan is _ENV_PLAN:
            fault_plan = plan_from_env()
        self.fault_plan: Optional[Any] = fault_plan
        self.experiment = experiment
        self.benchmark = benchmark
        self.supervisor_policy = supervisor_policy or SupervisorPolicy()
        self.quarantine = Quarantine(
            path=quarantine_path,
            max_point_retries=self.supervisor_policy.max_point_retries)
        self.log = log or (lambda message: None)
        self.profile_hash = profile_content_hash(profile)

    # -- task construction ---------------------------------------------

    def _task(self, index: int, point: DesignPoint, seed: int,
              reduction_factor: float) -> Dict[str, Any]:
        from repro.core.serialization import config_to_dict

        return {
            "task_id": (f"{self.experiment}/"
                        f"{self.benchmark or 'profile'}/"
                        f"{point.point_id}/seed{seed}"),
            "point_index": index,
            "point_id": point.point_id,
            "benchmark": self.benchmark,
            "config": config_to_dict(point.config),
            "base_seed": seed,
            "derived_seed": derive_point_seed(
                self.experiment, self.benchmark, point.config_hash,
                seed),
            "reduction_factor": reduction_factor,
            "vector": self.vector,
            "key": result_key(self.profile_hash, point.config_hash,
                              seed, reduction_factor,
                              mode="vector" if self.vector
                              else "scalar"),
        }

    # -- execution paths -----------------------------------------------

    def _run_serial(self, tasks: List[Dict[str, Any]]
                    ) -> List[Dict[str, Any]]:
        """In-process path: one TaskRunner work unit per evaluation, so
        timeouts/retry/fault-injection apply per design point."""
        from repro.core.synthesis import prepare_recipes, tables_cached

        # Same warm-start the pool workers get from _worker_init: build
        # the sampler tables once, before the first evaluation.
        if self.vector:
            from repro.core.columnar import (columnar_tables_cached,
                                             columnar_tables_for)

            columnar_tables_for(self.profile.sfg)
            recipe_reuse = columnar_tables_cached(self.profile.sfg)
        else:
            prepare_recipes(self.profile)
            recipe_reuse = tables_cached(self.profile.sfg)
        runner = TaskRunner(policy=self.policy,
                            fault_plan=self.fault_plan,
                            raise_on_total_failure=False,
                            log=self.log)
        units = [WorkUnit(experiment=self.experiment,
                          benchmark=self.benchmark,
                          seed=task["base_seed"],
                          params=(("point", task["point_index"]),))
                 for task in tasks]
        task_by_unit = dict(zip(units, tasks))

        def fn(unit: WorkUnit) -> Dict[str, Any]:
            from repro.core.serialization import config_from_dict

            # Same fail-fast the pool workers get in _run_task: a
            # blown deadline fails the remaining points immediately
            # instead of waiting for an in-loop checkpoint (which a
            # very short synthesis may never reach).
            check_expired()
            task = task_by_unit[unit]
            return evaluate_metrics(
                self.profile, config_from_dict(task["config"]),
                task["derived_seed"], task["reduction_factor"],
                vector=bool(task.get("vector")))

        report = runner.run(units, fn)
        outcomes = []
        for task, unit_outcome in zip(tasks, report.outcomes):
            outcomes.append({
                "task": task,
                "status": ("ok" if unit_outcome.status != "failed"
                           else "failed"),
                "metrics": unit_outcome.result,
                "attempts": unit_outcome.attempts,
                "elapsed": unit_outcome.elapsed,
                "error": unit_outcome.error,
                "recipe_reuse": recipe_reuse,
            })
        return outcomes

    def _flight_dir(self) -> Optional[str]:
        """Where worker flight-recorder dumps land: the telemetry trace
        directory when one is active, else next to the quarantine
        manifest (so chaos runs without --trace-dir still capture the
        victim's final moments)."""
        from repro.obs import telemetry

        trace_dir = telemetry.trace_directory()
        if trace_dir is not None:
            return str(trace_dir)
        path = getattr(self.quarantine, "path", None)
        if path:
            return str(Path(path).resolve().parent)
        return None

    def _run_parallel(self, tasks: List[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
        from repro.core.serialization import profile_to_dict
        from repro.obs import telemetry

        self.log(f"dispatching {len(tasks)} evaluations to "
                 f"{self.jobs} supervised workers")
        payload = profile_to_dict(self.profile)
        # An explicit ChaosPlan must reach the workers even though it
        # never entered the environment; ship its spec string through
        # the pool initializer.
        chaos_spec = (self.fault_plan.to_spec()
                      if isinstance(self.fault_plan, ChaosPlan)
                      else None)
        # Trace context + flight-recorder target ride the same
        # initializer, so worker spans stitch into this sweep's trace
        # and crashed workers leave flightrec-<pid>.jsonl behind.
        telemetry_payload = telemetry.propagation_payload()
        flight_dir = self._flight_dir()
        health_payload = {"policy": self.health.to_payload(),
                          "deadline_at": self._deadline_at}
        with tempfile.TemporaryDirectory(
                prefix="repro-leases-") as lease_dir:
            published = None
            descriptor = None
            restore_sigterm = None
            if self.vector:
                # Publish the compiled columnar tables once; every
                # worker attaches the shared segment in _worker_init
                # instead of recompiling from its unpickled profile.
                from repro.core.columnar import columnar_tables_for
                from repro.core.shm_tables import publish_tables

                published = publish_tables(
                    columnar_tables_for(self.profile.sfg),
                    fallback_dir=lease_dir)
                descriptor = published.descriptor
                # Hygiene: a SIGTERM'd sweep unlinks its segment before
                # dying (atexit alone is skipped when the default
                # handler terminates the process).
                import signal

                def _on_term(signum, frame):
                    # Convert SIGTERM into the interrupt path: the
                    # exception unwinds through the supervisor (which
                    # attaches finished outcomes), every ``finally``
                    # here runs (segment unlink, lease dir removal),
                    # and the caller still gets a partial report
                    # instead of a silent kill that leaks /dev/shm.
                    raise KeyboardInterrupt

                try:
                    previous = signal.signal(signal.SIGTERM, _on_term)
                except ValueError:  # not the main thread
                    previous = None
                else:
                    def restore_sigterm() -> None:
                        signal.signal(signal.SIGTERM, previous)

            def pool_factory() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_worker_init,
                    initargs=(payload, chaos_spec, lease_dir,
                              telemetry_payload, flight_dir,
                              descriptor, health_payload))

            supervisor = PoolSupervisor(
                pool_factory=pool_factory,
                task_fn=_evaluate_one,
                runner_policy=self.policy,
                policy=self.supervisor_policy,
                quarantine=self.quarantine,
                serial_fn=self._run_serial,
                lease_dir=lease_dir,
                flight_dir=flight_dir,
                log=self.log,
                health=self.health)
            try:
                return supervisor.run(tasks)
            finally:
                if published is not None:
                    published.unlink()
                if restore_sigterm is not None:
                    restore_sigterm()

    # -- public API ----------------------------------------------------

    def evaluate(self, points: Sequence[DesignPoint],
                 seeds: Sequence[int] = (0,),
                 reduction_factor: float = 6.0) -> SweepResult:
        """Evaluate every point under every seed; aggregate per point.

        Cache hits are resolved up front in the parent process; only
        misses are dispatched.  Fresh results (but never failures) are
        written back to the cache.
        """
        from repro.obs.tracing import trace_span

        # The sweep span is the parent every worker's evaluate span
        # hangs off (its id travels in the pool-init trace context).
        with trace_span("sweep", experiment=self.experiment,
                        bench=self.benchmark):
            return self._evaluate(points, seeds, reduction_factor)

    def _evaluate(self, points: Sequence[DesignPoint],
                  seeds: Sequence[int] = (0,),
                  reduction_factor: float = 6.0) -> SweepResult:
        started = time.perf_counter()
        registry = get_registry()
        # The deadline is relative to sweep start; the absolute cutoff
        # computed here ships to every worker so their cooperative
        # checkpoints all measure against the same wall clock.
        self._deadline_at = (time.time() + self.health.deadline
                             if self.health.deadline else None)
        stats_before = (self.cache.stats.to_payload()
                        if self.cache is not None else None)
        obs_events.emit("sweep_start", level="debug",
                        experiment=self.experiment,
                        benchmark=self.benchmark,
                        points=len(points), seeds=list(seeds),
                        jobs=self.jobs,
                        reduction_factor=reduction_factor)
        results = [PointResult(point=point) for point in points]

        pending: List[Dict[str, Any]] = []
        cached = 0
        for index, point in enumerate(points):
            for seed in seeds:
                task = self._task(index, point, seed, reduction_factor)
                entry = self.cache.get(task["key"]) \
                    if self.cache is not None else None
                if entry is not None and isinstance(
                        entry.get("metrics"), dict):
                    result = results[index]
                    result.per_seed[seed] = entry["metrics"]
                    result.cached_seeds += 1
                    cached += 1
                else:
                    pending.append(task)

        interrupted = False
        outcomes: List[Dict[str, Any]] = []
        if pending:
            # Serial evaluations checkpoint against this budget from
            # inside the simulation loops; for jobs>1 the workers get
            # their own budgets via the pool initializer and this one
            # merely covers any serial fallback.
            install_budget(Budget(self.health,
                                  deadline_at=self._deadline_at))
            try:
                if self.jobs > 1:
                    outcomes = self._run_parallel(pending)
                else:
                    outcomes = self._run_serial(pending)
            except KeyboardInterrupt as exc:
                # Ctrl-C: keep whatever finished (the supervisor ships
                # its collected outcomes on the exception; the serial
                # path has none), report the sweep as interrupted and
                # let the caller exit with the interrupt status code
                # instead of a raw pool traceback.
                interrupted = True
                outcomes = list(getattr(exc, "outcomes", []))
                obs_events.emit(
                    "sweep_interrupted", level="warning",
                    msg=(f"sweep interrupted: {len(outcomes)} of "
                         f"{len(pending)} dispatched evaluation(s) "
                         f"finished; writing the partial report"),
                    experiment=self.experiment,
                    benchmark=self.benchmark,
                    finished=len(outcomes), pending=len(pending))
            finally:
                install_budget(None)

        evaluated = failed = quarantined = recipe_reuse = 0
        for outcome in outcomes:
            if outcome["status"] == "ok" and outcome.get("recipe_reuse"):
                recipe_reuse += 1
            task = outcome["task"]
            result = results[task["point_index"]]
            registry.histogram("dse.evaluation_seconds").observe(
                outcome["elapsed"])
            if outcome["status"] == "ok":
                evaluated += 1
                result.per_seed[task["base_seed"]] = outcome["metrics"]
                result.evaluated_seeds += 1
                if self.cache is not None:
                    key = task["key"]
                    mode = outcome["metrics"].get("mode")
                    keyed = "vector" if task.get("vector") else "scalar"
                    if mode and mode != keyed:
                        # The worker degraded rungs mid-sweep (e.g.
                        # canary drift tripped vector→scalar): store
                        # the result under the rung that actually ran,
                        # never under the key the dispatcher assumed.
                        key = result_key(
                            self.profile_hash,
                            result.point.config_hash,
                            task["base_seed"],
                            task["reduction_factor"], mode=mode)
                    self.cache.put(key, outcome["metrics"],
                                   meta={
                                       "task_id": task["task_id"],
                                       "base_seed": task["base_seed"],
                                       "derived_seed":
                                           task["derived_seed"],
                                       "reduction_factor":
                                           task["reduction_factor"],
                                       "profile": self.profile_hash,
                                   })
            elif outcome["status"] == "quarantined":
                quarantined += 1
                result.quarantined_seeds += 1
                result.errors.append(
                    {"task_id": task["task_id"], **(outcome["error"]
                                                    or {})})
            else:
                failed += 1
                result.failed_seeds += 1
                error = outcome["error"] or {}
                result.errors.append(
                    {"task_id": task["task_id"], **error})
                message = (f"{task['task_id']}: failed after "
                           f"{outcome['attempts']} attempt(s): "
                           f"{error.get('type')}: "
                           f"{error.get('message')}")
                obs_events.emit("point_failed", msg=message,
                                level="warning",
                                task=task["task_id"],
                                attempts=outcome["attempts"],
                                error=error.get("type"),
                                traceback=error.get("traceback"))
                self.log(message)

        registry.counter("dse.evaluated").inc(evaluated)
        registry.counter("dse.failed").inc(failed)
        registry.counter("dse.quarantined").inc(quarantined)
        registry.counter("dse.cache_hits").inc(cached)
        # Evaluations that started with warm sampler tables (prebuilt in
        # _worker_init / at the start of the serial path) rather than
        # compiling recipes inside the timed evaluation.
        registry.counter("dse.recipe_reuse").inc(recipe_reuse)
        if stats_before is not None:
            stats_after = self.cache.stats.to_payload()

            def _delta(key: str) -> int:
                return int(stats_after[key]) - int(stats_before[key])

            registry.counter("dse.cache_misses").inc(_delta("misses"))
            registry.counter("dse.cache_writes").inc(_delta("writes"))
            registry.counter("dse.cache_corrupt_discarded").inc(
                _delta("corrupt_discarded"))
            registry.counter("dse.cache_io_errors").inc(
                _delta("io_errors"))
        # The supervised pool already wrote the manifest; this covers
        # serial runs (and is a harmless atomic rewrite otherwise) so
        # a requested --quarantine file always exists afterwards.
        manifest = self.quarantine.write()
        elapsed = time.perf_counter() - started
        obs_events.emit("sweep_end", level="debug",
                        experiment=self.experiment,
                        benchmark=self.benchmark,
                        evaluated=evaluated, cached=cached,
                        failed=failed, quarantined=quarantined,
                        interrupted=interrupted,
                        elapsed=round(elapsed, 6))
        return SweepResult(
            results=results,
            elapsed=elapsed,
            jobs=self.jobs,
            seeds=tuple(seeds),
            reduction_factor=reduction_factor,
            evaluated=evaluated,
            cached=cached,
            failed=failed,
            quarantined=quarantined,
            cache_stats=(self.cache.stats.to_payload()
                         if self.cache is not None else None),
            quarantine_manifest=(str(manifest) if manifest else None),
            interrupted=interrupted,
            unstarted=(len(pending) - len(outcomes) if interrupted
                       else 0),
        )
