"""Design-point model: declarative sweep specifications.

A design-space study (paper section 4.6) is a set of machine
configurations derived from a base :class:`~repro.config.MachineConfig`
by varying a few fields.  A :class:`SweepSpec` describes that set
declaratively — as a full grid, an explicit point list, or a random
sample — and expands to :class:`DesignPoint`\\ s, each carrying a
stable content hash of its full configuration.  The hash is what the
result cache (:mod:`repro.dse.cache`) keys on, so two sweeps that
overlap in configuration space share cached evaluations even when their
specs differ.

Only *profile-invariant* fields are sweepable: the whole economy of the
methodology is that one statistical profile serves every design point,
which holds for the window, widths, functional units and pipeline
latencies but **not** for caches, the branch predictor or the IFQ
(section 4.4 — those change the profile itself and need re-profiling).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, fields, replace
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import MachineConfig
from repro.errors import SweepSpecError

#: MachineConfig fields that do not change the statistical profile and
#: may therefore be swept against a single profile.
SWEEPABLE_FIELDS = frozenset({
    "ruu_size", "lsq_size",
    "decode_width", "issue_width", "commit_width",
    "int_alus", "load_store_units", "fp_adders",
    "int_mult_divs", "fp_mult_divs",
    "in_order_issue", "enforce_anti_dependencies", "conservative_loads",
    "branch_misprediction_penalty", "fetch_redirect_penalty",
    "memory_latency",
})

#: Virtual field: sets decode, issue and commit width together (the
#: paper's width sweep).
WIDTH_ALIAS = "width"

MODES = ("grid", "list", "random")


def canonical_json(payload: Any) -> str:
    """The canonical encoding every dse hash is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_hash(config: MachineConfig) -> str:
    """Stable content hash of a full machine configuration."""
    from repro.core.serialization import config_to_dict

    return hashlib.sha256(
        canonical_json(config_to_dict(config)).encode("utf-8")
    ).hexdigest()


def profile_content_hash(profile) -> str:
    """Stable content hash of a statistical profile's full payload
    (flow graph, contexts, measurement config)."""
    from repro.core.serialization import profile_to_dict

    return hashlib.sha256(
        canonical_json(profile_to_dict(profile)).encode("utf-8")
    ).hexdigest()


def apply_overrides(base: MachineConfig,
                    overrides: Dict[str, Any]) -> MachineConfig:
    """Return *base* with the sweep *overrides* applied.

    Raises :class:`SweepSpecError` for unknown or unsweepable fields
    and :class:`ValueError` for combinations MachineConfig itself
    rejects (e.g. an LSQ larger than the RUU).
    """
    config = base
    plain: Dict[str, Any] = {}
    for name, value in overrides.items():
        if name == WIDTH_ALIAS:
            config = config.with_width(int(value))
        elif name in SWEEPABLE_FIELDS:
            plain[name] = value
        else:
            raise SweepSpecError(
                f"field {name!r} is not sweepable against one profile "
                f"(sweepable: {WIDTH_ALIAS}, "
                f"{', '.join(sorted(SWEEPABLE_FIELDS))})")
    if plain:
        config = replace(config, **plain)
    return config


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of the design space under study."""

    config: MachineConfig
    params: Tuple[Tuple[str, Any], ...] = ()
    _hash_cache: Dict[str, str] = field(default_factory=dict, repr=False,
                                        compare=False, hash=False)

    @property
    def point_id(self) -> str:
        """Human-readable label built from the swept parameters."""
        if not self.params:
            return "base"
        return ",".join(f"{k}={v}" for k, v in self.params)

    @property
    def config_hash(self) -> str:
        if "config" not in self._hash_cache:
            self._hash_cache["config"] = config_hash(self.config)
        return self._hash_cache["config"]

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


def _sorted_params(overrides: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a design-space sweep.

    ``mode`` selects how ``parameters``/``points`` expand:

    * ``grid`` — full cross product of every ``parameters`` value list;
    * ``list`` — exactly the override dicts in ``points``;
    * ``random`` — ``samples`` distinct points drawn uniformly (with a
      deterministic ``seed``) from the grid that ``parameters`` spans.

    ``base`` holds overrides applied to the baseline configuration
    before the sweep parameters (e.g. pin ``memory_latency`` for the
    whole study).  Combinations the configuration model rejects (LSQ
    larger than the RUU) are silently skipped, as in the paper's
    constrained grid.
    """

    name: str = "sweep"
    mode: str = "grid"
    parameters: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    points: Tuple[Tuple[Tuple[str, Any], ...], ...] = ()
    samples: int = 0
    seed: int = 0
    base: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise SweepSpecError(
                f"unknown sweep mode {self.mode!r}; expected one of "
                f"{', '.join(MODES)}")
        if self.mode == "random" and self.samples < 1:
            raise SweepSpecError(
                "random sweeps require a positive 'samples' count")
        if self.mode in ("grid", "random") and not self.parameters:
            raise SweepSpecError(
                f"{self.mode} sweeps require a non-empty 'parameters' "
                f"mapping")
        if self.mode == "list" and not self.points:
            raise SweepSpecError("list sweeps require a 'points' array")

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise SweepSpecError(
                f"sweep spec must be a JSON object, got "
                f"{type(data).__name__}")
        unknown = set(data) - {"name", "mode", "parameters", "points",
                               "samples", "seed", "base"}
        if unknown:
            raise SweepSpecError(
                f"sweep spec has unknown keys: {', '.join(sorted(unknown))}")
        parameters = data.get("parameters", {})
        if not isinstance(parameters, dict) or not all(
                isinstance(values, (list, tuple)) and values
                for values in parameters.values()):
            raise SweepSpecError(
                "'parameters' must map field names to non-empty value "
                "lists")
        points = data.get("points", [])
        if not isinstance(points, list) or not all(
                isinstance(point, dict) for point in points):
            raise SweepSpecError("'points' must be a list of objects")
        return cls(
            name=str(data.get("name", "sweep")),
            mode=str(data.get("mode", "grid")),
            parameters=tuple(sorted(
                (name, tuple(values))
                for name, values in parameters.items())),
            points=tuple(_sorted_params(point) for point in points),
            samples=int(data.get("samples", 0)),
            seed=int(data.get("seed", 0)),
            base=_sorted_params(data.get("base", {})),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SweepSpecError(
                f"cannot read sweep spec {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepSpecError(
                f"sweep spec {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "mode": self.mode,
            "parameters": {name: list(values)
                           for name, values in self.parameters},
            "points": [dict(point) for point in self.points],
            "samples": self.samples,
            "seed": self.seed,
            "base": dict(self.base),
        }

    # -- expansion -----------------------------------------------------

    def _candidate_overrides(self) -> List[Dict[str, Any]]:
        if self.mode == "list":
            return [dict(point) for point in self.points]
        names = [name for name, _ in self.parameters]
        grids = [values for _, values in self.parameters]
        combos = [dict(zip(names, combo)) for combo in product(*grids)]
        if self.mode == "grid":
            return combos
        rng = random.Random(self.seed)
        if self.samples >= len(combos):
            return combos
        return rng.sample(combos, self.samples)

    def expand(self, base: Optional[MachineConfig] = None
               ) -> List[DesignPoint]:
        """Materialize the spec into concrete design points.

        Raises :class:`SweepSpecError` when every candidate violates
        the configuration model (an empty sweep is always a spec bug).
        """
        if base is None:
            from repro.config import baseline_config

            base = baseline_config()
        base = apply_overrides(base, dict(self.base))
        points: List[DesignPoint] = []
        seen: set = set()
        for overrides in self._candidate_overrides():
            try:
                config = apply_overrides(base, overrides)
            except ValueError as exc:
                if isinstance(exc, SweepSpecError):
                    raise
                continue  # constraint-violating combo: skip, as paper
            params = _sorted_params(overrides)
            if params in seen:
                continue
            seen.add(params)
            points.append(DesignPoint(config=config, params=params))
        if not points:
            raise SweepSpecError(
                f"sweep {self.name!r} expands to zero valid design "
                f"points")
        return points


def reduced_sec46_spec(ruu_sizes: Sequence[int] = (16, 32, 64, 128),
                       lsq_sizes: Sequence[int] = (8, 16, 32),
                       widths: Sequence[int] = (2, 4, 8)) -> SweepSpec:
    """The reduced section 4.6 grid (RUU x LSQ x width) used by the
    `sec46` experiment, the CLI default and the CI smoke job."""
    return SweepSpec(
        name="sec46-reduced",
        mode="grid",
        parameters=(
            ("lsq_size", tuple(lsq_sizes)),
            ("ruu_size", tuple(ruu_sizes)),
            ("width", tuple(widths)),
        ),
    )
