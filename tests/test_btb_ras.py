"""Tests for the branch target buffer and return address stack."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=16, associativity=4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_target_overwrite(self):
        btb = BranchTargetBuffer(entries=16, associativity=4)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000
        assert btb.occupancy() == 1

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(entries=2, associativity=2)
        # All these PCs map to set 0 of a 1-set... use 2 entries, 2-way
        # -> one set, capacity 2.
        btb.update(0x0, 1)
        btb.update(0x10, 2)
        btb.lookup(0x0)          # refresh 0x0 -> 0x10 becomes LRU
        btb.update(0x20, 3)      # evicts 0x10
        assert btb.lookup(0x10) is None
        assert btb.lookup(0x0) == 1
        assert btb.lookup(0x20) == 3

    def test_sets_isolate(self):
        btb = BranchTargetBuffer(entries=8, associativity=1)
        btb.update(0x0, 1)
        btb.update(0x8, 2)  # next set
        assert btb.lookup(0x0) == 1
        assert btb.lookup(0x8) == 2

    def test_capacity_bound(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)
        for i in range(100):
            btb.update(i * 8, i)
        assert btb.occupancy() <= 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, associativity=4)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=0, associativity=1)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(entries=8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_overwrites_oldest(self):
        ras = ReturnAddressStack(entries=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert len(ras) == 2
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack(entries=4)
        assert len(ras) == 0
        ras.push(1)
        assert len(ras) == 1

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(entries=0)
