"""Statistical invariant validation at the profile artifact boundary:
structurally valid JSON that describes an impossible profile must be
rejected with a ProfileValidationError naming the violation."""

import copy

import pytest

from repro.config import baseline_config
from repro.core.profiler import profile_trace
from repro.core.serialization import (
    load_profile,
    save_profile,
    validate_profile_invariants,
)
from repro.errors import ArtifactCorruptError, ProfileValidationError
from repro.frontend.functional import run_program
from repro.workloads.generator import WorkloadConfig, generate_program


@pytest.fixture(scope="module")
def profile():
    program = generate_program(WorkloadConfig(
        name="unit", seed=7, n_blocks=12, mean_block_size=4,
        working_set_kb=32, n_memory_streams=4))
    trace = run_program(program, n_instructions=1200)
    return profile_trace(trace, baseline_config(), order=1)


@pytest.fixture()
def mutable(profile):
    return copy.deepcopy(profile)


def first_stats(profile):
    return next(iter(profile.sfg.contexts.values()))


class TestValidProfiles:
    def test_real_profile_passes(self, profile):
        validate_profile_invariants(profile)

    def test_roundtrip_still_passes(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        loaded = load_profile(path)
        validate_profile_invariants(loaded)


class TestInvariantViolations:
    def test_occurrence_total_mismatch(self, mutable):
        first_stats(mutable).occurrences += 1
        with pytest.raises(ProfileValidationError,
                           match="total_block_executions"):
            validate_profile_invariants(mutable)

    def test_negative_occurrences(self, mutable):
        stats = first_stats(mutable)
        stats.occurrences = -stats.occurrences - 1
        with pytest.raises(ProfileValidationError,
                           match="negative occurrences"):
            validate_profile_invariants(mutable)

    def test_miss_count_past_occurrences(self, mutable):
        stats = first_stats(mutable)
        stats.il1[0] = stats.occurrences + 1
        with pytest.raises(ProfileValidationError,
                           match="il1 miss count"):
            validate_profile_invariants(mutable)

    def test_negative_dependency_histogram(self, mutable):
        stats = first_stats(mutable)
        stats.waw_hists[0][3] = -1
        with pytest.raises(ProfileValidationError,
                           match="histogram entry"):
            validate_profile_invariants(mutable)

    def test_taken_past_occurrences(self, mutable):
        stats = first_stats(mutable)
        stats.taken = stats.occurrences + 1
        with pytest.raises(ProfileValidationError, match="taken count"):
            validate_profile_invariants(mutable)

    def test_negative_outcome_count(self, mutable):
        stats = first_stats(mutable)
        stats.outcome_counts[0] = -1
        with pytest.raises(ProfileValidationError,
                           match="outcome count"):
            validate_profile_invariants(mutable)

    def test_negative_transition_count(self, mutable):
        history, counts = next(iter(mutable.sfg.transitions.items()))
        block = next(iter(counts))
        counts[block] = -1
        with pytest.raises(ProfileValidationError,
                           match="negative count"):
            validate_profile_invariants(mutable)

    def test_zero_sum_transition_edge(self, mutable):
        history, counts = next(iter(mutable.sfg.transitions.items()))
        for block in counts:
            counts[block] = 0
        with pytest.raises(ProfileValidationError,
                           match="cannot\\s+normalize"):
            validate_profile_invariants(mutable)


class TestLoadBoundary:
    def test_load_rejects_invalid_profile(self, mutable, tmp_path):
        stats = first_stats(mutable)
        stats.il1[0] = stats.occurrences + 1
        path = tmp_path / "bad.json"
        save_profile(mutable, path)  # checksum is recomputed: valid JSON
        with pytest.raises(ProfileValidationError):
            load_profile(path)

    def test_validation_error_is_artifact_corrupt(self):
        err = ProfileValidationError("x")
        assert isinstance(err, ArtifactCorruptError)

    def test_error_names_the_profile(self, mutable):
        first_stats(mutable).occurrences += 1
        with pytest.raises(ProfileValidationError,
                           match=repr(mutable.name)):
            validate_profile_invariants(mutable)
