"""Tests for synthetic trace generation (the nine-step algorithm)."""

import pytest

from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.branch.unit import BranchOutcome
from repro.core.profiler import profile_trace
from repro.core.reduction import reduce_flow_graph
from repro.core.synthesis import generate_synthetic_trace
from repro.core.synthetic import dependency_targets


@pytest.fixture
def tiny_profile(tiny_trace, config):
    return profile_trace(tiny_trace, config, order=1)


@pytest.fixture
def small_profile(small_trace, config):
    return profile_trace(small_trace, config, order=1)


class TestWalk:
    def test_emits_budgeted_blocks(self, tiny_profile):
        reduced = reduce_flow_graph(tiny_profile.sfg, 4)
        synthetic = generate_synthetic_trace(tiny_profile, 4, seed=0)
        branches = sum(1 for inst in synthetic if inst.is_branch)
        assert branches == reduced.total_blocks

    def test_deterministic_per_seed(self, small_profile):
        a = generate_synthetic_trace(small_profile, 4, seed=7)
        b = generate_synthetic_trace(small_profile, 4, seed=7)
        assert len(a) == len(b)
        assert [i.iclass for i in a] == [i.iclass for i in b]
        assert [i.dep_distances for i in a] == \
            [i.dep_distances for i in b]

    def test_seeds_differ(self, small_profile):
        a = generate_synthetic_trace(small_profile, 4, seed=1)
        b = generate_synthetic_trace(small_profile, 4, seed=2)
        assert [i.iclass for i in a] != [i.iclass for i in b]

    def test_order_zero_walk(self, small_trace, config):
        profile = profile_trace(small_trace, config, order=0)
        synthetic = generate_synthetic_trace(profile, 4, seed=0)
        reduced = reduce_flow_graph(profile.sfg, 4)
        branches = sum(1 for inst in synthetic if inst.is_branch)
        assert branches == reduced.total_blocks

    def test_block_mix_preserved(self, small_profile, small_trace):
        synthetic = generate_synthetic_trace(small_profile, 2, seed=0)
        real_mix = small_trace.instruction_mix()
        loads = sum(inst.is_load for inst in synthetic) / len(synthetic)
        assert abs(loads - real_mix.get(IClass.LOAD, 0.0)) < 0.08

    def test_max_instructions_cap(self, small_profile):
        synthetic = generate_synthetic_trace(small_profile, 1, seed=0,
                                             max_instructions=100)
        assert len(synthetic) <= 100 + 30  # cap checked per block

    def test_reduced_graph_ownership_checked(self, small_profile,
                                             tiny_profile):
        foreign = reduce_flow_graph(tiny_profile.sfg, 2)
        with pytest.raises(ValueError):
            generate_synthetic_trace(small_profile, 2, reduced=foreign)


class TestDependencies:
    def test_no_dependency_on_branch_or_store(self, small_profile):
        # Paper section 2.2 step 4: rejected and redrawn, squashed
        # after 1000 tries.
        synthetic = generate_synthetic_trace(small_profile, 2, seed=3)
        instructions = synthetic.instructions
        for index, inst in enumerate(instructions):
            for target in dependency_targets(instructions, index):
                assert instructions[target].produces_register

    def test_distances_positive(self, small_profile):
        synthetic = generate_synthetic_trace(small_profile, 2, seed=3)
        for inst in synthetic:
            for distance in inst.dep_distances:
                assert distance > 0


class TestAnnotations:
    def test_flags_only_on_loads(self, small_profile):
        synthetic = generate_synthetic_trace(small_profile, 2, seed=1)
        for inst in synthetic:
            if not inst.is_load:
                assert not inst.dl1_miss
                assert not inst.l2d_miss
                assert not inst.dtlb_miss

    def test_l2_miss_requires_l1_miss(self, small_profile):
        synthetic = generate_synthetic_trace(small_profile, 2, seed=1)
        for inst in synthetic:
            if inst.l2d_miss:
                assert inst.dl1_miss
            if inst.l2i_miss:
                assert inst.il1_miss

    def test_outcomes_only_on_branches(self, small_profile):
        synthetic = generate_synthetic_trace(small_profile, 2, seed=1)
        for inst in synthetic:
            if inst.is_branch:
                assert inst.outcome in BranchOutcome
            else:
                assert inst.outcome is None
                assert not inst.taken

    def test_misprediction_rate_preserved(self, small_trace, config):
        profile = profile_trace(small_trace, config, order=1)
        synthetic = generate_synthetic_trace(profile, 2, seed=0)
        # Real rate from the profile's own annotations.
        mispredicts = sum(s.outcome_counts[BranchOutcome.MISPREDICTION]
                          for s in profile.sfg.contexts.values())
        total = sum(s.occurrences for s in profile.sfg.contexts.values())
        real_rate = mispredicts / total
        branches = [i for i in synthetic if i.is_branch]
        syn_rate = sum(i.outcome is BranchOutcome.MISPREDICTION
                       for i in branches) / len(branches)
        assert abs(syn_rate - real_rate) < 0.05

    def test_perfect_profile_gives_clean_trace(self, small_trace,
                                               config):
        profile = profile_trace(small_trace, config, order=1,
                                branch_mode="perfect",
                                perfect_caches=True)
        synthetic = generate_synthetic_trace(profile, 2, seed=0)
        for inst in synthetic:
            assert not inst.il1_miss and not inst.dl1_miss
            if inst.is_branch:
                assert inst.outcome is BranchOutcome.CORRECT

    def test_taken_rate_preserved(self, small_trace, config):
        profile = profile_trace(small_trace, config, order=1)
        synthetic = generate_synthetic_trace(profile, 2, seed=0)
        taken_real = sum(s.taken for s in profile.sfg.contexts.values())
        total = sum(s.occurrences for s in profile.sfg.contexts.values())
        branches = [i for i in synthetic if i.is_branch]
        taken_syn = sum(i.taken for i in branches) / len(branches)
        assert abs(taken_syn - taken_real / total) < 0.07
