"""Integration tests: the observability layer wired through the
fault-tolerant runner, the CLI and the design-space engine.

The acceptance contract: running any experiment with ``--log-json``
produces a parseable JSON-lines event log plus a ``metrics.json``
snapshot containing per-phase spans, pipeline occupancy gauges and
runner/DSE counters, with retry/timeout events visible in the log.
"""

import json
import time

import pytest

from repro import obs
from repro.cli import main
from repro.experiments.common import ExperimentScale
from repro.runner import FaultPlan, RunnerPolicy, TaskRunner, WorkUnit

TINY = ExperimentScale(warmup=2_000, reference=3_000,
                       reduction_factor=4.0, seeds=(0,),
                       benchmarks=("gzip",))


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.reset()
    obs.reset_registry()
    yield
    obs.reset()
    obs.reset_registry()


def read_events(path):
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


def events_named(records, name):
    return [r for r in records if r["event"] == name]


class TestRunnerEvents:
    def test_retry_events_reach_the_log(self, tmp_path):
        """A transient injected fault produces a unit_retry event and
        bumps the runner.retries counter."""
        log = tmp_path / "events.jsonl"
        obs.configure(console=False, log_json=log)
        runner = TaskRunner(
            policy=RunnerPolicy(max_retries=1, backoff_base=0.0),
            fault_plan=FaultPlan(fail_benchmarks=("gzip",),
                                 fail_attempts=1))
        report = runner.run(
            [WorkUnit(experiment="exp", benchmark="gzip")],
            lambda unit: {"value": 1})
        assert report.summary() == "1 ok / 0 failed / 0 skipped"

        records = read_events(log)
        retries = events_named(records, "unit_retry")
        assert len(retries) == 1
        assert retries[0]["benchmark"] == "gzip"
        assert retries[0]["attempt"] == 1
        assert retries[0]["error"] == "InjectedFaultError"
        assert events_named(records, "unit_ok")
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["runner.retries"] == 1
        assert snap["counters"]["runner.units_ok"] == 1

    def test_timeout_events_reach_the_log(self, tmp_path):
        """A unit over its wall-clock budget emits unit_timeout and the
        terminal failure lands as unit_failed."""
        log = tmp_path / "events.jsonl"
        obs.configure(console=False, log_json=log)
        runner = TaskRunner(
            policy=RunnerPolicy(timeout=0.05, max_retries=0),
            fault_plan=None, raise_on_total_failure=False)
        report = runner.run(
            [WorkUnit(experiment="exp", benchmark="slow")],
            lambda unit: time.sleep(5))
        assert report.summary() == "0 ok / 1 failed / 0 skipped"

        records = read_events(log)
        timeouts = events_named(records, "unit_timeout")
        assert len(timeouts) == 1
        assert timeouts[0]["benchmark"] == "slow"
        assert timeouts[0]["timeout"] == 0.05
        failed = events_named(records, "unit_failed")
        assert failed and failed[0]["error"] == "TaskTimeoutError"
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["runner.timeouts"] == 1
        assert snap["counters"]["runner.units_failed"] == 1

    def test_run_dir_gets_metrics_snapshot(self, tmp_path):
        runner = TaskRunner(run_dir=tmp_path / "run", fault_plan=None)
        runner.run([WorkUnit(experiment="exp", benchmark="b")],
                   lambda unit: 1)
        payload = json.loads((tmp_path / "run" /
                              "metrics.json").read_text())
        assert payload["counters"]["runner.units_ok"] == 1


class TestCLIEndToEnd:
    def test_experiment_log_json_and_metrics(self, tmp_path,
                                             monkeypatch, capsys):
        """One faulted experiment run yields: a fully parseable event
        log with a retry, and a metrics.json with the Figure 1 phase
        spans, pipeline occupancy gauges and runner counters."""
        monkeypatch.setenv("REPRO_FAULT_BENCHMARKS", "gzip")
        monkeypatch.setenv("REPRO_FAULT_ATTEMPTS", "1")
        log = tmp_path / "obs" / "events.jsonl"
        code = main(["experiment", "fig6", "--benchmarks", "gzip",
                     "--run-dir", str(tmp_path / "run"),
                     "--retries", "1", "--log-json", str(log)])
        assert code == 0

        records = read_events(log)
        assert records, "event log must not be empty"
        for record in records:
            for field in obs.REQUIRED_FIELDS:
                assert field in record, f"missing {field}: {record}"
        assert events_named(records, "unit_retry")
        span_phases = {r.get("phase") for r in
                       events_named(records, "span_end")}
        assert {"profile", "reduce", "synthesize",
                "simulate"} <= span_phases

        for metrics_path in (log.parent / "metrics.json",
                             tmp_path / "run" / "metrics.json"):
            payload = json.loads(metrics_path.read_text())
            assert {"profile", "reduce", "synthesize",
                    "simulate"} <= set(payload["phases"])
            assert payload["gauges"]["pipeline.ruu_occupancy"] > 0
            assert payload["gauges"]["pipeline.lsq_occupancy"] > 0
            assert payload["gauges"]["pipeline.ifq_occupancy"] > 0
            assert payload["counters"]["runner.retries"] >= 1
            assert payload["counters"]["runner.units_ok"] >= 1
            assert payload["counters"]["pipeline.runs"] >= 1
        # the rendered table still lands on stdout
        assert "gzip" in capsys.readouterr().out

    def test_dse_counters_in_metrics(self, tmp_path, capsys):
        """Two identical cached sweeps: the second run's metrics count
        the cache hits."""
        sweep = tmp_path / "sweep.json"
        sweep.write_text(json.dumps({
            "name": "obs-tiny", "mode": "grid",
            "parameters": {"ruu_size": [32, 64], "width": [4]},
        }))
        cache = str(tmp_path / "cache")
        metrics = tmp_path / "metrics.json"
        args = ["dse", "--sweep", str(sweep), "--benchmark", "gzip",
                "--seeds", "0", "-R", "4", "--cache-dir", cache,
                "--no-verify", "--metrics", str(metrics)]
        assert main(args) == 0
        cold = json.loads(metrics.read_text())
        assert cold["counters"]["dse.evaluated"] == 2
        assert cold["counters"].get("dse.cache_hits", 0) == 0
        assert cold["counters"]["dse.cache_writes"] == 2
        assert cold["histograms"]["dse.evaluation_seconds"]["count"] == 2

        obs.reset_registry()
        assert main(args) == 0
        warm = json.loads(metrics.read_text())
        assert warm["counters"]["dse.cache_hits"] == 2
        assert warm["counters"]["dse.evaluated"] == 0
        capsys.readouterr()

    def test_quiet_and_verbose_flags(self, tmp_path, capsys):
        """--quiet hides progress; --verbose surfaces debug events."""
        run_dir = str(tmp_path / "run")
        code = main(["-q", "experiment", "table1", "--benchmarks",
                     "gzip", "--run-dir", run_dir])
        quiet_err = capsys.readouterr().err
        assert code == 0
        assert "checkpoints:" not in quiet_err

        code = main(["experiment", "table1", "--benchmarks", "gzip",
                     "--run-dir", run_dir, "--resume", "--verbose"])
        verbose_err = capsys.readouterr().err
        assert code == 0
        assert "resumed from checkpoint" in verbose_err
        assert "run_start" in verbose_err  # debug events surface


class TestBenchPhases:
    def test_bench_payload_embeds_phase_breakdown(self):
        from repro.dse.bench import run_dse_bench
        from repro.dse.space import SweepSpec

        spec = SweepSpec.from_dict({
            "name": "obs-bench", "mode": "grid",
            "parameters": {"ruu_size": [32, 64], "width": [4]},
        })
        payload = run_dse_bench(spec, "gzip", TINY, jobs=2,
                                seeds=(0,))
        assert payload["schema"] == 2
        phases = payload["phases"]
        assert "simulate" in phases and "synthesize" in phases
        for stats in phases.values():
            assert stats["count"] > 0
            assert stats["total"] >= 0.0
            assert stats["mean"] == pytest.approx(
                stats["total"] / stats["count"])
