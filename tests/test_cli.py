"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_experiment_registry_complete(self):
        # Every evaluation section of the paper plus the extensions.
        assert {"table1", "fig3", "fig4", "table3", "fig5", "fig6",
                "sec41", "fig7", "fig8", "table4", "sec46"} <= \
            set(EXPERIMENTS)


class TestCommands:
    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        output = capsys.readouterr().out
        for name in ("bzip2", "gcc", "vpr"):
            assert name in output

    def test_simulate(self, capsys):
        code = main(["simulate", "gzip", "--instructions", "4000",
                     "--warmup", "2000", "-R", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "execution-driven" in output
        assert "IPC error" in output

    def test_profile_and_synthesize(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main(["profile", "vpr", "-o", str(path),
                     "--instructions", "4000", "--warmup", "2000"]) == 0
        assert path.exists()
        assert main(["synthesize", str(path), "-R", "4",
                     "--simulate"]) == 0
        output = capsys.readouterr().out
        assert "synthetic trace" in output
        assert "IPC" in output
