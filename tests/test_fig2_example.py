"""The paper's Figure 2 worked example, reproduced exactly.

Figure 2 builds first- and second-order SFGs for the basic block
sequence ``AABAABCABC``.  This test constructs a dynamic trace with
precisely that block sequence and checks our graphs against the
figure's numbers:

* k=1 view — block occurrences A=5, B=3, C=2 and transition
  probabilities P[A|A]=40%, P[B|A]=60%, P[A|B]=1/3, P[C|B]=2/3,
  P[A|C]=100% (the figure's edge labels);
* k=2 view — the figure's pair states AA(2), AB(3), BA(1), BC(2),
  CA(1) with their transitions (e.g. state AA is always followed by B).
"""

import pytest

from repro.config import baseline_config
from repro.isa.iclass import IClass
from repro.isa.instruction import DynamicInstruction
from repro.frontend.trace import Trace
from repro.core.profiler import profile_trace
from repro.core.sfg import START_BLOCK

#: Figure 2's example basic block sequence.
SEQUENCE = "AABAABCABC"
_BLOCK_ID = {"A": 0, "B": 1, "C": 2}
_ADDRESS = {0: 0x1000, 1: 0x2000, 2: 0x3000}


def _figure2_trace() -> Trace:
    """A dynamic trace whose block sequence is exactly AABAABCABC.

    Each block is two instructions (an ALU op and the terminating
    branch); branch taken/target fields are synthesized to match the
    successor in the sequence.
    """
    instructions = []
    seq = 0
    for position, letter in enumerate(SEQUENCE):
        block = _BLOCK_ID[letter]
        base = _ADDRESS[block]
        instructions.append(DynamicInstruction(
            seq, base, IClass.INT_ALU, block, src_regs=(1,), dst_reg=2))
        seq += 1
        successor = SEQUENCE[(position + 1) % len(SEQUENCE)]
        instructions.append(DynamicInstruction(
            seq, base + 8, IClass.INT_COND_BRANCH, block,
            src_regs=(2,), taken=True,
            target=_ADDRESS[_BLOCK_ID[successor]]))
        seq += 1
    return Trace(name="fig2", instructions=instructions)


@pytest.fixture(scope="module")
def config():
    return baseline_config()


class TestFirstOrder:
    """The k=1 graph of Figure 2 (left)."""

    @pytest.fixture(scope="class")
    def sfg(self, config):
        return profile_trace(_figure2_trace(), config, order=0,
                             branch_mode="perfect",
                             perfect_caches=True).sfg

    def test_block_occurrences(self, sfg):
        # Figure 2 labels: A(5), B(3), C(2).
        occurrences = {key[-1]: stats.occurrences
                       for key, stats in sfg.contexts.items()}
        assert occurrences == {0: 5, 1: 3, 2: 2}

    def test_transition_probabilities(self, config):
        # Edge labels of the figure's k=1 graph.
        sfg = profile_trace(_figure2_trace(), config, order=1,
                            branch_mode="perfect",
                            perfect_caches=True).sfg
        assert sfg.transition_probability((0,), 0) == pytest.approx(0.4)
        assert sfg.transition_probability((0,), 1) == pytest.approx(0.6)
        assert sfg.transition_probability((1,), 0) == pytest.approx(1 / 3)
        assert sfg.transition_probability((1,), 2) == pytest.approx(2 / 3)
        assert sfg.transition_probability((2,), 0) == pytest.approx(1.0)


class TestSecondOrder:
    """The k=2 graph of Figure 2 (right): states are block pairs."""

    @pytest.fixture(scope="class")
    def sfg(self, config):
        return profile_trace(_figure2_trace(), config, order=1,
                             branch_mode="perfect",
                             perfect_caches=True).sfg

    def test_pair_occurrences(self, sfg):
        # Figure 2 labels: AA(2), AB(3), BA(1), BC(2), CA(1); the first
        # block of the trace additionally forms the start context.
        pairs = {key: stats.occurrences
                 for key, stats in sfg.contexts.items()}
        assert pairs.pop((START_BLOCK, 0)) == 1
        assert pairs == {(0, 0): 2, (0, 1): 3, (1, 0): 1,
                         (1, 2): 2, (2, 0): 1}

    def test_pair_transitions(self, config):
        # The figure's k=2 edges: AA -> AB with B(100%); AB splits
        # A(33%)/C(66%); BC -> CA with A(100%); CA -> AB; BA -> AA.
        sfg = profile_trace(_figure2_trace(), config, order=2,
                            branch_mode="perfect",
                            perfect_caches=True).sfg
        assert sfg.transition_probability((0, 0), 1) == pytest.approx(1.0)
        assert sfg.transition_probability((0, 1), 0) == \
            pytest.approx(1 / 3)
        assert sfg.transition_probability((0, 1), 2) == \
            pytest.approx(2 / 3)
        assert sfg.transition_probability((1, 2), 0) == pytest.approx(1.0)
        assert sfg.transition_probability((2, 0), 1) == pytest.approx(1.0)
        assert sfg.transition_probability((1, 0), 0) == pytest.approx(1.0)

    def test_table3_growth_pattern(self, config):
        # Node counts grow with k exactly as the example implies:
        # 3 blocks, 5+start pairs, ... (the Table 3 pattern in miniature).
        trace = _figure2_trace()
        counts = [
            profile_trace(trace, config, order=k, branch_mode="perfect",
                          perfect_caches=True).num_nodes
            for k in (0, 1, 2)
        ]
        assert counts[0] == 3
        assert counts[1] == 6      # 5 pairs + the start context
        assert counts[0] < counts[1] < counts[2]
