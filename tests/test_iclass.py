"""Unit tests for the instruction-class taxonomy."""

import pytest

from repro.isa.iclass import (
    BRANCH_CLASSES,
    CONDITIONAL_BRANCH_CLASSES,
    MEMORY_CLASSES,
    PRODUCING_CLASSES,
    FunctionalUnit,
    IClass,
    execution_latency,
    functional_unit,
    is_branch,
    produces_register,
)


def test_twelve_classes():
    # The paper's section 2.1.1 defines exactly 12 semantic classes.
    assert len(IClass) == 12


def test_branch_classes_partition():
    assert BRANCH_CLASSES == {IClass.INT_COND_BRANCH, IClass.FP_COND_BRANCH,
                              IClass.INDIRECT_BRANCH}
    assert CONDITIONAL_BRANCH_CLASSES < BRANCH_CLASSES
    assert IClass.INDIRECT_BRANCH not in CONDITIONAL_BRANCH_CLASSES


def test_memory_classes():
    assert MEMORY_CLASSES == {IClass.LOAD, IClass.STORE}


def test_producing_classes_exclude_branches_and_stores():
    # Paper section 2.2 step 4: branches and stores have no destination
    # operand, so no dependency may point at them.
    assert not PRODUCING_CLASSES & BRANCH_CLASSES
    assert IClass.STORE not in PRODUCING_CLASSES
    assert IClass.LOAD in PRODUCING_CLASSES
    # Everything else produces a register.
    assert len(PRODUCING_CLASSES) == 12 - 3 - 1


@pytest.mark.parametrize("iclass", list(IClass))
def test_every_class_has_unit_and_latency(iclass):
    assert isinstance(functional_unit(iclass), FunctionalUnit)
    assert execution_latency(iclass) >= 1


def test_memory_classes_use_load_store_units():
    assert functional_unit(IClass.LOAD) is FunctionalUnit.LOAD_STORE
    assert functional_unit(IClass.STORE) is FunctionalUnit.LOAD_STORE


def test_long_latency_ops_are_slower_than_alu():
    alu = execution_latency(IClass.INT_ALU)
    for slow in (IClass.INT_DIV, IClass.FP_DIV, IClass.FP_SQRT,
                 IClass.INT_MULT, IClass.FP_MULT):
        assert execution_latency(slow) > alu


def test_is_branch_helper():
    assert is_branch(IClass.INT_COND_BRANCH)
    assert is_branch(IClass.INDIRECT_BRANCH)
    assert not is_branch(IClass.LOAD)


def test_produces_register_helper():
    assert produces_register(IClass.FP_SQRT)
    assert not produces_register(IClass.STORE)
    assert not produces_register(IClass.FP_COND_BRANCH)
