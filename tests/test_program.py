"""Unit tests for basic blocks and static programs."""

import pytest

from repro.isa.iclass import IClass
from repro.isa.instruction import StaticInstruction
from repro.isa.program import INSTRUCTION_BYTES, BasicBlock, Program

from conftest import make_tiny_program


def _alu(dst=1):
    return StaticInstruction(IClass.INT_ALU, src_regs=(0,), dst_reg=dst)


def _branch():
    return StaticInstruction(IClass.INT_COND_BRANCH, src_regs=(1,))


class TestBasicBlock:
    def test_valid_block(self):
        block = BasicBlock(bb_id=0, address=0x1000,
                           instructions=[_alu(), _branch()],
                           taken_target=0, fallthrough=0)
        assert block.size == 2
        assert block.branch.is_branch
        assert block.branch_pc == 0x1000 + INSTRUCTION_BYTES

    def test_requires_terminating_branch(self):
        with pytest.raises(ValueError):
            BasicBlock(bb_id=0, address=0, instructions=[_alu()])

    def test_rejects_mid_block_branch(self):
        with pytest.raises(ValueError):
            BasicBlock(bb_id=0, address=0,
                       instructions=[_branch(), _alu(), _branch()])

    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            BasicBlock(bb_id=0, address=0, instructions=[])

    def test_instruction_pc(self):
        block = BasicBlock(bb_id=0, address=0x100,
                           instructions=[_alu(), _alu(2), _branch()],
                           taken_target=0, fallthrough=0)
        assert block.instruction_pc(0) == 0x100
        assert block.instruction_pc(2) == 0x100 + 2 * INSTRUCTION_BYTES

    def test_indirect_flag(self):
        block = BasicBlock(
            bb_id=0, address=0,
            instructions=[StaticInstruction(IClass.INDIRECT_BRANCH,
                                            src_regs=(1,))],
            indirect_targets=(0,), branch_behavior=0)
        assert block.is_indirect


class TestProgram:
    def test_tiny_program_valid(self):
        program = make_tiny_program()
        assert program.num_blocks == 2
        assert program.static_instruction_count == 5

    def test_dense_ids_required(self):
        block = BasicBlock(bb_id=1, address=0,
                           instructions=[_branch()],
                           taken_target=0, fallthrough=0)
        with pytest.raises(ValueError):
            Program(name="bad", blocks=[block])

    def test_unknown_target_rejected(self):
        block = BasicBlock(bb_id=0, address=0,
                           instructions=[_branch()],
                           taken_target=5, fallthrough=0)
        with pytest.raises(ValueError):
            Program(name="bad", blocks=[block])

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program(name="empty", blocks=[])

    def test_block_at_address(self):
        program = make_tiny_program()
        mapping = program.block_at_address()
        assert mapping[0x1000] == 0
        assert mapping[0x2000] == 1

    def test_reachability(self):
        program = make_tiny_program()
        assert program.validate_reachability() == [0, 1]
