"""Bench payload contract: schema validation, baseline regression
checks and the committed baseline file itself — all without running
the (seconds-long) benchmark; ``benchmarks/perf/test_hotpath.py`` and
the CI perf-smoke job run the real thing."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    check_regression,
    validate_payload,
    write_bench,
)
from repro.bench.hotpath import PHASE_KEYS, REQUIRED_KEYS

BASELINE_PATH = (Path(__file__).resolve().parents[1]
                 / "benchmarks" / "perf" / "BASELINE_hotpath.json")


def make_phase(speedup=2.0, units=1000):
    before = 1.0
    after = before / speedup
    return {
        "unit": "instruction", "units": units, "repeats": 1,
        "before_seconds": before, "after_seconds": after,
        "ns_per_unit_before": before / units * 1e9,
        "ns_per_unit_after": after / units * 1e9,
        "before_per_second": units / before,
        "after_per_second": units / after,
        "speedup": speedup,
    }


def make_payload(**speedups):
    speedups = {"profile": 1.2, "synthesis": 2.2,
                "synthesis_low_r": 3.3, "pipeline": 1.5,
                "vector": 1.9, "vector_synthesis": 4.5, **speedups}
    phases = {name: make_phase(value)
              for name, value in speedups.items()}
    # Schema 2: the vector phase carries the scalar/columnar IPC
    # agreement alongside its timing.
    phases["vector"].update(ipc_scalar=2.0, ipc_vector=1.98,
                            ipc_relative_error=0.01)
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "gzip",
        "scale": {"warmup": 1, "reference": 1, "reduction_factor": 4.0},
        "quick": True,
        "platform": "test",
        "draw_stable": True,
        "phases": phases,
        "speedups": speedups,
        "phase_breakdown": {},
    }


class TestValidatePayload:
    def test_complete_payload_is_clean(self):
        assert validate_payload(make_payload()) == []

    def test_every_missing_top_level_key_reported(self):
        for key in REQUIRED_KEYS:
            payload = make_payload()
            del payload[key]
            problems = validate_payload(payload)
            assert any(key in p for p in problems), key

    def test_missing_phase_key_reported(self):
        payload = make_payload()
        del payload["phases"]["pipeline"]["speedup"]
        assert any("pipeline" in p and "speedup" in p
                   for p in validate_payload(payload))

    def test_unstable_draws_rejected(self):
        payload = make_payload()
        payload["draw_stable"] = False
        assert any("draw_stable" in p for p in validate_payload(payload))

    def test_missing_vector_phase_reported(self):
        payload = make_payload()
        del payload["phases"]["vector"]
        assert any("vector" in p for p in validate_payload(payload))

    def test_missing_vector_ipc_agreement_reported(self):
        payload = make_payload()
        del payload["phases"]["vector"]["ipc_relative_error"]
        assert any("ipc_relative_error" in p
                   for p in validate_payload(payload))

    def test_wrong_schema_rejected(self):
        payload = make_payload()
        payload["schema"] = BENCH_SCHEMA + 1
        assert any("schema" in p for p in validate_payload(payload))


class TestCheckRegression:
    BASELINE = {"speedups": {"pipeline": 1.3, "synthesis": 1.8}}

    def test_clean_when_at_or_above_pins(self):
        assert check_regression(make_payload(), self.BASELINE) == []

    def test_within_tolerance_passes(self):
        payload = make_payload(pipeline=1.3 * 0.9)
        assert check_regression(payload, self.BASELINE,
                                tolerance=0.15) == []

    def test_below_tolerance_fails(self):
        payload = make_payload(pipeline=1.3 * 0.8)
        failures = check_regression(payload, self.BASELINE,
                                    tolerance=0.15)
        assert len(failures) == 1 and "pipeline" in failures[0]

    def test_missing_phase_fails(self):
        payload = make_payload()
        del payload["speedups"]["pipeline"]
        failures = check_regression(payload, self.BASELINE)
        assert any("pipeline" in f for f in failures)


class TestCommittedBaseline:
    def test_baseline_parses_with_positive_pins(self):
        baseline = json.loads(BASELINE_PATH.read_text())
        assert set(baseline["speedups"]) == {
            "profile", "synthesis", "synthesis_low_r", "pipeline",
            "vector", "vector_synthesis"}
        assert all(value > 1.0
                   for value in baseline["speedups"].values())

    def test_clean_payload_clears_committed_pins(self):
        baseline = json.loads(BASELINE_PATH.read_text())
        assert check_regression(make_payload(), baseline) == []


def test_write_bench_round_trips(tmp_path):
    payload = make_payload()
    path = tmp_path / "BENCH_hotpath.json"
    write_bench(payload, path)
    assert json.loads(path.read_text()) == payload


class TestTrajectory:
    def test_append_creates_and_accumulates(self, tmp_path):
        from repro.bench import TRAJECTORY_SCHEMA, append_trajectory

        path = tmp_path / "perf" / "TRAJECTORY.jsonl"
        payload = make_payload()
        assert append_trajectory(payload, path=path) == path
        append_trajectory(make_payload(profile=9.9), path=path)
        entries = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(entries) == 2
        first, second = entries
        assert first["schema"] == TRAJECTORY_SCHEMA
        assert first["benchmark"] == "gzip"
        assert first["quick"] is True
        assert first["speedups"]["profile"] == 1.2
        assert second["speedups"]["profile"] == 9.9
        assert first["ts"] <= second["ts"]

    def test_entry_records_git_sha_inside_a_repo(self, tmp_path):
        from repro.bench import append_trajectory, git_sha

        sha = git_sha()
        if sha is not None:  # this checkout is a git repo
            assert len(sha) == 12
            int(sha, 16)
        path = tmp_path / "TRAJECTORY.jsonl"
        append_trajectory(make_payload(), path=path)
        (entry,) = [json.loads(line)
                    for line in path.read_text().splitlines()]
        assert entry["git_sha"] == sha
